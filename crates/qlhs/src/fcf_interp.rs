//! The QLf+ interpreter (§4).
//!
//! QLf+ is finitary QL re-targeted at finite∕co-finite r-dbs, plus the
//! test `while |Y| < ∞`. Values carry the §4 representation directly:
//! a finite set of tuples plus the indicator saying whether it is the
//! relation itself or the complement. The amended operations:
//!
//! * `E = {(a,a) | a ∈ Df}`;
//! * `e↑ = e × Df`, defined only for finite `e`;
//! * `¬e` flips the indicator;
//! * `e↓` on a co-finite value of rank `n ≥ 1` is all of `Dⁿ⁻¹`
//!   (Prop 4.2) — finite (`{()}`) for `n = 1`, co-finite otherwise;
//! * `while |Y| < ∞` is true iff the value is finite.

use crate::ast::{Prog, Term};
use crate::value::RunError;
use recdb_core::{Elem, Fuel, Tuple};
use recdb_hsdb::FcfDatabase;
use std::collections::BTreeSet;

/// A QLf+ value: a finite∕co-finite relation of some rank.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FcfVal {
    /// The rank.
    pub rank: usize,
    /// True: `tuples` *is* the relation. False: `tuples` is the
    /// complement (the relation is co-finite).
    pub finite: bool,
    /// The finite part (relation or complement).
    pub tuples: BTreeSet<Tuple>,
}

impl FcfVal {
    /// The empty relation of a rank.
    pub fn empty(rank: usize) -> Self {
        FcfVal {
            rank,
            finite: true,
            tuples: BTreeSet::new(),
        }
    }

    /// The full relation `Dⁿ`.
    pub fn full(rank: usize) -> Self {
        FcfVal {
            rank,
            finite: false,
            tuples: BTreeSet::new(),
        }
    }

    /// Is the relation (not the representation) empty?
    pub fn is_empty_relation(&self) -> bool {
        self.finite && self.tuples.is_empty()
    }

    /// Membership of a tuple.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.finite == self.tuples.contains(t)
    }
}

/// A QLf+ interpreter over one fcf-r-db.
pub struct FcfInterp<'a> {
    db: &'a FcfDatabase,
    df: Vec<Elem>,
    seminaive: bool,
}

impl crate::seminaive::DeltaBackend for &FcfInterp<'_> {
    type V = FcfVal;
    fn eval(&mut self, t: &Term, env: &[FcfVal], fuel: &mut Fuel) -> Result<FcfVal, RunError> {
        self.eval_term(t, env, fuel)
    }
}

impl<'a> FcfInterp<'a> {
    /// Binds the interpreter; computes `Df` once.
    pub fn new(db: &'a FcfDatabase) -> Self {
        FcfInterp {
            db,
            df: db.df().into_iter().collect(),
            seminaive: true,
        }
    }

    /// Toggles the semi-naive loop engine (on by default; see
    /// [`FinInterp::set_seminaive`](crate::FinInterp::set_seminaive)).
    /// Loops whose variables hold co-finite values always fall back —
    /// delta logs represent finite growing relations only.
    pub fn set_seminaive(&mut self, on: bool) {
        self.seminaive = on;
    }

    /// `E = {(a,a) | a ∈ Df}` — always finite.
    pub fn op_e(&self) -> FcfVal {
        FcfVal {
            rank: 2,
            finite: true,
            tuples: self.df.iter().map(|&a| Tuple::from(vec![a, a])).collect(),
        }
    }

    /// Stored relation `Rᵢ` in its §4 representation, bounds-checked.
    pub fn op_rel(&self, i: usize) -> Result<FcfVal, RunError> {
        let Some(rel) = self.db.relations().get(i) else {
            return Err(RunError::NoSuchRelation(i));
        };
        Ok(FcfVal {
            rank: rel.arity(),
            finite: matches!(rel, recdb_hsdb::FcfRel::Finite(_)),
            tuples: rel.finite_part().clone(),
        })
    }

    /// The finite rank-1 singleton `{(a)}`.
    pub fn op_const(&self, c: u64) -> FcfVal {
        FcfVal {
            rank: 1,
            finite: true,
            tuples: [Tuple::from_values([c])].into_iter().collect(),
        }
    }

    /// Intersection by the four finite∕co-finite cases; ranks must
    /// agree.
    pub fn op_and(x: &FcfVal, y: &FcfVal) -> Result<FcfVal, RunError> {
        if x.rank != y.rank {
            return Err(RunError::RankMismatch {
                left: x.rank,
                right: y.rank,
            });
        }
        Ok(match (x.finite, y.finite) {
            (true, true) => FcfVal {
                rank: x.rank,
                finite: true,
                tuples: x.tuples.intersection(&y.tuples).cloned().collect(),
            },
            // Finite ∩ co-finite: remove the complement's tuples from
            // the finite side (the paper's e ∖ (¬f) computation).
            (true, false) => FcfVal {
                rank: x.rank,
                finite: true,
                tuples: x.tuples.difference(&y.tuples).cloned().collect(),
            },
            (false, true) => FcfVal {
                rank: x.rank,
                finite: true,
                tuples: y.tuples.difference(&x.tuples).cloned().collect(),
            },
            // Co-finite ∩ co-finite: complement is the union.
            (false, false) => FcfVal {
                rank: x.rank,
                finite: false,
                tuples: x.tuples.union(&y.tuples).cloned().collect(),
            },
        })
    }

    /// `¬x` flips the indicator (tick-free).
    pub fn op_not(x: &FcfVal) -> FcfVal {
        let mut x = x.clone();
        x.finite = !x.finite;
        x
    }

    /// `x↑ = x × Df`, defined only for finite `x`; ticks once per
    /// output tuple.
    pub fn op_up(&self, x: &FcfVal, fuel: &mut Fuel) -> Result<FcfVal, RunError> {
        if !x.finite {
            return Err(RunError::UpOnInfinite);
        }
        let mut out = BTreeSet::new();
        for u in &x.tuples {
            for &d in &self.df {
                fuel.tick()?;
                out.insert(u.extend(d));
            }
        }
        Ok(FcfVal {
            rank: x.rank + 1,
            finite: true,
            tuples: out,
        })
    }

    /// `x↓` with the Prop 4.2 co-finite cases.
    pub fn op_down(x: &FcfVal) -> Result<FcfVal, RunError> {
        if x.rank == 0 {
            return Ok(FcfVal::empty(0));
        }
        if x.finite {
            Ok(FcfVal {
                rank: x.rank - 1,
                finite: true,
                tuples: x
                    .tuples
                    .iter()
                    .map(|u| {
                        u.drop_first()
                            .ok_or(RunError::Internal("↓ on a tuple shorter than its rank"))
                    })
                    .collect::<Result<_, _>>()?,
            })
        } else if x.rank == 1 {
            // Prop 4.2: co-finite R ⊆ D¹ projects to D⁰ = {()}.
            Ok(FcfVal {
                rank: 0,
                finite: true,
                tuples: [Tuple::empty()].into_iter().collect(),
            })
        } else {
            // Prop 4.2: R↓ = Dⁿ⁻¹, co-finite with empty complement.
            Ok(FcfVal::full(x.rank - 1))
        }
    }

    /// `x~` swaps the finite part, preserving the indicator (swapping
    /// commutes with complementation).
    pub fn op_swap(x: &FcfVal) -> Result<FcfVal, RunError> {
        if x.rank < 2 {
            return Ok(x.clone());
        }
        Ok(FcfVal {
            rank: x.rank,
            finite: x.finite,
            tuples: x
                .tuples
                .iter()
                .map(|u| {
                    u.swap_last_two()
                        .ok_or(RunError::Internal("swap on a tuple shorter than its rank"))
                })
                .collect::<Result<_, _>>()?,
        })
    }

    /// Evaluates a term. One fuel tick per term node at entry; the
    /// per-op primitives above carry the data-dependent ticks and are
    /// shared with the bytecode VM.
    pub fn eval_term(&self, t: &Term, env: &[FcfVal], fuel: &mut Fuel) -> Result<FcfVal, RunError> {
        fuel.tick()?;
        Ok(match t {
            Term::E => self.op_e(),
            Term::Rel(i) => self.op_rel(*i)?,
            Term::Var(v) => env.get(*v).cloned().unwrap_or_else(|| FcfVal::empty(0)),
            // A constant is the finite rank-1 singleton `{(a)}`,
            // whether or not `a ∈ Df` (constants name domain elements,
            // and the domain is all of ℕ).
            Term::Const(c) => self.op_const(*c),
            Term::And(a, b) => {
                let x = self.eval_term(a, env, fuel)?;
                let y = self.eval_term(b, env, fuel)?;
                Self::op_and(&x, &y)?
            }
            Term::Not(e) => {
                let x = self.eval_term(e, env, fuel)?;
                Self::op_not(&x)
            }
            Term::Up(e) => {
                let x = self.eval_term(e, env, fuel)?;
                self.op_up(&x, fuel)?
            }
            Term::Down(e) => {
                let x = self.eval_term(e, env, fuel)?;
                Self::op_down(&x)?
            }
            Term::Swap(e) => {
                let x = self.eval_term(e, env, fuel)?;
                Self::op_swap(&x)?
            }
        })
    }

    /// Runs a program; result is `Y₁`.
    ///
    /// The QLf+ dialect check runs first: a `while |Y|=1` anywhere in
    /// the program — reachable or not — is rejected up-front.
    pub fn run(&self, p: &Prog, fuel: &mut Fuel) -> Result<FcfVal, RunError> {
        crate::dialect::Dialect::QlfPlus
            .check(p)
            .map_err(|v| RunError::DialectViolation(v.message()))?;
        let nvars = p.max_var().map_or(1, |m| m + 1);
        let mut env = vec![FcfVal::empty(0); nvars.max(1)];
        self.exec(p, &mut env, fuel)?;
        Ok(env[0].clone())
    }

    /// Runs a program in a caller-supplied environment.
    pub fn exec(&self, p: &Prog, env: &mut Vec<FcfVal>, fuel: &mut Fuel) -> Result<(), RunError> {
        fuel.tick()?;
        match p {
            Prog::Assign(v, e) => {
                let val = self.eval_term(e, env, fuel)?;
                if *v >= env.len() {
                    env.resize(*v + 1, FcfVal::empty(0));
                }
                env[*v] = val;
            }
            Prog::Seq(ps) => {
                for q in ps {
                    self.exec(q, env, fuel)?;
                }
            }
            Prog::WhileEmpty(v, body) => {
                let done = self.seminaive
                    && crate::seminaive::try_loop(
                        &mut &*self,
                        crate::seminaive::LoopKind::Empty,
                        *v,
                        body,
                        env,
                        fuel,
                    );
                if !done {
                    while env.get(*v).is_none_or(FcfVal::is_empty_relation) {
                        fuel.tick()?;
                        self.exec(body, env, fuel)?;
                    }
                }
            }
            Prog::WhileFinite(v, body) => {
                let done = self.seminaive
                    && crate::seminaive::try_loop(
                        &mut &*self,
                        crate::seminaive::LoopKind::Finite,
                        *v,
                        body,
                        env,
                        fuel,
                    );
                if !done {
                    while env.get(*v).is_none_or(|x| x.finite) {
                        fuel.tick()?;
                        self.exec(body, env, fuel)?;
                    }
                }
            }
            Prog::WhileSingleton(..) => {
                return Err(RunError::DialectViolation(
                    "while |Y|=1 is a QLhs primitive, not part of QLf+",
                ))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Prog, Term};
    use recdb_core::{tuple, CoFiniteRelation, FiniteRelation};
    use recdb_hsdb::{FcfDatabase, FcfRel};

    /// Finite unary {1,2}; co-finite binary ℕ²∖{(1,1)}.
    fn sample() -> FcfDatabase {
        FcfDatabase::new(
            "s",
            vec![
                FcfRel::Finite(FiniteRelation::unary([1, 2])),
                FcfRel::CoFinite(CoFiniteRelation::new(2, [tuple![1, 1]])),
            ],
        )
    }

    fn run_on(db: &FcfDatabase, p: &Prog) -> Result<FcfVal, RunError> {
        FcfInterp::new(db).run(p, &mut Fuel::new(100_000))
    }

    #[test]
    fn e_is_df_diagonal() {
        let v = run_on(&sample(), &Prog::assign(0, Term::E)).unwrap();
        assert!(v.finite);
        assert_eq!(v.tuples, [tuple![1, 1], tuple![2, 2]].into_iter().collect());
    }

    #[test]
    fn rel_loads_representation() {
        let v = run_on(&sample(), &Prog::assign(0, Term::Rel(1))).unwrap();
        assert!(!v.finite);
        assert_eq!(v.tuples, [tuple![1, 1]].into_iter().collect());
        assert!(v.contains(&tuple![5, 9]));
        assert!(!v.contains(&tuple![1, 1]));
    }

    #[test]
    fn complement_flips_indicator() {
        let v = run_on(&sample(), &Prog::assign(0, Term::Rel(1).not())).unwrap();
        assert!(v.finite);
        assert_eq!(v.tuples, [tuple![1, 1]].into_iter().collect());
    }

    #[test]
    fn intersection_cases() {
        let db = sample();
        // finite ∩ co-finite: E ∩ R2 = E ∖ {(1,1)} = {(2,2)}.
        let v = run_on(&db, &Prog::assign(0, Term::E.and(Term::Rel(1)))).unwrap();
        assert!(v.finite);
        assert_eq!(v.tuples, [tuple![2, 2]].into_iter().collect());
        // co-finite ∩ co-finite: R2 ∩ R2~: complement is union of
        // complements {(1,1)} ∪ {(1,1)} = {(1,1)}.
        let v = run_on(&db, &Prog::assign(0, Term::Rel(1).and(Term::Rel(1).swap()))).unwrap();
        assert!(!v.finite);
        assert_eq!(v.tuples, [tuple![1, 1]].into_iter().collect());
    }

    #[test]
    fn up_is_cartesian_with_df_and_rejects_infinite() {
        let db = sample();
        let v = run_on(&db, &Prog::assign(0, Term::Rel(0).up())).unwrap();
        assert_eq!(v.rank, 2);
        assert_eq!(v.len_for_test(), 4, "{{1,2}} × Df");
        assert!(matches!(
            run_on(&db, &Prog::assign(0, Term::Rel(1).up())),
            Err(RunError::UpOnInfinite)
        ));
    }

    #[test]
    fn down_on_cofinite_prop_4_2() {
        let db = sample();
        // R2↓ (rank 2, co-finite) = D¹ full.
        let v = run_on(&db, &Prog::assign(0, Term::Rel(1).down())).unwrap();
        assert!(!v.finite);
        assert!(v.tuples.is_empty());
        // Another ↓: rank-1 co-finite → {()}.
        let v = run_on(&db, &Prog::assign(0, Term::Rel(1).down().down())).unwrap();
        assert!(v.finite);
        assert_eq!(v.tuples, [Tuple::empty()].into_iter().collect());
    }

    #[test]
    fn while_finite_loops_until_cofinite() {
        let db = sample();
        // Y1 := R1 (finite); while |Y1|<∞ { Y1 := !Y1 } — one flip.
        let p = Prog::seq([
            Prog::assign(0, Term::Rel(0)),
            Prog::WhileFinite(0, Box::new(Prog::assign(0, Term::Var(0).not()))),
        ]);
        let v = run_on(&db, &p).unwrap();
        assert!(!v.finite);
    }

    #[test]
    fn outputs_stay_fcf() {
        // Prop 4.3's easy half, empirically: a battery of programs all
        // produce fcf values (the type system enforces it — reaching
        // here without error is the assertion).
        let db = sample();
        for p in [
            Prog::assign(0, Term::Rel(0).union(Term::E.down_n(2).up())),
            Prog::assign(0, Term::Rel(1).swap().not()),
            Prog::assign(0, Term::Rel(1).down().not().up()),
            Prog::assign(0, Term::Rel(0).up().swap().down()),
        ] {
            let v = run_on(&db, &p).unwrap();
            // Value is by construction finite-or-cofinite.
            let _ = v.finite;
        }
    }

    #[test]
    fn singleton_test_rejected() {
        let p = Prog::WhileSingleton(0, Box::new(Prog::Seq(vec![])));
        assert!(matches!(
            run_on(&sample(), &p),
            Err(RunError::DialectViolation(_))
        ));
    }

    impl FcfVal {
        fn len_for_test(&self) -> usize {
            self.tuples.len()
        }
    }
}
