//! The finitary QL interpreter — the Chandra–Harel baseline.
//!
//! QL is complete for computable queries over **finite** databases
//! [CH]. Values are plain finite relations over the structure's
//! universe `D`; `E = {(a,a) | a ∈ D}`, `¬e = Dⁿ ∖ e`, `e↑ = e × D`,
//! `e↓` projects out the first coordinate, `e~` swaps the two
//! rightmost coordinates. The only test is `while |Y| = 0` —
//! `|Y| = 1` is *definable* in finitary QL via `perm(D)` (footnote 8),
//! so admitting it as primitive here would blur the E13 ablation;
//! this interpreter rejects it.

use crate::ast::{Prog, Term};
use crate::value::{RunError, Val};
use recdb_core::{Elem, FiniteStructure, Fuel, Tuple};
use std::collections::BTreeSet;

/// A finitary QL interpreter over one finite structure.
pub struct FinInterp<'a> {
    st: &'a FiniteStructure,
    seminaive: bool,
}

impl crate::seminaive::DeltaBackend for &FinInterp<'_> {
    type V = Val;
    fn eval(&mut self, t: &Term, env: &[Val], fuel: &mut Fuel) -> Result<Val, RunError> {
        self.eval_term(t, env, fuel)
    }
}

impl<'a> FinInterp<'a> {
    /// Binds the interpreter to a finite structure.
    pub fn new(st: &'a FiniteStructure) -> Self {
        FinInterp {
            st,
            seminaive: true,
        }
    }

    /// Toggles the semi-naive loop engine (on by default). Turning it
    /// off forces every `while` through the from-scratch path — the
    /// differential oracle the `SEMI-NAIVE-DIFF` conformance check
    /// compares against.
    pub fn set_seminaive(&mut self, on: bool) {
        self.seminaive = on;
    }

    fn universe(&self) -> &[Elem] {
        self.st.universe()
    }

    /// The diagonal `E = {(a,a) | a ∈ D}`.
    pub fn op_e(&self) -> Val {
        Val {
            rank: 2,
            tuples: self
                .universe()
                .iter()
                .map(|&a| Tuple::from(vec![a, a]))
                .collect(),
        }
    }

    /// Stored relation `Rᵢ` (0-based), bounds-checked against the
    /// schema.
    pub fn op_rel(&self, i: usize) -> Result<Val, RunError> {
        if i >= self.st.schema().len() {
            return Err(RunError::NoSuchRelation(i));
        }
        Ok(Val {
            rank: self.st.schema().arity(i),
            tuples: self.st.relation(i).clone(),
        })
    }

    /// The constant singleton `Cₐ = {(a)}`.
    pub fn op_const(&self, c: u64) -> Val {
        Val {
            rank: 1,
            tuples: [Tuple::from_values([c])].into_iter().collect(),
        }
    }

    /// Intersection `x ∩ y`; ranks must agree.
    pub fn op_and(x: &Val, y: &Val) -> Result<Val, RunError> {
        if x.rank != y.rank {
            return Err(RunError::RankMismatch {
                left: x.rank,
                right: y.rank,
            });
        }
        Ok(Val {
            rank: x.rank,
            tuples: x.tuples.intersection(&y.tuples).cloned().collect(),
        })
    }

    /// Complement `¬x = Dⁿ ∖ x`; ticks once per enumerated tuple.
    pub fn op_not(&self, x: &Val, fuel: &mut Fuel) -> Result<Val, RunError> {
        let all = self.full(x.rank, fuel)?;
        Ok(Val {
            rank: x.rank,
            tuples: all.difference(&x.tuples).cloned().collect(),
        })
    }

    /// Cylindrification `x↑ = x × D`; ticks once per output tuple.
    pub fn op_up(&self, x: &Val, fuel: &mut Fuel) -> Result<Val, RunError> {
        let mut out = BTreeSet::new();
        for u in &x.tuples {
            for &a in self.universe() {
                fuel.tick()?;
                out.insert(u.extend(a));
            }
        }
        Ok(Val {
            rank: x.rank + 1,
            tuples: out,
        })
    }

    /// Projection `x↓` drops the first coordinate.
    pub fn op_down(x: &Val) -> Result<Val, RunError> {
        if x.rank == 0 {
            return Ok(Val::empty(0));
        }
        Ok(Val {
            rank: x.rank - 1,
            tuples: x
                .tuples
                .iter()
                .map(|u| {
                    u.drop_first()
                        .ok_or(RunError::Internal("↓ on a tuple shorter than its rank"))
                })
                .collect::<Result<_, _>>()?,
        })
    }

    /// `x~` swaps the two rightmost coordinates (identity below rank 2).
    pub fn op_swap(x: &Val) -> Result<Val, RunError> {
        if x.rank < 2 {
            return Ok(x.clone());
        }
        Ok(Val {
            rank: x.rank,
            tuples: x
                .tuples
                .iter()
                .map(|u| {
                    u.swap_last_two()
                        .ok_or(RunError::Internal("swap on a tuple shorter than its rank"))
                })
                .collect::<Result<_, _>>()?,
        })
    }

    /// All tuples of rank `n` over the universe — the complement base.
    fn full(&self, n: usize, fuel: &mut Fuel) -> Result<BTreeSet<Tuple>, RunError> {
        let mut out: BTreeSet<Tuple> = [Tuple::empty()].into_iter().collect();
        for _ in 0..n {
            let mut next = BTreeSet::new();
            for t in &out {
                for &a in self.universe() {
                    fuel.tick()?;
                    next.insert(t.extend(a));
                }
            }
            out = next;
        }
        Ok(out)
    }

    /// Evaluates a term. One fuel tick per term node at entry; the
    /// per-op primitives above carry the data-dependent ticks — the
    /// bytecode VM calls the same primitives, so the two executors
    /// share semantics by construction.
    pub fn eval_term(&self, t: &Term, env: &[Val], fuel: &mut Fuel) -> Result<Val, RunError> {
        fuel.tick()?;
        Ok(match t {
            Term::E => self.op_e(),
            Term::Rel(i) => self.op_rel(*i)?,
            Term::Var(v) => env.get(*v).cloned().unwrap_or_else(|| Val::empty(0)),
            // `Cₐ = {(a)}` whether or not `a` lies in this structure's
            // universe — constants name elements of the ambient domain,
            // and structures are finite windows onto it. (`¬Cₐ` still
            // complements within the universe.)
            Term::Const(c) => self.op_const(*c),
            Term::And(a, b) => {
                let x = self.eval_term(a, env, fuel)?;
                let y = self.eval_term(b, env, fuel)?;
                Self::op_and(&x, &y)?
            }
            Term::Not(e) => {
                let x = self.eval_term(e, env, fuel)?;
                self.op_not(&x, fuel)?
            }
            Term::Up(e) => {
                let x = self.eval_term(e, env, fuel)?;
                self.op_up(&x, fuel)?
            }
            Term::Down(e) => {
                let x = self.eval_term(e, env, fuel)?;
                Self::op_down(&x)?
            }
            Term::Swap(e) => {
                let x = self.eval_term(e, env, fuel)?;
                Self::op_swap(&x)?
            }
        })
    }

    /// Runs a program; result is `Y₁`.
    ///
    /// The QL dialect check runs first: a `while |Y|=1` or
    /// `while |Y|<∞` anywhere in the program — reachable or not — is
    /// rejected up-front.
    pub fn run(&self, p: &Prog, fuel: &mut Fuel) -> Result<Val, RunError> {
        crate::dialect::Dialect::Ql
            .check(p)
            .map_err(|v| RunError::DialectViolation(v.message()))?;
        let nvars = p.max_var().map_or(1, |m| m + 1);
        let mut env = vec![Val::empty(0); nvars.max(1)];
        self.exec(p, &mut env, fuel)?;
        Ok(env[0].clone())
    }

    /// Runs a program in a caller-supplied environment.
    pub fn exec(&self, p: &Prog, env: &mut Vec<Val>, fuel: &mut Fuel) -> Result<(), RunError> {
        fuel.tick()?;
        match p {
            Prog::Assign(v, e) => {
                let val = self.eval_term(e, env, fuel)?;
                if *v >= env.len() {
                    env.resize(*v + 1, Val::empty(0));
                }
                env[*v] = val;
            }
            Prog::Seq(ps) => {
                for q in ps {
                    self.exec(q, env, fuel)?;
                }
            }
            Prog::WhileEmpty(v, body) => {
                let done = self.seminaive
                    && crate::seminaive::try_loop(
                        &mut &*self,
                        crate::seminaive::LoopKind::Empty,
                        *v,
                        body,
                        env,
                        fuel,
                    );
                if !done {
                    while env.get(*v).is_none_or(Val::is_empty) {
                        fuel.tick()?;
                        self.exec(body, env, fuel)?;
                    }
                }
            }
            Prog::WhileSingleton(..) => {
                return Err(RunError::DialectViolation(
                    "while |Y|=1 is a QLhs primitive; in finitary QL it is only definable",
                ))
            }
            Prog::WhileFinite(..) => {
                return Err(RunError::DialectViolation(
                    "while |Y|<∞ is a QLf+ construct",
                ))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Prog, Term};
    use recdb_core::tuple;

    fn path3() -> FiniteStructure {
        FiniteStructure::undirected_graph([0, 1, 2], [(0, 1), (1, 2)])
    }

    fn run_on(st: &FiniteStructure, p: &Prog) -> Result<Val, RunError> {
        FinInterp::new(st).run(p, &mut Fuel::new(100_000))
    }

    #[test]
    fn e_is_full_diagonal() {
        let v = run_on(&path3(), &Prog::assign(0, Term::E)).unwrap();
        assert_eq!(v.len(), 3);
        assert!(v.tuples.contains(&tuple![2, 2]));
    }

    #[test]
    fn up_is_cartesian_with_domain() {
        // R1↑: 4 edges × 3 universe elements = 12 triples.
        let v = run_on(&path3(), &Prog::assign(0, Term::Rel(0).up())).unwrap();
        assert_eq!(v.rank, 3);
        assert_eq!(v.len(), 12);
    }

    #[test]
    fn down_projects() {
        // R1↓: second endpoints of edges = {0,1,2} (1 is adjacent both
        // ways, endpoints appear via (1,0),(1,2)).
        let v = run_on(&path3(), &Prog::assign(0, Term::Rel(0).down())).unwrap();
        assert_eq!(v.rank, 1);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn complement_and_swap() {
        // Symmetric graph: R1~ = R1, so R1 ∖ R1~ = ∅.
        let v = run_on(
            &path3(),
            &Prog::assign(0, Term::Rel(0).minus(Term::Rel(0).swap())),
        )
        .unwrap();
        assert!(v.is_empty());
        // ¬R1 has 9 − 4 = 5 pairs.
        let v = run_on(&path3(), &Prog::assign(0, Term::Rel(0).not())).unwrap();
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn common_neighbour_triples() {
        // A composition-flavoured query built from ↑ and ~ alone:
        // up(R1) = {(x,y,z) | E(x,y)}, and swapping its last two
        // coordinates gives {(x,y,z) | E(x,z)} — so the intersection
        // is {(x,y,z) | E(x,y) ∧ E(x,z)}: the common-neighbour triples
        // (the building block of QL's relational composition).
        let st = path3();
        let common = Term::Rel(0).up().and(Term::Rel(0).up().swap());
        let v = run_on(&st, &Prog::assign(0, common)).unwrap();
        // Σ_x deg(x)² on the path 0–1–2: 1 + 4 + 1 = 6.
        assert_eq!(v.len(), 6);
        assert!(v.tuples.contains(&tuple![1, 0, 2]));
        assert!(v.tuples.contains(&tuple![0, 1, 1]));
    }

    #[test]
    fn while_empty_runs() {
        let p = Prog::seq([Prog::WhileEmpty(0, Box::new(Prog::assign(0, Term::E)))]);
        let v = run_on(&path3(), &p).unwrap();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn singleton_test_rejected_in_ql() {
        let p = Prog::WhileSingleton(0, Box::new(Prog::Seq(vec![])));
        assert!(matches!(
            run_on(&path3(), &p),
            Err(RunError::DialectViolation(_))
        ));
    }

    #[test]
    fn genericity_of_ql_on_isomorphic_structures() {
        // The same program on isomorphic structures gives isomorphic
        // results (here: equal cardinalities and shapes).
        let a = path3();
        let b = FiniteStructure::undirected_graph([10, 20, 30], [(10, 20), (20, 30)]);
        let prog = Prog::assign(0, Term::Rel(0).up().and(Term::Rel(0).up().swap()));
        let va = run_on(&a, &prog).unwrap();
        let vb = run_on(&b, &prog).unwrap();
        assert_eq!(va.len(), vb.len());
        assert_eq!(va.rank, vb.rank);
    }
}
