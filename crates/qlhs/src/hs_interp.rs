//! The QLhs interpreter (§3.3).
//!
//! Programs act on the representation `C_B`, never on the infinite
//! database itself: "at any point during the computation of a program
//! each term contains the labels along some paths in `Tⁿ`". Term
//! values are finite sets of tree representatives; the operations use
//! the highly recursive tree for `E`/`↑`/`¬` and the `≅_B` oracle for
//! `↓`/`~`, exactly as the Theorem 3.1 soundness argument describes.

use crate::ast::{Prog, Term};
use crate::value::{RunError, Val};
use recdb_core::{Fuel, Tuple, TupleId, TupleInterner};
use recdb_hsdb::HsDatabase;
use std::collections::{BTreeSet, HashMap};

/// A QLhs interpreter bound to one hs-r-db representation.
pub struct HsInterp<'a> {
    hs: &'a HsDatabase,
    /// Cache of `Tⁿ` levels (the tree is deterministic).
    levels: HashMap<usize, Vec<Tuple>>,
    /// Dense ids for every tuple the interpreter has canonicalized —
    /// memo keys are `u32`s instead of cloned tuples.
    interner: TupleInterner,
    /// Cache of canonical representatives, keyed by interned id.
    canon: HashMap<TupleId, Tuple>,
    seminaive: bool,
}

impl crate::seminaive::DeltaBackend for HsInterp<'_> {
    type V = Val;
    fn eval(&mut self, t: &Term, env: &[Val], fuel: &mut Fuel) -> Result<Val, RunError> {
        self.eval_term(t, env, fuel)
    }
}

impl<'a> HsInterp<'a> {
    /// Binds an interpreter to a database representation.
    pub fn new(hs: &'a HsDatabase) -> Self {
        HsInterp {
            hs,
            levels: HashMap::new(),
            interner: TupleInterner::new(),
            canon: HashMap::new(),
            seminaive: true,
        }
    }

    /// Toggles the semi-naive loop engine (on by default; see
    /// [`FinInterp::set_seminaive`](crate::FinInterp::set_seminaive)).
    /// Either way the canonicalization cache (`canon`) persists across
    /// iterations and across loops, so `↓`/`~` memo state stays warm
    /// under delta evaluation instead of being recomputed.
    pub fn set_seminaive(&mut self, on: bool) {
        self.seminaive = on;
    }

    fn level(&mut self, n: usize) -> &[Tuple] {
        self.levels.entry(n).or_insert_with(|| self.hs.t_n(n))
    }

    fn canonical(&mut self, u: &Tuple) -> Tuple {
        let id = self.interner.intern(u);
        if let Some(c) = self.canon.get(&id) {
            recdb_obs::count("qlhs.canon_hits", 1);
            return c.clone();
        }
        recdb_obs::count("qlhs.canon_misses", 1);
        let c = self.hs.canonical_rep(u);
        self.canon.insert(id, c.clone());
        // A canonical rep is its own rep: pre-seed so the linear scan
        // in `canonical_rep` never reruns for tuples already in Tⁿ.
        let cid = self.interner.intern(&c);
        self.canon.entry(cid).or_insert_with(|| c.clone());
        c
    }

    /// The diagonal classes of `T²`.
    pub fn op_e(&mut self) -> Val {
        let diag: BTreeSet<Tuple> = self
            .level(2)
            .to_vec()
            .into_iter()
            .filter(|t| t[0] == t[1])
            .collect();
        Val {
            rank: 2,
            tuples: diag,
        }
    }

    /// Stored relation `Rᵢ`'s representatives, bounds-checked.
    pub fn op_rel(&self, i: usize) -> Result<Val, RunError> {
        if i >= self.hs.schema().len() {
            return Err(RunError::NoSuchRelation(i));
        }
        Ok(Val {
            rank: self.hs.schema().arity(i),
            tuples: self.hs.reps(i).clone(),
        })
    }

    /// `Cₐ` as the whole `≅_B`-class of `a` — the canonical rep of
    /// `(a)` in `T¹` (values are unions of classes, never elements).
    pub fn op_const(&mut self, c: u64) -> Val {
        let rep = self.canonical(&Tuple::from_values([c]));
        Val {
            rank: 1,
            tuples: [rep].into_iter().collect(),
        }
    }

    /// Intersection `x ∩ y`; ranks must agree.
    pub fn op_and(x: &Val, y: &Val) -> Result<Val, RunError> {
        if x.rank != y.rank {
            return Err(RunError::RankMismatch {
                left: x.rank,
                right: y.rank,
            });
        }
        Ok(Val {
            rank: x.rank,
            tuples: x.tuples.intersection(&y.tuples).cloned().collect(),
        })
    }

    /// Complement within the `Tⁿ` level (tick-free: the level cache
    /// makes it a set difference).
    pub fn op_not(&mut self, x: &Val) -> Val {
        let all: BTreeSet<Tuple> = self.level(x.rank).iter().cloned().collect();
        Val {
            rank: x.rank,
            tuples: all.difference(&x.tuples).cloned().collect(),
        }
    }

    /// `x↑` collects tree offspring; ticks once per child.
    pub fn op_up(&mut self, x: &Val, fuel: &mut Fuel) -> Result<Val, RunError> {
        let mut out = BTreeSet::new();
        for u in &x.tuples {
            for a in self.hs.tree().offspring(u) {
                fuel.tick()?;
                out.insert(u.extend(a));
            }
        }
        Ok(Val {
            rank: x.rank + 1,
            tuples: out,
        })
    }

    /// `x↓` via the `≅_B` oracle; ticks once per tuple.
    pub fn op_down(&mut self, x: &Val, fuel: &mut Fuel) -> Result<Val, RunError> {
        if x.rank == 0 {
            // Convention: ↓ below rank 0 is the empty rank-0 relation
            // (this is what makes "test e↓ for emptiness" a zero-test
            // for rank-counters).
            return Ok(Val::empty(0));
        }
        let mut out = BTreeSet::new();
        for u in &x.tuples {
            fuel.tick()?;
            let dropped = u
                .drop_first()
                .ok_or(RunError::Internal("↓ on a tuple shorter than its rank"))?;
            out.insert(self.canonical(&dropped));
        }
        Ok(Val {
            rank: x.rank - 1,
            tuples: out,
        })
    }

    /// `x~` via the `≅_B` oracle; ticks once per tuple (identity below
    /// rank 2).
    pub fn op_swap(&mut self, x: &Val, fuel: &mut Fuel) -> Result<Val, RunError> {
        if x.rank < 2 {
            return Ok(x.clone()); // nothing to exchange
        }
        let mut out = BTreeSet::new();
        for u in &x.tuples {
            fuel.tick()?;
            let swapped = u
                .swap_last_two()
                .ok_or(RunError::Internal("swap on a tuple shorter than its rank"))?;
            out.insert(self.canonical(&swapped));
        }
        Ok(Val {
            rank: x.rank,
            tuples: out,
        })
    }

    /// Evaluates a term in an environment. One fuel tick per term node
    /// at entry; the per-op primitives above carry the data-dependent
    /// ticks and are shared with the bytecode VM.
    pub fn eval_term(&mut self, t: &Term, env: &[Val], fuel: &mut Fuel) -> Result<Val, RunError> {
        fuel.tick()?;
        Ok(match t {
            Term::E => self.op_e(),
            Term::Rel(i) => self.op_rel(*i)?,
            Term::Var(v) => env.get(*v).cloned().unwrap_or_else(|| Val::empty(0)),
            // Over a `C_B` representation a constant cannot name a
            // single element — values are unions of `≅_B`-classes — so
            // `Cₐ` denotes the whole class of `a`, i.e. the canonical
            // representative of `(a)` in `T¹`.
            Term::Const(c) => self.op_const(*c),
            Term::And(a, b) => {
                let x = self.eval_term(a, env, fuel)?;
                let y = self.eval_term(b, env, fuel)?;
                Self::op_and(&x, &y)?
            }
            Term::Not(e) => {
                let x = self.eval_term(e, env, fuel)?;
                self.op_not(&x)
            }
            Term::Up(e) => {
                let x = self.eval_term(e, env, fuel)?;
                self.op_up(&x, fuel)?
            }
            Term::Down(e) => {
                let x = self.eval_term(e, env, fuel)?;
                self.op_down(&x, fuel)?
            }
            Term::Swap(e) => {
                let x = self.eval_term(e, env, fuel)?;
                self.op_swap(&x, fuel)?
            }
        })
    }

    /// Runs a program; the result is the final value of `Y₁`
    /// (variable 0), as in §3.3.
    ///
    /// The QLhs dialect check runs first: a `while |Y|<∞` anywhere in
    /// the program — reachable or not — is rejected up-front.
    pub fn run(&mut self, p: &Prog, fuel: &mut Fuel) -> Result<Val, RunError> {
        crate::dialect::Dialect::Qlhs
            .check(p)
            .map_err(|v| RunError::DialectViolation(v.message()))?;
        let nvars = p.max_var().map_or(1, |m| m + 1);
        let mut env = vec![Val::empty(0); nvars.max(1)];
        self.exec(p, &mut env, fuel)?;
        Ok(env[0].clone())
    }

    /// Runs a program in a caller-supplied environment (for staged
    /// computations that pre-load inputs into variables).
    pub fn exec(&mut self, p: &Prog, env: &mut Vec<Val>, fuel: &mut Fuel) -> Result<(), RunError> {
        fuel.tick()?;
        match p {
            Prog::Assign(v, e) => {
                let val = self.eval_term(e, env, fuel)?;
                if *v >= env.len() {
                    env.resize(*v + 1, Val::empty(0));
                }
                env[*v] = val;
            }
            Prog::Seq(ps) => {
                for q in ps {
                    self.exec(q, env, fuel)?;
                }
            }
            Prog::WhileEmpty(v, body) => {
                let done = self.seminaive
                    && crate::seminaive::try_loop(
                        self,
                        crate::seminaive::LoopKind::Empty,
                        *v,
                        body,
                        env,
                        fuel,
                    );
                if !done {
                    while env.get(*v).is_none_or(Val::is_empty) {
                        fuel.tick()?;
                        self.exec(body, env, fuel)?;
                    }
                }
            }
            Prog::WhileSingleton(v, body) => {
                let done = self.seminaive
                    && crate::seminaive::try_loop(
                        self,
                        crate::seminaive::LoopKind::Singleton,
                        *v,
                        body,
                        env,
                        fuel,
                    );
                if !done {
                    while env.get(*v).is_some_and(Val::is_singleton) {
                        fuel.tick()?;
                        self.exec(body, env, fuel)?;
                    }
                }
            }
            Prog::WhileFinite(_, _) => {
                return Err(RunError::DialectViolation(
                    "while |Y|<∞ is a QLf+ construct; QLhs values are always finite sets of representatives",
                ))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Prog, Term};
    use recdb_core::tuple;
    use recdb_hsdb::{infinite_clique, paper_example_graph, rado_graph};

    fn run_on(hs: &HsDatabase, p: &Prog) -> Result<Val, RunError> {
        let mut interp = HsInterp::new(hs);
        let mut fuel = Fuel::new(100_000);
        interp.run(p, &mut fuel)
    }

    #[test]
    fn e_is_the_diagonal_class() {
        let hs = infinite_clique();
        let v = run_on(&hs, &Prog::assign(0, Term::E)).unwrap();
        assert_eq!(v.rank, 2);
        assert_eq!(
            v.tuples.iter().cloned().collect::<Vec<_>>(),
            vec![tuple![0, 0]]
        );
    }

    #[test]
    fn rel_loads_representatives() {
        let hs = infinite_clique();
        let v = run_on(&hs, &Prog::assign(0, Term::Rel(0))).unwrap();
        assert_eq!(v.rank, 2);
        assert_eq!(
            v.tuples.iter().cloned().collect::<Vec<_>>(),
            vec![tuple![0, 1]],
            "the clique's single edge class"
        );
    }

    #[test]
    fn complement_within_level() {
        // ¬R1 on the clique: T² ∖ {(0,1)} = {(0,0)} — the diagonal.
        let hs = infinite_clique();
        let v = run_on(&hs, &Prog::assign(0, Term::Rel(0).not())).unwrap();
        assert_eq!(
            v.tuples.iter().cloned().collect::<Vec<_>>(),
            vec![tuple![0, 0]]
        );
    }

    #[test]
    fn up_collects_children() {
        let hs = infinite_clique();
        // E↑: children of (0,0): (0,0,0) and (0,0,1) — 2 classes.
        let v = run_on(&hs, &Prog::assign(0, Term::E.up())).unwrap();
        assert_eq!(v.rank, 3);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn down_uses_equivalence() {
        let hs = infinite_clique();
        // R1↓ on the clique: drop first of (0,1) → (1) ≅ (0): T¹'s rep.
        let v = run_on(&hs, &Prog::assign(0, Term::Rel(0).down())).unwrap();
        assert_eq!(v.rank, 1);
        assert_eq!(
            v.tuples.iter().cloned().collect::<Vec<_>>(),
            vec![tuple![0]]
        );
    }

    #[test]
    fn down_on_rank_zero_is_empty() {
        let hs = infinite_clique();
        // E↓↓ = {()} (the rank-0 "true"); E↓↓↓ = ∅ rank 0.
        let v = run_on(&hs, &Prog::assign(0, Term::E.down_n(2))).unwrap();
        assert_eq!(v.rank, 0);
        assert!(v.is_singleton(), "E↓↓ is the nonempty rank-0 relation");
        let v = run_on(&hs, &Prog::assign(0, Term::E.down_n(3))).unwrap();
        assert_eq!(v.rank, 0);
        assert!(v.is_empty());
    }

    #[test]
    fn swap_on_asymmetric_classes() {
        // On the §3.1 example graph, the one-way edge class (2→3)
        // swaps to the reversed class (3←2 viewed as ordered pair
        // (sink, source)), which is a different representative.
        let hs = paper_example_graph();
        let edges = run_on(&hs, &Prog::assign(0, Term::Rel(0))).unwrap();
        assert_eq!(edges.len(), 2);
        let swapped = run_on(&hs, &Prog::assign(0, Term::Rel(0).swap())).unwrap();
        assert_eq!(swapped.rank, 2);
        // The symmetric class maps to itself; the one-way class maps
        // out of R1 — so R1 ∩ R1~ is exactly the symmetric class.
        let sym = run_on(&hs, &Prog::assign(0, Term::Rel(0).and(Term::Rel(0).swap()))).unwrap();
        assert_eq!(sym.len(), 1, "only the symmetric edge class survives");
    }

    #[test]
    fn swap_below_rank_two_is_identity() {
        let hs = infinite_clique();
        let v = run_on(&hs, &Prog::assign(0, Term::Rel(0).down().swap())).unwrap();
        assert_eq!(v.rank, 1);
        assert!(!v.is_empty());
    }

    #[test]
    fn rank_mismatch_detected() {
        let hs = infinite_clique();
        let e = run_on(&hs, &Prog::assign(0, Term::E.and(Term::E.down())));
        assert!(matches!(
            e,
            Err(RunError::RankMismatch { left: 2, right: 1 })
        ));
    }

    #[test]
    fn no_such_relation_detected() {
        let hs = infinite_clique();
        assert!(matches!(
            run_on(&hs, &Prog::assign(0, Term::Rel(5))),
            Err(RunError::NoSuchRelation(5))
        ));
    }

    #[test]
    fn while_empty_terminates_when_filled() {
        let hs = infinite_clique();
        // while |Y1|=0 { Y1 := E } — one iteration.
        let p = Prog::WhileEmpty(0, Box::new(Prog::assign(0, Term::E)));
        let v = run_on(&hs, &p).unwrap();
        assert!(!v.is_empty());
    }

    #[test]
    fn while_singleton_escapes_via_up() {
        let hs = infinite_clique();
        // Y1 := E↓ (singleton); while |Y1|=1 { Y1 := Y1↑ } — up from
        // (0) gives {(0,0),(0,1)}: two reps, loop exits.
        let p = Prog::seq([
            Prog::assign(0, Term::E.down()),
            Prog::WhileSingleton(0, Box::new(Prog::assign(0, Term::Var(0).up()))),
        ]);
        let v = run_on(&hs, &p).unwrap();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn diverging_loop_exhausts_fuel() {
        let hs = infinite_clique();
        // Y2 stays empty forever.
        let p = Prog::WhileEmpty(1, Box::new(Prog::assign(0, Term::E)));
        assert!(matches!(run_on(&hs, &p), Err(RunError::Fuel(_))));
    }

    #[test]
    fn whilefinite_rejected_in_qlhs() {
        let hs = infinite_clique();
        let p = Prog::WhileFinite(0, Box::new(Prog::Seq(vec![])));
        assert!(matches!(
            run_on(&hs, &p),
            Err(RunError::DialectViolation(_))
        ));
    }

    #[test]
    fn rado_set_algebra() {
        let hs = rado_graph();
        // T² has 3 classes: diag, edge, non-edge. R1 ∪ E covers 2;
        // its complement is the non-edge class.
        let p = Prog::assign(0, Term::Rel(0).union(Term::E).not());
        let v = run_on(&hs, &p).unwrap();
        assert_eq!(v.len(), 1);
        let rep = v.tuples.first().unwrap();
        assert_ne!(rep[0], rep[1]);
        assert!(!hs.database().query(0, rep.elems()));
    }

    #[test]
    fn uninitialized_variable_is_empty_rank0() {
        let hs = infinite_clique();
        let v = run_on(&hs, &Prog::assign(0, Term::Var(7))).unwrap();
        assert_eq!(v, Val::empty(0));
    }
}
