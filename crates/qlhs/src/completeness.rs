//! The Theorem 3.1 completeness pipeline, Steps 1–4, as an executable
//! library.
//!
//! The proof turns an arbitrary recursive generic hs-r-query `Q` into
//! a QLhs program `P_Q` by:
//!
//! 1. computing a tuple `d` of distinct elements such that every `Cᵢ`
//!    is obtained by projections on `d`;
//! 2. computing `X = (X₁,…,X_k)` — index tuples over ℕ with
//!    `(i₁,…,i_{aⱼ}) ∈ Xⱼ ⟺ d[i₁,…,i_{aⱼ}] ∈ Cⱼ` — an isomorphic copy
//!    `B_ℕ` of the input database over the integers;
//! 3. running `Q` on `B_ℕ` with the Turing-machine power of QLhs
//!    (see [`crate::compile_counter`] for that power, executably);
//! 4. decoding `Q(X)` back through `d`:
//!    `Q(C_B) = ⋃_{(i₁,…,i_m) ∈ Q(X)} d[i₁,…,i_m]`.
//!
//! This module implements the data path — the encoding (Steps 1–2)
//! and decoding (Step 4) around a caller-supplied integer-level query
//! (Step 3) — so the pipeline is testable end-to-end against direct
//! QLhs programs.

use recdb_core::Tuple;
use recdb_hsdb::HsDatabase;
use std::collections::BTreeSet;

/// An index tuple over the positions of `d` (0-based; the paper's
/// `(i₁,…,i_{aⱼ})`).
pub type IndexTuple = Vec<usize>;

/// The Steps 1–2 output: the covering tuple `d` and the integer
/// representation `X` of the database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DEncoding {
    /// The covering tuple of distinct elements.
    pub d: Tuple,
    /// `Xⱼ`: the index tuples whose `d`-projections lie in `Cⱼ`.
    pub x: Vec<BTreeSet<IndexTuple>>,
}

impl DEncoding {
    /// Step 1 + Step 2: collect the distinct elements of all
    /// representative sets into `d` (deterministic order), then read
    /// off each `Xⱼ` by projecting and testing membership.
    pub fn isolate(hs: &HsDatabase) -> DEncoding {
        // Step 1: d = the distinct constants appearing in C₁,…,C_k.
        // (The proof isolates such a d inside Vⁿ via |Vᵢ|=1 tests; at
        // this level the concrete constants are available directly.)
        let mut elems = Vec::new();
        for i in 0..hs.schema().len() {
            for t in hs.reps(i) {
                for &e in t.elems() {
                    if !elems.contains(&e) {
                        elems.push(e);
                    }
                }
            }
        }
        let d = Tuple::from(elems);
        // Step 2: Xⱼ = {(i₁,…) | d[i₁,…] ∈ Cⱼ}. Membership in Cⱼ is
        // up to ≅_B (the Cⱼ hold one representative per class).
        let mut x = Vec::with_capacity(hs.schema().len());
        for j in 0..hs.schema().len() {
            let a = hs.schema().arity(j);
            let mut xj = BTreeSet::new();
            for idx in recdb_core::index_vectors(d.rank(), a) {
                let proj = d.project(&idx);
                if hs.reps(j).iter().any(|rep| hs.equivalent(&proj, rep)) {
                    xj.insert(idx);
                }
            }
            x.push(xj);
        }
        DEncoding { d, x }
    }

    /// Step 4: decode an integer-level answer `Q(X)` back to class
    /// representatives: `⋃ d[i₁,…,i_m]`, canonicalized through the
    /// tree.
    pub fn decode(&self, hs: &HsDatabase, q_of_x: &BTreeSet<IndexTuple>) -> BTreeSet<Tuple> {
        q_of_x
            .iter()
            .map(|idx| hs.canonical_rep(&self.d.project(idx)))
            .collect()
    }
}

/// The full pipeline: encode, run the caller's integer-level query
/// (Step 3), decode. The integer query receives `X` and the length of
/// `d` (the size of its index universe).
pub fn theorem_3_1_pipeline(
    hs: &HsDatabase,
    q_int: impl Fn(&[BTreeSet<IndexTuple>], usize) -> BTreeSet<IndexTuple>,
) -> BTreeSet<Tuple> {
    let enc = DEncoding::isolate(hs);
    let answer = q_int(&enc.x, enc.d.rank());
    enc.decode(hs, &answer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hs_interp::HsInterp;
    use recdb_core::Fuel;
    use recdb_hsdb::{infinite_clique, paper_example_graph, rado_graph};

    fn qlhs_answer(hs: &HsDatabase, src: &str) -> BTreeSet<Tuple> {
        let prog = crate::parse_program(src).unwrap();
        HsInterp::new(hs)
            .run(&prog, &mut Fuel::new(10_000_000))
            .unwrap()
            .tuples
    }

    #[test]
    fn identity_query_recovers_c1() {
        for hs in [infinite_clique(), paper_example_graph(), rado_graph()] {
            let via_pipeline = theorem_3_1_pipeline(&hs, |x, _| x[0].clone());
            assert_eq!(via_pipeline, *hs.reps(0), "pipeline identity = C₁");
        }
    }

    #[test]
    fn encoding_is_an_isomorphic_integer_copy() {
        // X must reproduce membership exactly: (i₁,i₂) ∈ X₁ iff the
        // projection is (equivalent to) a C₁ rep — cross-check against
        // the database oracle.
        let hs = paper_example_graph();
        let enc = DEncoding::isolate(&hs);
        for idx in recdb_core::index_vectors(enc.d.rank(), 2) {
            let proj = enc.d.project(&idx);
            assert_eq!(
                enc.x[0].contains(&idx),
                hs.database().query(0, proj.elems()),
                "X mirrors the database at {idx:?}"
            );
        }
    }

    #[test]
    fn complement_query_through_the_pipeline() {
        // Q = "non-edges among d's positions with distinct indices",
        // integer-level; compare with QLhs ¬R1 restricted to the
        // classes reachable through d. On the paper example, d covers
        // every rank-2 class that involves only C₁'s constants.
        let hs = paper_example_graph();
        let via_pipeline = theorem_3_1_pipeline(&hs, |x, dlen| {
            recdb_core::index_vectors(dlen, 2)
                .into_iter()
                .filter(|idx| !x[0].contains(idx))
                .collect()
        });
        // Every decoded rep must indeed be a non-edge.
        assert!(!via_pipeline.is_empty());
        for rep in &via_pipeline {
            assert!(!hs.database().query(0, rep.elems()));
        }
        // And every QLhs ¬R1 class realized over d's elements appears.
        let neg = qlhs_answer(&hs, "Y1 := !R1;");
        for rep in &neg {
            let realized = {
                let enc = DEncoding::isolate(&hs);
                recdb_core::index_vectors(enc.d.rank(), 2)
                    .into_iter()
                    .any(|idx| hs.equivalent(&enc.d.project(&idx), rep))
            };
            if realized {
                assert!(
                    via_pipeline.contains(rep),
                    "realized non-edge class {rep:?} missing from the pipeline answer"
                );
            }
        }
    }

    #[test]
    fn swap_query_through_the_pipeline_matches_qlhs() {
        // Q(X) = reversed X₁ — matches QLhs swap(R1) on classes
        // realized over d.
        let hs = paper_example_graph();
        let via_pipeline = theorem_3_1_pipeline(&hs, |x, _| {
            x[0].iter()
                .map(|idx| idx.iter().rev().copied().collect())
                .collect()
        });
        let via_qlhs = qlhs_answer(&hs, "Y1 := swap(R1);");
        assert_eq!(via_pipeline, via_qlhs);
    }

    #[test]
    fn d_has_distinct_elements() {
        for hs in [infinite_clique(), paper_example_graph()] {
            let enc = DEncoding::isolate(&hs);
            let d = &enc.d;
            assert_eq!(
                d.distinct_elems().len(),
                d.rank(),
                "Step 1 requires d to have pairwise distinct elements"
            );
        }
    }
}
