//! Static dialect checking for the QL family (§3.3, §4, footnote 8).
//!
//! The three dialects share one AST ([`crate::ast`]); what separates
//! them is which `while` tests they admit:
//!
//! | Dialect | `while |Y|=0` | `while |Y|=1` | `while |Y|<∞` |
//! |---|---|---|---|
//! | QL (finitary, [CH]) | yes | no (only *definable*, via `perm(D)`) | no |
//! | QLhs (§3.3) | yes | yes (primitive; footnote 8) | no |
//! | QLf+ (§4) | yes | no | yes |
//!
//! This module decides dialect membership *syntactically*, before any
//! interpreter runs: [`Dialect::check`] scans a program for tests the
//! dialect does not admit and reports the first violation with the
//! offending node's tree path. All three interpreters call it from
//! their `run` entry points, so an illegal test anywhere in the
//! program — even in a branch a given input never reaches — is
//! rejected up-front instead of surfacing mid-run (or never). The
//! interpreters keep their interpretation-time checks as defense in
//! depth for callers that drive [`exec`](crate::HsInterp::exec)
//! directly with a caller-built environment.
//!
//! The richer static analyzer (`recdb-analyze`) builds its dialect
//! diagnostics on exactly this checker, so there is one source of
//! truth for what each dialect admits.

use crate::ast::{NodePath, Prog};
use std::fmt;

/// One of the three QL-family dialects.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dialect {
    /// Finitary QL — Chandra–Harel's baseline over finite databases.
    Ql,
    /// QLhs — the hs-r-complete variant (§3.3), adds `while |Y|=1`.
    Qlhs,
    /// QLf+ — the finite∕co-finite variant (§4), adds `while |Y|<∞`.
    QlfPlus,
}

impl Dialect {
    /// All dialects, in paper order.
    pub const ALL: [Dialect; 3] = [Dialect::Ql, Dialect::Qlhs, Dialect::QlfPlus];

    /// The dialect's conventional name.
    pub fn name(self) -> &'static str {
        match self {
            Dialect::Ql => "QL",
            Dialect::Qlhs => "QLhs",
            Dialect::QlfPlus => "QLf+",
        }
    }

    /// Does the dialect admit `while |Y|=1` as a primitive?
    pub fn admits_singleton_test(self) -> bool {
        matches!(self, Dialect::Qlhs)
    }

    /// Does the dialect admit `while |Y|<∞`?
    pub fn admits_finiteness_test(self) -> bool {
        matches!(self, Dialect::QlfPlus)
    }

    /// Scans `p` for tests this dialect does not admit, returning the
    /// first violation in program order.
    pub fn check(self, p: &Prog) -> Result<(), DialectViolation> {
        let mut path = Vec::new();
        self.check_at(p, &mut path)
    }

    fn check_at(self, p: &Prog, path: &mut NodePath) -> Result<(), DialectViolation> {
        match p {
            Prog::Assign(..) => Ok(()),
            Prog::Seq(ps) => {
                for (i, q) in ps.iter().enumerate() {
                    path.push(i as u32);
                    self.check_at(q, path)?;
                    path.pop();
                }
                Ok(())
            }
            Prog::WhileEmpty(_, body) => self.check_body(body, path),
            Prog::WhileSingleton(_, body) => {
                if !self.admits_singleton_test() {
                    return Err(DialectViolation {
                        dialect: self,
                        test: IllegalTest::Singleton,
                        path: path.clone(),
                    });
                }
                self.check_body(body, path)
            }
            Prog::WhileFinite(_, body) => {
                if !self.admits_finiteness_test() {
                    return Err(DialectViolation {
                        dialect: self,
                        test: IllegalTest::Finiteness,
                        path: path.clone(),
                    });
                }
                self.check_body(body, path)
            }
        }
    }

    fn check_body(self, body: &Prog, path: &mut NodePath) -> Result<(), DialectViolation> {
        path.push(0);
        let r = self.check_at(body, path);
        path.pop();
        r
    }
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The smallest dialect admitting every test a program uses, if any:
/// `QL ⊂ QLhs` and `QL ⊂ QLf+`, but `QLhs` and `QLf+` are
/// incomparable, so a program mixing `|Y|=1` and `|Y|<∞` fits no
/// dialect and classifies to `None`.
pub fn classify(p: &Prog) -> Option<Dialect> {
    match (p.uses_singleton_test(), p.uses_finiteness_test()) {
        (false, false) => Some(Dialect::Ql),
        (true, false) => Some(Dialect::Qlhs),
        (false, true) => Some(Dialect::QlfPlus),
        (true, true) => None,
    }
}

/// Which illegal test a [`DialectViolation`] found.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IllegalTest {
    /// `while |Y|=1` outside QLhs.
    Singleton,
    /// `while |Y|<∞` outside QLf+.
    Finiteness,
}

/// A static dialect violation: an illegal `while` test, with the tree
/// path of the offending node (see [`crate::ast::NodePath`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DialectViolation {
    /// The dialect the program was checked against.
    pub dialect: Dialect,
    /// The test the dialect does not admit.
    pub test: IllegalTest,
    /// Tree path of the offending `while` node.
    pub path: NodePath,
}

impl DialectViolation {
    /// The interpreter-facing message — the same wording the
    /// interpretation-time checks use, so callers matching on message
    /// content see one vocabulary.
    pub fn message(&self) -> &'static str {
        match (self.dialect, self.test) {
            (Dialect::Ql, IllegalTest::Singleton) => {
                "while |Y|=1 is a QLhs primitive; in finitary QL it is only definable"
            }
            (Dialect::QlfPlus, IllegalTest::Singleton) => {
                "while |Y|=1 is a QLhs primitive, not part of QLf+"
            }
            (Dialect::Ql, IllegalTest::Finiteness) => "while |Y|<∞ is a QLf+ construct",
            (Dialect::Qlhs, IllegalTest::Finiteness) => {
                "while |Y|<∞ is a QLf+ construct; QLhs values are always finite sets of representatives"
            }
            // A dialect never reports a test it admits.
            (Dialect::Qlhs, IllegalTest::Singleton) | (Dialect::QlfPlus, IllegalTest::Finiteness) => {
                unreachable!("admitted test reported as violation")
            }
        }
    }
}

impl fmt::Display for DialectViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rejects this program: {}",
            self.dialect,
            self.message()
        )
    }
}

impl std::error::Error for DialectViolation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    fn singleton_prog() -> Prog {
        Prog::seq([
            Prog::assign(0, Term::E),
            Prog::WhileSingleton(0, Box::new(Prog::assign(0, Term::Var(0).up()))),
        ])
    }

    #[test]
    fn admission_table() {
        assert!(!Dialect::Ql.admits_singleton_test());
        assert!(!Dialect::Ql.admits_finiteness_test());
        assert!(Dialect::Qlhs.admits_singleton_test());
        assert!(!Dialect::Qlhs.admits_finiteness_test());
        assert!(!Dialect::QlfPlus.admits_singleton_test());
        assert!(Dialect::QlfPlus.admits_finiteness_test());
    }

    #[test]
    fn classify_minimal_dialect() {
        assert_eq!(classify(&Prog::assign(0, Term::E)), Some(Dialect::Ql));
        assert_eq!(classify(&singleton_prog()), Some(Dialect::Qlhs));
        let fin = Prog::WhileFinite(0, Box::new(Prog::assign(0, Term::Var(0).not())));
        assert_eq!(classify(&fin), Some(Dialect::QlfPlus));
        let mixed = Prog::seq([singleton_prog(), fin]);
        assert_eq!(classify(&mixed), None);
    }

    #[test]
    fn check_reports_path_of_first_violation() {
        let p = Prog::seq([
            Prog::assign(0, Term::E),
            Prog::WhileEmpty(
                1,
                Box::new(Prog::seq([
                    Prog::assign(1, Term::E),
                    Prog::WhileFinite(0, Box::new(Prog::Seq(vec![]))),
                ])),
            ),
        ]);
        let err = Dialect::Qlhs.check(&p).unwrap_err();
        assert_eq!(err.test, IllegalTest::Finiteness);
        // Seq child 1 → while body (child 0) → Seq child 1.
        assert_eq!(err.path, vec![1, 0, 1]);
        assert!(err.message().contains("QLf+"));
    }

    #[test]
    fn every_dialect_admits_its_own_programs() {
        assert!(Dialect::Qlhs.check(&singleton_prog()).is_ok());
        assert!(Dialect::Ql.check(&singleton_prog()).is_err());
        assert!(Dialect::QlfPlus.check(&singleton_prog()).is_err());
        // Plain QL programs pass everywhere.
        let ql = Prog::WhileEmpty(0, Box::new(Prog::assign(0, Term::E)));
        for d in Dialect::ALL {
            assert!(d.check(&ql).is_ok(), "{d} must admit plain QL");
        }
    }

    #[test]
    fn violation_display_names_dialect() {
        let err = Dialect::Ql.check(&singleton_prog()).unwrap_err();
        let s = err.to_string();
        assert!(s.contains("QL rejects"), "{s}");
    }
}
