//! Semi-naive (delta) evaluation of QL-family `while` loops.
//!
//! A from-scratch `while` loop re-evaluates its whole body against the
//! full variable values every iteration — `O(program × structure)` per
//! round. When the body is *provably inflationary and monotone* in the
//! variables it writes, the classic datafrog discipline applies: keep
//! each written variable as a growing log ([`recdb_core::DeltaVar`]),
//! and per round feed each statement only the tuples its source
//! variable gained since that statement last ran.
//!
//! # The provable fragment
//!
//! [`classify_loop`] accepts a loop body iff it flattens (through
//! `Seq`) to assignments only, and every assignment has the shape
//!
//! ```text
//! Y_w := Y_w ∪ s        (union as the derived ¬(¬a ∩ ¬b) pattern)
//! ```
//!
//! where `s` is **linear monotone** over the set `W` of loop-written
//! variables: at most one occurrence of a `W`-variable, reached
//! through `∩`/`↑`/`↓`/`~` only (the other `∩` operand must be
//! `W`-free), and `¬` only inside `W`-free subterms. Linear monotone
//! terms distribute over union — `s(X ∪ Δ) = s(X) ∪ s(Δ)` — which is
//! what makes per-statement delta feeding *exact*, not approximate:
//! the engine reproduces the from-scratch iteration values, guard
//! decisions, and final environment bit-for-bit. (Monotone but
//! non-inflationary replacement writes are rejected on purpose:
//! sequential swap-via-temporary bodies oscillate forever without ever
//! shrinking, so value logs alone cannot represent them.)
//!
//! # The fallback contract
//!
//! [`try_loop`] never mutates the environment until the loop has run
//! to successful completion. On *any* obstruction — ineligible body,
//! non-finite values, a rank mismatch, an evaluation error, fuel
//! exhaustion — it abandons its private state and returns `false`, and
//! the interpreter re-runs the untouched from-scratch loop, which
//! reproduces the exact from-scratch outcome (including which error is
//! reported). The from-scratch path thus stays live as the
//! differential oracle, exactly like `partition_by_local_iso_pairwise`
//! in the refinement pipeline; the `SEMI-NAIVE-DIFF` conformance check
//! drives both paths over random programs.
//!
//! A stabilized delta (no new tuples in a round) with the guard still
//! true means the from-scratch loop diverges; the engine burns the
//! remaining fuel and falls back, so the caller reports the same
//! `FuelError` the from-scratch loop would.

use crate::ast::{Prog, Term, VarId};
use crate::value::RunError;
use recdb_core::{DeltaVar, Fuel, Tuple, TupleInterner};
use std::collections::{BTreeMap, BTreeSet};

/// Why a loop body is outside the provable semi-naive fragment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IneligibleLoop {
    /// The body contains a nested `while`.
    NestedLoop,
    /// An assignment is not of the shape `Y_w := Y_w ∪ s`.
    NotInflationary,
    /// A delta source mentions loop-written variables in more than one
    /// position (union distributivity fails).
    NonLinearSource,
    /// A loop-written variable occurs under `¬` (anti-monotone).
    NegatedDelta,
}

impl IneligibleLoop {
    /// A short human-readable reason.
    pub fn message(self) -> &'static str {
        match self {
            IneligibleLoop::NestedLoop => "loop body contains a nested while",
            IneligibleLoop::NotInflationary => {
                "an assignment is not an inflationary union Y := Y ∪ s"
            }
            IneligibleLoop::NonLinearSource => {
                "a delta source mentions loop-written variables in more than one position"
            }
            IneligibleLoop::NegatedDelta => "a loop-written variable occurs under ¬",
        }
    }
}

/// One compiled body statement `Y_target := Y_target ∪ s`.
#[derive(Clone, Debug)]
pub struct PlanStmt {
    /// The written variable.
    pub target: VarId,
    /// The loop-written variable `s` reads (its delta source), or
    /// `None` when `s` is constant across iterations.
    pub source: Option<VarId>,
    /// `s` with the delta-source occurrence replaced by the scratch
    /// variable; evaluated by the backend against per-round deltas.
    rewritten: Term,
}

/// A loop body compiled for semi-naive execution.
#[derive(Clone, Debug)]
pub struct LoopPlan {
    /// The statements, in body order.
    pub stmts: Vec<PlanStmt>,
    /// The scratch slot deltas are staged through (one past the
    /// largest variable the body mentions).
    pub scratch: VarId,
    /// The set `W` of loop-written variables.
    pub writes: BTreeSet<VarId>,
}

/// Does `t` mention any variable from `vars`?
fn mentions(t: &Term, vars: &BTreeSet<VarId>) -> bool {
    match t {
        Term::E | Term::Rel(_) | Term::Const(_) => false,
        Term::Var(v) => vars.contains(v),
        Term::And(a, b) => mentions(a, vars) || mentions(b, vars),
        Term::Not(e) | Term::Up(e) | Term::Down(e) | Term::Swap(e) => mentions(e, vars),
    }
}

/// Checks `s` is linear monotone over `writes` and substitutes its one
/// `W`-occurrence with `Var(scratch)`; returns the rewritten term and
/// the source variable.
fn rewrite(
    s: &Term,
    writes: &BTreeSet<VarId>,
    scratch: VarId,
) -> Result<(Term, Option<VarId>), IneligibleLoop> {
    if !mentions(s, writes) {
        return Ok((s.clone(), None));
    }
    match s {
        Term::Var(w) => Ok((Term::Var(scratch), Some(*w))),
        Term::And(a, b) => {
            if mentions(a, writes) && mentions(b, writes) {
                return Err(IneligibleLoop::NonLinearSource);
            }
            if mentions(a, writes) {
                let (ra, src) = rewrite(a, writes, scratch)?;
                Ok((Term::And(Box::new(ra), b.clone()), src))
            } else {
                let (rb, src) = rewrite(b, writes, scratch)?;
                Ok((Term::And(a.clone(), Box::new(rb)), src))
            }
        }
        Term::Up(e) => {
            let (re, src) = rewrite(e, writes, scratch)?;
            Ok((Term::Up(Box::new(re)), src))
        }
        Term::Down(e) => {
            let (re, src) = rewrite(e, writes, scratch)?;
            Ok((Term::Down(Box::new(re)), src))
        }
        Term::Swap(e) => {
            let (re, src) = rewrite(e, writes, scratch)?;
            Ok((Term::Swap(Box::new(re)), src))
        }
        Term::Not(_) => Err(IneligibleLoop::NegatedDelta),
        Term::E | Term::Rel(_) | Term::Const(_) => Ok((s.clone(), None)),
    }
}

/// Flattens `body` through `Seq` into assignments; `Err` on a nested
/// loop.
fn flatten<'p>(body: &'p Prog, out: &mut Vec<(VarId, &'p Term)>) -> Result<(), IneligibleLoop> {
    match body {
        Prog::Assign(v, e) => {
            out.push((*v, e));
            Ok(())
        }
        Prog::Seq(ps) => ps.iter().try_for_each(|p| flatten(p, out)),
        Prog::WhileEmpty(..) | Prog::WhileSingleton(..) | Prog::WhileFinite(..) => {
            Err(IneligibleLoop::NestedLoop)
        }
    }
}

/// Compiles a loop body into a [`LoopPlan`], or reports why it is
/// outside the provable fragment. Purely syntactic — shared by the
/// three interpreters and by the `recdb-analyze` delta pass.
pub fn classify_loop(body: &Prog) -> Result<LoopPlan, IneligibleLoop> {
    let mut assigns = Vec::new();
    flatten(body, &mut assigns)?;
    let writes: BTreeSet<VarId> = assigns.iter().map(|(w, _)| *w).collect();
    let scratch = body.max_var().map_or(0, |m| m + 1);
    let mut stmts = Vec::new();
    for (w, term) in assigns {
        // Recognize the derived union ¬(¬a ∩ ¬b) with a or b = Y_w.
        let Term::Not(inner) = term else {
            return Err(IneligibleLoop::NotInflationary);
        };
        let Term::And(na, nb) = inner.as_ref() else {
            return Err(IneligibleLoop::NotInflationary);
        };
        let (Term::Not(a), Term::Not(b)) = (na.as_ref(), nb.as_ref()) else {
            return Err(IneligibleLoop::NotInflationary);
        };
        let s = if a.as_ref() == &Term::Var(w) {
            b.as_ref()
        } else if b.as_ref() == &Term::Var(w) {
            a.as_ref()
        } else {
            return Err(IneligibleLoop::NotInflationary);
        };
        let (rewritten, source) = rewrite(s, &writes, scratch)?;
        stmts.push(PlanStmt {
            target: w,
            source,
            rewritten,
        });
    }
    Ok(LoopPlan {
        stmts,
        scratch,
        writes,
    })
}

/// The value operations the delta engine needs from a backend's value
/// type. `Val` (Fin/Hs) is always finite; `FcfVal` exposes its
/// indicator.
pub trait DeltaValue: Clone {
    /// The value's rank.
    fn rank(&self) -> usize;
    /// Tuple count of the finite part (the guard cardinality for
    /// finite values).
    fn count(&self) -> usize;
    /// Is the relation finite (the `|Y| < ∞` guard)?
    fn is_finite(&self) -> bool;
    /// The tuples, if the relation is finite.
    fn finite_tuples(&self) -> Option<&BTreeSet<Tuple>>;
    /// Builds a finite value.
    fn from_tuples(rank: usize, tuples: BTreeSet<Tuple>) -> Self;
    /// The default for unbound variables: the empty rank-0 relation.
    fn empty0() -> Self;
}

impl DeltaValue for crate::value::Val {
    fn rank(&self) -> usize {
        self.rank
    }
    fn count(&self) -> usize {
        self.tuples.len()
    }
    fn is_finite(&self) -> bool {
        true
    }
    fn finite_tuples(&self) -> Option<&BTreeSet<Tuple>> {
        Some(&self.tuples)
    }
    fn from_tuples(rank: usize, tuples: BTreeSet<Tuple>) -> Self {
        crate::value::Val { rank, tuples }
    }
    fn empty0() -> Self {
        crate::value::Val::empty(0)
    }
}

impl DeltaValue for crate::fcf_interp::FcfVal {
    fn rank(&self) -> usize {
        self.rank
    }
    fn count(&self) -> usize {
        self.tuples.len()
    }
    fn is_finite(&self) -> bool {
        self.finite
    }
    fn finite_tuples(&self) -> Option<&BTreeSet<Tuple>> {
        self.finite.then_some(&self.tuples)
    }
    fn from_tuples(rank: usize, tuples: BTreeSet<Tuple>) -> Self {
        crate::fcf_interp::FcfVal {
            rank,
            finite: true,
            tuples,
        }
    }
    fn empty0() -> Self {
        crate::fcf_interp::FcfVal::empty(0)
    }
}

/// A term evaluator the delta engine can drive — implemented by the
/// three interpreters, so every `↑`/`↓`/`~`/canonicalization step runs
/// through the backend's own (already tested) semantics.
pub trait DeltaBackend {
    /// The backend's value type.
    type V: DeltaValue;
    /// Evaluates a term in an environment.
    fn eval(&mut self, t: &Term, env: &[Self::V], fuel: &mut Fuel) -> Result<Self::V, RunError>;
}

/// Which `while` guard the loop uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopKind {
    /// `while |Y| = 0`.
    Empty,
    /// `while |Y| = 1`.
    Singleton,
    /// `while |Y| < ∞`.
    Finite,
}

fn fallback(reason: &'static str) -> bool {
    recdb_obs::count("fixpoint.seminaive.fallbacks", 1);
    let _ = reason;
    false
}

/// Attempts to run `while <kind>(Y_guard) do body` semi-naively.
///
/// Returns `true` when the loop ran to completion (the environment now
/// holds the exact from-scratch result). Returns `false` — with the
/// environment untouched — when the caller must run the from-scratch
/// loop instead: the body is outside the provable fragment, a value
/// was not a finite relation, ranks disagreed with the union shape, an
/// evaluation error occurred, or fuel ran out.
pub fn try_loop<B: DeltaBackend>(
    backend: &mut B,
    kind: LoopKind,
    guard: VarId,
    body: &Prog,
    env: &mut Vec<B::V>,
    fuel: &mut Fuel,
) -> bool {
    let Ok(plan) = classify_loop(body) else {
        return fallback("ineligible body");
    };
    // Entry snapshot: one DeltaVar per written variable, seeded with
    // the entry value so the first round's per-statement delta is the
    // full entry value — round 1 then reproduces iteration 1 exactly.
    let mut interner = TupleInterner::new();
    let mut dvs: BTreeMap<VarId, DeltaVar> = BTreeMap::new();
    let mut ranks: BTreeMap<VarId, usize> = BTreeMap::new();
    for &w in &plan.writes {
        let entry = env.get(w).cloned().unwrap_or_else(B::V::empty0);
        let Some(tuples) = entry.finite_tuples() else {
            return fallback("co-finite loop variable");
        };
        let mut dv = DeltaVar::new();
        for t in tuples {
            dv.insert(interner.intern(t));
        }
        ranks.insert(w, entry.rank());
        dvs.insert(w, dv);
    }
    let guard_size = |dvs: &BTreeMap<VarId, DeltaVar>, env: &[B::V]| -> usize {
        match dvs.get(&guard) {
            Some(dv) => dv.len(),
            None => env.get(guard).map_or(0, DeltaValue::count),
        }
    };
    let guard_finite = |dvs: &BTreeMap<VarId, DeltaVar>, env: &[B::V]| -> bool {
        match dvs.get(&guard) {
            Some(_) => true, // loop variables stay finite by construction
            None => env.get(guard).is_none_or(DeltaValue::is_finite),
        }
    };
    let continues = |dvs: &BTreeMap<VarId, DeltaVar>, env: &[B::V]| -> bool {
        match kind {
            LoopKind::Empty => guard_size(dvs, env) == 0,
            LoopKind::Singleton => guard_size(dvs, env) == 1,
            LoopKind::Finite => guard_finite(dvs, env),
        }
    };
    // Scratch environment: entry values (K-subterms are W-free, so
    // these never go stale) plus the delta staging slot.
    let mut scratch_env: Vec<B::V> = (0..=plan.scratch)
        .map(|v| env.get(v).cloned().unwrap_or_else(B::V::empty0))
        .collect();
    let mut cursors = vec![0usize; plan.stmts.len()];
    let mut rounds: u64 = 0;
    loop {
        if !continues(&dvs, env) {
            break;
        }
        if fuel.tick().is_err() {
            // The from-scratch loop's next tick fails identically.
            return fallback("fuel exhausted");
        }
        rounds += 1;
        let mut progress = false;
        for (i, stmt) in plan.stmts.iter().enumerate() {
            if fuel.tick().is_err() {
                return fallback("fuel exhausted");
            }
            let delta: B::V = match stmt.source {
                Some(src) => {
                    let dv = &dvs[&src];
                    let cur = cursors[i];
                    cursors[i] = dv.len();
                    if cur == dv.len() && rounds > 1 {
                        // Linear monotone s: s(∅) = ∅. Round 1 always
                        // evaluates, so static errors still surface.
                        continue;
                    }
                    let tuples: BTreeSet<Tuple> = dv
                        .added_since(cur)
                        .iter()
                        .map(|&id| interner.resolve(id).clone())
                        .collect();
                    B::V::from_tuples(ranks[&src], tuples)
                }
                None => {
                    if rounds > 1 {
                        continue; // constant source: contributed on round 1
                    }
                    B::V::empty0()
                }
            };
            scratch_env[plan.scratch] = delta;
            let contribution = match backend.eval(&stmt.rewritten, &scratch_env, fuel) {
                Ok(v) => v,
                Err(_) => return fallback("evaluation error"),
            };
            let Some(tuples) = contribution.finite_tuples() else {
                return fallback("co-finite contribution");
            };
            if contribution.rank() != ranks[&stmt.target] {
                // The from-scratch union ¬(¬v ∩ ¬s) raises the same
                // mismatch on its first iteration.
                return fallback("union rank mismatch");
            }
            recdb_obs::observe("fixpoint.delta.size", tuples.len() as u64);
            let ids: Vec<_> = tuples.iter().map(|t| interner.intern(t)).collect();
            let Some(dv) = dvs.get_mut(&stmt.target) else {
                return fallback("unseeded target"); // unreachable: targets ⊆ writes
            };
            for id in ids {
                if dv.insert(id) {
                    progress = true;
                }
            }
        }
        for dv in dvs.values_mut() {
            dv.changed();
        }
        if !progress && continues(&dvs, env) {
            // Fixpoint reached with the guard still true: the
            // from-scratch loop diverges. Burn the budget so the
            // fallback reports the same FuelError immediately.
            while fuel.tick().is_ok() {}
            return fallback("divergent loop");
        }
    }
    if rounds > 0 {
        for (&w, dv) in &dvs {
            let tuples: BTreeSet<Tuple> =
                dv.iter().map(|id| interner.resolve(id).clone()).collect();
            if w >= env.len() {
                env.resize(w + 1, B::V::empty0());
            }
            env[w] = B::V::from_tuples(ranks[&w], tuples);
        }
    }
    recdb_obs::count("fixpoint.seminaive.loops", 1);
    recdb_obs::observe("fixpoint.delta.rounds", rounds);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Prog, Term};
    use crate::fin_interp::FinInterp;
    use crate::value::Val;
    use recdb_core::FiniteStructure;

    fn union_assign(v: VarId, s: Term) -> Prog {
        Prog::assign(v, Term::Var(v).union(s))
    }

    #[test]
    fn classify_accepts_frontier_loop() {
        // Y1 := Y1 ∪ down(up(Y1) ∩ R1); Y2 := Y2 ∪ (Y1 ∩ C5)
        let body = Prog::seq([
            union_assign(0, Term::Var(0).up().and(Term::Rel(0)).down()),
            union_assign(1, Term::Var(0).and(Term::Const(5))),
        ]);
        let plan = classify_loop(&body).expect("eligible");
        assert_eq!(plan.stmts.len(), 2);
        assert_eq!(plan.stmts[0].source, Some(0));
        assert_eq!(plan.stmts[1].source, Some(0));
        assert_eq!(plan.writes.iter().copied().collect::<Vec<_>>(), [0, 1]);
    }

    #[test]
    fn classify_rejects_outside_fragment() {
        // Nested loop.
        let nested = Prog::WhileEmpty(0, Box::new(Prog::assign(0, Term::E)));
        assert_eq!(
            classify_loop(&nested).err(),
            Some(IneligibleLoop::NestedLoop)
        );
        // Plain replacement (not union-shaped).
        let replace = Prog::assign(0, Term::Var(0).up());
        assert_eq!(
            classify_loop(&replace).err(),
            Some(IneligibleLoop::NotInflationary)
        );
        // Non-linear source: both ∩ operands read the written var.
        let nonlinear = union_assign(0, Term::Var(0).up().and(Term::Var(0).up().swap()));
        assert_eq!(
            classify_loop(&nonlinear).err(),
            Some(IneligibleLoop::NonLinearSource)
        );
        // Written var under ¬ inside the source.
        let negated = union_assign(0, Term::Var(0).not().down());
        assert_eq!(
            classify_loop(&negated).err(),
            Some(IneligibleLoop::NegatedDelta)
        );
    }

    #[test]
    fn w_free_not_is_still_eligible() {
        // ¬ over a term not touching loop-written vars is constant
        // across iterations, hence fine.
        let body = union_assign(0, Term::Rel(0).not().down());
        let plan = classify_loop(&body).expect("W-free ¬ is eligible");
        assert_eq!(plan.stmts[0].source, None);
    }

    fn path(n: u64) -> FiniteStructure {
        FiniteStructure::undirected_graph(0..n, (0..n - 1).map(|i| (i, i + 1)))
    }

    /// `Y2 := C0; Y3 := C0 ∩ C1; while |Y3|=0 { Y2 ∪= succ(Y2); Y3 ∪= Y2 ∩ C_last }`
    fn reach_prog(last: u64) -> Prog {
        let succ = Term::Var(1).up().and(Term::Rel(0)).down();
        Prog::seq([
            Prog::assign(1, Term::Const(0)),
            Prog::assign(2, Term::Const(0).and(Term::Const(1))),
            Prog::WhileEmpty(
                2,
                Box::new(Prog::seq([
                    union_assign(1, succ),
                    union_assign(2, Term::Var(1).and(Term::Const(last))),
                ])),
            ),
        ])
    }

    #[test]
    fn seminaive_matches_from_scratch_on_reachability() {
        let st = path(8);
        let p = reach_prog(7);
        let on = FinInterp::new(&st);
        let mut off = FinInterp::new(&st);
        off.set_seminaive(false);
        let a = on.run(&p, &mut Fuel::new(1_000_000));
        let b = off.run(&p, &mut Fuel::new(1_000_000));
        assert_eq!(a, b);
        let v = a.expect("reachability terminates");
        assert!(v.is_empty(), "Y1 untouched");
    }

    #[test]
    fn seminaive_final_frontier_value_is_exact() {
        let st = path(6);
        // Surface Y2 (the frontier) as the program result.
        let p = Prog::seq([reach_prog(5), Prog::assign(0, Term::Var(1))]);
        let interp = FinInterp::new(&st);
        let v = interp.run(&p, &mut Fuel::new(1_000_000)).expect("runs");
        assert_eq!(v.rank, 1);
        assert_eq!(v.len(), 6, "every path node reached");
    }

    #[test]
    fn divergent_eligible_loop_exhausts_fuel() {
        let st = path(3);
        // Y2 saturates but the guard var Y3 never fills: divergence.
        let body = union_assign(1, Term::Var(1).up().and(Term::Rel(0)).down());
        let p = Prog::seq([
            Prog::assign(1, Term::Const(0)),
            Prog::WhileEmpty(2, Box::new(body)),
        ]);
        let interp = FinInterp::new(&st);
        let mut env = vec![Val::empty(0); 3];
        let mut fuel = Fuel::new(50_000);
        let r = interp.exec(&p, &mut env, &mut fuel);
        assert!(matches!(r, Err(RunError::Fuel(_))));
        assert_eq!(fuel.remaining(), 0);
    }

    #[test]
    fn rank_mismatched_union_reports_from_scratch_error() {
        let st = path(3);
        // Y2 entry rank 0 (uninitialized), source rank 1: the union's
        // ∩ mismatches on iteration 1 in both engines.
        let p = Prog::WhileEmpty(1, Box::new(union_assign(1, Term::Const(0))));
        let interp = FinInterp::new(&st);
        let mut env = vec![Val::empty(0); 2];
        let r = interp.exec(&p, &mut env, &mut Fuel::new(10_000));
        assert!(matches!(r, Err(RunError::RankMismatch { .. })), "{r:?}");
    }
}
