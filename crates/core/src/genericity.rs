//! Genericity and local genericity (Def 2.5) — checkers and
//! counterexamples.
//!
//! A query is *generic* if it preserves isomorphisms and *locally
//! generic* if it preserves local isomorphisms. Local genericity
//! implies genericity but not conversely; Prop 2.5 shows the two
//! coincide for *recursive* queries. This module provides:
//!
//! * [`amalgamate`] — the database `B₃` glued from two pairs, the
//!   engine of the Prop 2.3/2.5 proofs;
//! * empirical checkers that hunt for genericity violations over
//!   supplied sample pairs;
//! * the paper's counterexample query `{x | ∃y (x≠y ∧ (x,y) ∈ R)}`,
//!   which is generic but **not** locally generic.

use crate::{
    locally_isomorphic, Database, DatabaseBuilder, Elem, FnRelation, QueryOutcome, RQuery, Tuple,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The amalgamated database of Prop 2.3: given `(B₁,u)` and `(B₂,v)`,
/// builds `B₃` whose domain contains (disjoint copies of) the elements
/// of `u` and `v`, with `z ∈ Sᵢ` iff `z` is over `u`'s copy and
/// `z ∈ Rᵢ`, or over `v`'s copy and `z ∈ R'ᵢ`. Returns `(B₃, u₃, v₃)`
/// with `(B₁,u) ≅ₗ (B₃,u₃)` and `(B₂,v) ≅ₗ (B₃,v₃)`.
///
/// Encoding: the `j`-th distinct element of `u` becomes `2j`, the
/// `j`-th distinct element of `v` becomes `2j+1`; all other naturals
/// are fresh padding making the domain infinite, and belong to no
/// relation.
///
/// # Panics
/// Panics if the databases have different schemas.
pub fn amalgamate(b1: &Database, u: &Tuple, b2: &Database, v: &Tuple) -> (Database, Tuple, Tuple) {
    assert_eq!(b1.schema(), b2.schema(), "amalgamation needs equal types");
    let du = u.distinct_elems();
    let dv = v.distinct_elems();
    // Position ↦ new element maps.
    let enc_u: BTreeMap<Elem, Elem> = du
        .iter()
        .enumerate()
        .map(|(j, &e)| (e, Elem(2 * j as u64)))
        .collect();
    let enc_v: BTreeMap<Elem, Elem> = dv
        .iter()
        .enumerate()
        .map(|(j, &e)| (e, Elem(2 * j as u64 + 1)))
        .collect();
    // Decoders captured by the relation closures.
    let dec_u: Arc<Vec<Elem>> = Arc::new(du.clone());
    let dec_v: Arc<Vec<Elem>> = Arc::new(dv.clone());
    let mut builder = DatabaseBuilder::new(format!("amalgam({},{})", b1.name(), b2.name()));
    for i in 0..b1.schema().len() {
        let a = b1.schema().arity(i);
        let (b1c, b2c) = (b1.clone(), b2.clone());
        let (dec_u, dec_v) = (Arc::clone(&dec_u), Arc::clone(&dec_v));
        let name = b1.schema().name(i).to_string();
        builder = builder.relation(
            name,
            FnRelation::new("amalgam", a, move |t: &[Elem]| {
                // A tuple is in Sᵢ iff it decodes entirely into u's copy
                // and holds in B₁, or entirely into v's copy and holds
                // in B₂. (Rank-0 tuples are vacuously "over" both
                // copies; the paper's construction makes ( ) ∈ Sᵢ iff it
                // is in Rᵢ — we take the union, consistent with both
                // pairs being locally isomorphic to their originals
                // only when the rank-0 facts agree.)
                let over_u = t
                    .iter()
                    .all(|e| e.value() % 2 == 0 && (e.value() / 2) < dec_u.len() as u64);
                let over_v = t
                    .iter()
                    .all(|e| e.value() % 2 == 1 && (e.value() / 2) < dec_v.len() as u64);
                if over_u {
                    let orig: Vec<Elem> =
                        t.iter().map(|e| dec_u[(e.value() / 2) as usize]).collect();
                    if b1c.query(i, &orig) {
                        return true;
                    }
                }
                if over_v {
                    let orig: Vec<Elem> =
                        t.iter().map(|e| dec_v[(e.value() / 2) as usize]).collect();
                    if b2c.query(i, &orig) {
                        return true;
                    }
                }
                false
            }),
        );
    }
    let u3 = u.map(|e| enc_u[&e]);
    let v3 = v.map(|e| enc_v[&e]);
    (builder.build(), u3, v3)
}

/// A witnessed violation of (local) genericity.
#[derive(Clone, Debug)]
pub struct GenericityViolation {
    /// The first pair's database name and tuple.
    pub left: (String, Tuple),
    /// The second pair's database name and tuple.
    pub right: (String, Tuple),
    /// The differing outcomes.
    pub outcomes: (QueryOutcome, QueryOutcome),
}

/// Hunts for local-genericity violations of `q` over all pairs of the
/// supplied samples: any two locally isomorphic `(db,u)` pairs must get
/// equal outcomes. Returns the first violation found, or `None`.
pub fn find_local_genericity_violation(
    q: &dyn RQuery,
    samples: &[(Database, Tuple)],
) -> Option<GenericityViolation> {
    for (i, (db1, u)) in samples.iter().enumerate() {
        for (db2, v) in &samples[i..] {
            if !locally_isomorphic(db1, u, db2, v) {
                continue;
            }
            let (o1, o2) = (q.contains(db1, u), q.contains(db2, v));
            if o1 != o2 {
                return Some(GenericityViolation {
                    left: (db1.name().to_string(), u.clone()),
                    right: (db2.name().to_string(), v.clone()),
                    outcomes: (o1, o2),
                });
            }
        }
    }
    None
}

/// The paper's generic-but-not-locally-generic query (§2):
/// `Q = {x | ∃y (x ≠ y ∧ (x,y) ∈ R)}` over a single binary relation.
///
/// Because the `∃y` ranges over an infinite domain, membership is only
/// *semi*-decidable by search; `search_bound` caps the candidate `y`s
/// (take it larger than any element relevant to the experiment). The
/// query is generic — isomorphisms preserve the existence of a witness
/// — but not locally generic: with `R₁ = {(a,a),(a,b)}` and
/// `R₂ = {(c,c)}`, `(R₁,(a)) ≅ₗ (R₂,(c))` yet `a ∈ Q(R₁)` while
/// `c ∉ Q(R₂)`.
pub struct ExistsOtherNeighborQuery {
    /// Exclusive upper bound on searched witnesses `y ∈ {0..bound}`.
    pub search_bound: u64,
}

impl RQuery for ExistsOtherNeighborQuery {
    fn output_rank(&self) -> Option<usize> {
        Some(1)
    }

    fn contains(&self, db: &Database, u: &Tuple) -> QueryOutcome {
        assert_eq!(
            db.schema().arities(),
            &[2],
            "query is over one binary relation"
        );
        if u.rank() != 1 {
            return QueryOutcome::Defined(false);
        }
        let x = u[0];
        for y in 0..self.search_bound {
            let y = Elem(y);
            if y != x && db.query(0, &[x, y]) {
                return QueryOutcome::Defined(true);
            }
        }
        QueryOutcome::Defined(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, FiniteRelation, Schema};

    fn paper_r1() -> Database {
        DatabaseBuilder::new("R1")
            .relation("R", FiniteRelation::edges([(1, 1), (1, 2)]))
            .build()
    }
    fn paper_r2() -> Database {
        DatabaseBuilder::new("R2")
            .relation("R", FiniteRelation::edges([(3, 3)]))
            .build()
    }

    #[test]
    fn amalgam_preserves_local_isomorphism_to_both_sides() {
        let (b1, u) = (paper_r1(), tuple![1]);
        let (b2, v) = (paper_r2(), tuple![3]);
        let (b3, u3, v3) = amalgamate(&b1, &u, &b2, &v);
        assert!(locally_isomorphic(&b1, &u, &b3, &u3));
        assert!(locally_isomorphic(&b2, &v, &b3, &v3));
    }

    #[test]
    fn amalgam_of_rank_two_pairs() {
        let (b1, u) = (paper_r1(), tuple![1, 2]);
        let (b2, v) = (paper_r2(), tuple![3, 4]);
        let (b3, u3, v3) = amalgamate(&b1, &u, &b2, &v);
        assert!(locally_isomorphic(&b1, &u, &b3, &u3));
        assert!(locally_isomorphic(&b2, &v, &b3, &v3));
        // The two images live on disjoint elements of B₃.
        assert!(u3.elems().iter().all(|e| e.value() % 2 == 0));
        assert!(v3.elems().iter().all(|e| e.value() % 2 == 1));
    }

    #[test]
    fn paper_counterexample_violates_local_genericity() {
        let q = ExistsOtherNeighborQuery { search_bound: 100 };
        // a=1 has the other-neighbour b=2; c=3 has none.
        assert!(q.contains(&paper_r1(), &tuple![1]).is_member());
        assert!(!q.contains(&paper_r2(), &tuple![3]).is_member());
        // And (R₁,(1)) ≅ₗ (R₂,(3)) — the violation.
        let samples = vec![(paper_r1(), tuple![1]), (paper_r2(), tuple![3])];
        let v = find_local_genericity_violation(&q, &samples)
            .expect("the paper's counterexample must be detected");
        assert_eq!(v.outcomes.0, QueryOutcome::Defined(true));
        assert_eq!(v.outcomes.1, QueryOutcome::Defined(false));
    }

    #[test]
    fn class_union_queries_pass_the_checker() {
        use crate::{enumerate_classes, ClassUnionQuery};
        let schema = Schema::new([2]);
        // The reflexive-pair query: x=y ∧ R(x,x).
        let classes: Vec<_> = enumerate_classes(&schema, 2)
            .into_iter()
            .filter(|ty| {
                let (db, u) = ty.witness(&schema);
                u[0] == u[1] && db.query(0, &[u[0], u[0]])
            })
            .collect();
        let q = ClassUnionQuery::new(schema, 2, classes);
        let samples = vec![
            (paper_r1(), tuple![1, 1]),
            (paper_r1(), tuple![2, 2]),
            (paper_r2(), tuple![3, 3]),
            (paper_r2(), tuple![4, 4]),
            (paper_r1(), tuple![1, 2]),
        ];
        assert!(find_local_genericity_violation(&q, &samples).is_none());
    }

    #[test]
    fn amalgam_padding_elements_are_isolated() {
        let (b1, u) = (paper_r1(), tuple![1]);
        let (b2, v) = (paper_r2(), tuple![3]);
        let (b3, _, _) = amalgamate(&b1, &u, &b2, &v);
        // Elements beyond the two copies belong to no relation.
        assert!(!b3.query(0, &[Elem(40), Elem(41)]));
        assert!(
            !b3.query(0, &[Elem(0), Elem(1)]),
            "cross-copy tuples absent"
        );
    }

    #[test]
    fn amalgam_equal_rank_forced_by_prop_2_3() {
        // Prop 2.3 part 3's engine: if u ∈ Q(B₁) and v ∈ Q(B₂) for a
        // locally generic Q, both transfer into B₃, whose output is one
        // relation — hence |u| = |v|. We verify the transfer mechanics:
        // any ClassUnionQuery answers identically on (B₁,u)/(B₃,u₃).
        use crate::{enumerate_classes, ClassUnionQuery};
        let schema = Schema::new([2]);
        let q = ClassUnionQuery::new(
            schema.clone(),
            1,
            enumerate_classes(&schema, 1).into_iter().filter(|ty| {
                let (db, u) = ty.witness(&schema);
                db.query(0, &[u[0], u[0]])
            }),
        );
        let (b1, u) = (paper_r1(), tuple![1]);
        let (b2, v) = (paper_r2(), tuple![3]);
        let (b3, u3, v3) = amalgamate(&b1, &u, &b2, &v);
        assert_eq!(q.contains(&b1, &u), q.contains(&b3, &u3));
        assert_eq!(q.contains(&b2, &v), q.contains(&b3, &v3));
    }
}
