//! Finite relational structures.
//!
//! Finite structures appear throughout the paper as *restrictions*: the
//! restriction of an r-db to the elements of a tuple (Def 2.2(3)), the
//! finite parts of fcf relations (§4), the finite data bases of the
//! Chandra–Harel baseline, and the small graphs fed to the §6 gadget.
//! Unlike [`crate::Database`], a [`FiniteStructure`] is fully
//! materialized, so genuine isomorphism *search* (not just the fixed
//! positional map of `≅ₗ`) is decidable; this module provides it, along
//! with automorphism enumeration.

use crate::{Database, Elem, Schema, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// A finite relational structure: a finite universe plus finite
/// relations matching a schema.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FiniteStructure {
    schema: Schema,
    universe: Vec<Elem>,
    relations: Vec<BTreeSet<Tuple>>,
}

impl FiniteStructure {
    /// Builds a structure, checking that every tuple is over the
    /// universe and has the right rank.
    ///
    /// # Panics
    /// Panics on rank mismatch or tuples mentioning elements outside
    /// the universe.
    pub fn new(
        schema: Schema,
        universe: impl IntoIterator<Item = Elem>,
        relations: Vec<BTreeSet<Tuple>>,
    ) -> Self {
        let universe: Vec<Elem> = {
            let mut u: Vec<Elem> = universe.into_iter().collect();
            u.sort_unstable();
            u.dedup();
            u
        };
        assert_eq!(schema.len(), relations.len(), "relation count mismatch");
        for (i, rel) in relations.iter().enumerate() {
            for t in rel {
                assert_eq!(t.rank(), schema.arity(i), "tuple rank mismatch");
                for e in t.elems() {
                    assert!(
                        universe.binary_search(e).is_ok(),
                        "tuple {t:?} mentions {e:?} outside the universe"
                    );
                }
            }
        }
        FiniteStructure {
            schema,
            universe,
            relations,
        }
    }

    /// The restriction of `db` to the elements of `u` — "the
    /// restriction of B₁ to the elements of u" of Def 2.2(3). Obtained
    /// with finitely many oracle questions.
    pub fn restriction(db: &Database, u: &Tuple) -> Self {
        let universe = u.distinct_elems();
        let schema = db.schema().clone();
        let mut relations = Vec::with_capacity(schema.len());
        for i in 0..schema.len() {
            let a = schema.arity(i);
            let mut rel = BTreeSet::new();
            if a == 0 {
                if db.query(i, &[]) {
                    rel.insert(Tuple::empty());
                }
            } else if !universe.is_empty() {
                for idx in crate::lociso::index_vectors(universe.len(), a) {
                    let t: Tuple = idx.iter().map(|&j| universe[j]).collect();
                    if db.query(i, t.elems()) {
                        rel.insert(t);
                    }
                }
            }
            relations.push(rel);
        }
        FiniteStructure::new(schema, universe, relations)
    }

    /// Builds a finite *graph* structure (single binary relation "E").
    pub fn graph(
        universe: impl IntoIterator<Item = u64>,
        edges: impl IntoIterator<Item = (u64, u64)>,
    ) -> Self {
        let schema = Schema::with_names(&["E"], &[2]);
        let rel: BTreeSet<Tuple> = edges
            .into_iter()
            .map(|(a, b)| Tuple::from_values([a, b]))
            .collect();
        FiniteStructure::new(schema, universe.into_iter().map(Elem), vec![rel])
    }

    /// Builds a finite *symmetric* graph: each edge inserted both ways.
    pub fn undirected_graph(
        universe: impl IntoIterator<Item = u64>,
        edges: impl IntoIterator<Item = (u64, u64)>,
    ) -> Self {
        let mut both = Vec::new();
        for (a, b) in edges {
            both.push((a, b));
            both.push((b, a));
        }
        Self::graph(universe, both)
    }

    /// The schema of the structure.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The (sorted, deduplicated) universe.
    pub fn universe(&self) -> &[Elem] {
        &self.universe
    }

    /// Universe size.
    pub fn size(&self) -> usize {
        self.universe.len()
    }

    /// The tuples of relation `i`.
    pub fn relation(&self, i: usize) -> &BTreeSet<Tuple> {
        &self.relations[i]
    }

    /// Membership test.
    pub fn contains(&self, i: usize, t: &Tuple) -> bool {
        self.relations[i].contains(t)
    }

    /// Does the map (given as pairs of universe elements) extend to an
    /// isomorphism onto `other`? The map must be total on `self`'s
    /// universe.
    fn is_isomorphism(&self, other: &FiniteStructure, map: &BTreeMap<Elem, Elem>) -> bool {
        for (i, rel) in self.relations.iter().enumerate() {
            if rel.len() != other.relations[i].len() {
                return false;
            }
            for t in rel {
                let mapped: Tuple = t.elems().iter().map(|e| map[e]).collect();
                if !other.relations[i].contains(&mapped) {
                    return false;
                }
            }
        }
        true
    }

    /// Searches for an isomorphism `self → other` extending the partial
    /// map `u ↦ v` (backtracking over the remaining elements). With
    /// empty tuples this is plain isomorphism search; with `u`, `v`
    /// nonempty it decides `(self, u) ≅ (other, v)` for finite
    /// structures.
    pub fn isomorphism_extending(
        &self,
        other: &FiniteStructure,
        u: &Tuple,
        v: &Tuple,
    ) -> Option<BTreeMap<Elem, Elem>> {
        if self.schema != other.schema
            || self.universe.len() != other.universe.len()
            || u.rank() != v.rank()
        {
            return None;
        }
        // Seed with the forced assignments.
        let mut map = BTreeMap::new();
        let mut inv = BTreeMap::new();
        for (a, b) in u.elems().iter().zip(v.elems()) {
            if let Some(&prev) = map.get(a) {
                if prev != *b {
                    return None;
                }
            }
            if let Some(&prev) = inv.get(b) {
                if prev != *a {
                    return None;
                }
            }
            map.insert(*a, *b);
            inv.insert(*b, *a);
        }
        let unmapped: Vec<Elem> = self
            .universe
            .iter()
            .copied()
            .filter(|e| !map.contains_key(e))
            .collect();
        let free: Vec<Elem> = other
            .universe
            .iter()
            .copied()
            .filter(|e| !inv.contains_key(e))
            .collect();
        if unmapped.len() != free.len() {
            return None;
        }
        self.search(other, &unmapped, &free, &mut map, &mut inv, 0)
    }

    fn search(
        &self,
        other: &FiniteStructure,
        unmapped: &[Elem],
        free: &[Elem],
        map: &mut BTreeMap<Elem, Elem>,
        inv: &mut BTreeMap<Elem, Elem>,
        depth: usize,
    ) -> Option<BTreeMap<Elem, Elem>> {
        if depth == unmapped.len() {
            return if self.is_isomorphism(other, map) {
                Some(map.clone())
            } else {
                None
            };
        }
        let a = unmapped[depth];
        for &b in free {
            if inv.contains_key(&b) {
                continue;
            }
            map.insert(a, b);
            inv.insert(b, a);
            // Prune: check all facts among currently-mapped elements.
            if self.partial_consistent(other, map) {
                if let Some(full) = self.search(other, unmapped, free, map, inv, depth + 1) {
                    return Some(full);
                }
            }
            map.remove(&a);
            inv.remove(&b);
        }
        None
    }

    /// Checks that all relation facts among already-mapped elements are
    /// preserved both ways.
    fn partial_consistent(&self, other: &FiniteStructure, map: &BTreeMap<Elem, Elem>) -> bool {
        for (i, rel) in self.relations.iter().enumerate() {
            let a = self.schema.arity(i);
            if a == 0 {
                if (rel.contains(&Tuple::empty())) != other.relations[i].contains(&Tuple::empty()) {
                    return false;
                }
                continue;
            }
            let mapped: Vec<Elem> = map.keys().copied().collect();
            if mapped.is_empty() {
                continue;
            }
            for idx in crate::lociso::index_vectors(mapped.len(), a) {
                let t: Tuple = idx.iter().map(|&j| mapped[j]).collect();
                let mt: Tuple = t.elems().iter().map(|e| map[e]).collect();
                if rel.contains(&t) != other.relations[i].contains(&mt) {
                    return false;
                }
            }
        }
        true
    }

    /// Plain isomorphism search.
    pub fn isomorphic_to(&self, other: &FiniteStructure) -> bool {
        self.isomorphism_extending(other, &Tuple::empty(), &Tuple::empty())
            .is_some()
    }

    /// Enumerates all automorphisms of the structure. Exponential;
    /// intended for the small structures of §4's finite parts.
    pub fn automorphisms(&self) -> Vec<BTreeMap<Elem, Elem>> {
        let mut out = Vec::new();
        let n = self.universe.len();
        let mut perm: Vec<usize> = (0..n).collect();
        // Heap-style enumeration over all permutations with pruning
        // would be better for large n; for the workloads here plain
        // enumeration is fine and simpler to verify.
        permute(&mut perm, 0, &mut |p| {
            let map: BTreeMap<Elem, Elem> = self
                .universe
                .iter()
                .enumerate()
                .map(|(i, &e)| (e, self.universe[p[i]]))
                .collect();
            if self.is_isomorphism(self, &map) {
                out.push(map);
            }
        });
        out
    }

    /// Decides `(self, u) ≅ (self, v)`: is there an automorphism taking
    /// `u` to `v`? This is `≅_B` (Def 3.1) for finite structures.
    pub fn equivalent_tuples(&self, u: &Tuple, v: &Tuple) -> bool {
        self.isomorphism_extending(self, u, v).is_some()
    }
}

fn permute(perm: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == perm.len() {
        f(perm);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute(perm, k + 1, f);
        perm.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, DatabaseBuilder, FnRelation};

    #[test]
    fn restriction_of_clique() {
        let db = DatabaseBuilder::new("K")
            .relation("E", FnRelation::infinite_clique())
            .build();
        let s = FiniteStructure::restriction(&db, &tuple![3, 7, 3]);
        assert_eq!(s.size(), 2);
        assert!(s.contains(0, &tuple![3, 7]));
        assert!(s.contains(0, &tuple![7, 3]));
        assert!(!s.contains(0, &tuple![3, 3]));
    }

    #[test]
    fn triangle_isomorphic_to_relabelled_triangle() {
        let a = FiniteStructure::undirected_graph([0, 1, 2], [(0, 1), (1, 2), (2, 0)]);
        let b = FiniteStructure::undirected_graph([10, 20, 30], [(10, 20), (20, 30), (30, 10)]);
        assert!(a.isomorphic_to(&b));
    }

    #[test]
    fn path_not_isomorphic_to_triangle() {
        let path = FiniteStructure::undirected_graph([0, 1, 2], [(0, 1), (1, 2)]);
        let tri = FiniteStructure::undirected_graph([0, 1, 2], [(0, 1), (1, 2), (2, 0)]);
        assert!(!path.isomorphic_to(&tri));
    }

    #[test]
    fn isomorphism_respects_anchored_tuples() {
        // Path 0–1–2: endpoints 0 and 2 are equivalent; 0 and 1 are not.
        let p = FiniteStructure::undirected_graph([0, 1, 2], [(0, 1), (1, 2)]);
        assert!(p.equivalent_tuples(&tuple![0], &tuple![2]));
        assert!(!p.equivalent_tuples(&tuple![0], &tuple![1]));
        assert!(p.equivalent_tuples(&tuple![0, 1], &tuple![2, 1]));
        assert!(!p.equivalent_tuples(&tuple![0, 1], &tuple![1, 0]));
    }

    #[test]
    fn automorphism_counts() {
        // Triangle: S₃, 6 automorphisms.
        let tri = FiniteStructure::undirected_graph([0, 1, 2], [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(tri.automorphisms().len(), 6);
        // Path of 3: identity + end-swap.
        let p = FiniteStructure::undirected_graph([0, 1, 2], [(0, 1), (1, 2)]);
        assert_eq!(p.automorphisms().len(), 2);
        // Directed 3-cycle: the rotation group, 3 automorphisms.
        let c = FiniteStructure::graph([0, 1, 2], [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(c.automorphisms().len(), 3);
    }

    #[test]
    fn forced_map_conflicts_are_rejected() {
        let a = FiniteStructure::undirected_graph([0, 1], [(0, 1)]);
        // u maps 0↦5 and 0↦6 simultaneously: impossible.
        assert!(a
            .isomorphism_extending(
                &FiniteStructure::undirected_graph([5, 6], [(5, 6)]),
                &tuple![0, 0],
                &tuple![5, 6]
            )
            .is_none());
        // Non-injective target with injective source: impossible.
        assert!(a
            .isomorphism_extending(
                &FiniteStructure::undirected_graph([5, 6], [(5, 6)]),
                &tuple![0, 1],
                &tuple![5, 5]
            )
            .is_none());
    }

    #[test]
    fn rank_zero_relation_checked() {
        let schema = Schema::new([0]);
        let yes = FiniteStructure::new(
            schema.clone(),
            [Elem(0)],
            vec![[Tuple::empty()].into_iter().collect()],
        );
        let no = FiniteStructure::new(schema, [Elem(0)], vec![BTreeSet::new()]);
        assert!(!yes.isomorphic_to(&no));
        assert!(yes.isomorphic_to(&yes.clone()));
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn tuples_must_be_over_universe() {
        FiniteStructure::graph([0, 1], [(0, 5)]);
    }

    #[test]
    fn restriction_then_positional_iso_agrees_with_lociso() {
        let db = DatabaseBuilder::new("line")
            .relation("E", FnRelation::infinite_line())
            .build();
        let u = tuple![0, 2];
        let v = tuple![2, 4];
        let ru = FiniteStructure::restriction(&db, &u);
        let rv = FiniteStructure::restriction(&db, &v);
        // Def 2.2(3): local isomorphism = restrictions isomorphic *via*
        // the map u↦v.
        assert_eq!(
            ru.isomorphism_extending(&rv, &u, &v).is_some(),
            crate::locally_equivalent(&db, &u, &v)
        );
    }
}
