//! # recdb-core — recursive relational data bases
//!
//! Core types for the reproduction of **Hirst & Harel, "Completeness
//! Results for Recursive Data Bases"** (PODS '93 / JCSS 52, 1996).
//!
//! A *recursive data base* (r-db) is a finite tuple of computable —
//! possibly infinite — relations over a countably infinite recursive
//! domain (Def 2.1). This crate provides:
//!
//! * [`Elem`], [`Tuple`], [`Schema`], [`Domain`] — the vocabulary;
//! * [`RecursiveRelation`] and implementations ([`FiniteRelation`],
//!   [`CoFiniteRelation`], [`FnRelation`]) — membership oracles;
//! * [`Database`] — an r-db with audited oracle access (Def 2.4);
//! * [`locally_isomorphic`] — the decision procedure for `≅ₗ`
//!   (Prop 2.2), the decidable fragment of the Σ¹₁-complete
//!   isomorphism relation (Prop 2.1);
//! * [`AtomicType`] and class enumeration/counting — the finite-index
//!   equivalence classes `Cⁿ` of `≅ₗ`;
//! * [`Fingerprint`] and [`TupleInterner`] — hot-path machinery:
//!   hashable class digests for O(t) partition bucketing and dense
//!   `u32` tuple ids for partition, signature, and memo keys;
//! * [`ClassUnionQuery`] — the normal form of every computable r-query
//!   (Props 2.3–2.5);
//! * [`FiniteStructure`] — materialized finite structures with real
//!   isomorphism/automorphism search;
//! * genericity checkers and the paper's counterexamples
//!   ([`genericity`]);
//! * [`Fuel`] — explicit bounding of semi-decidable procedures.
//!
//! Sibling crates build the languages on top: `recdb-logic` (`L⁻`,
//! full FO, EF games), `recdb-turing` (oracle machines), `recdb-hsdb`
//! (highly symmetric databases), `recdb-qlhs` (QL/QLhs/QLf+),
//! `recdb-gm` (generic machines) and `recdb-bp` (BP-completeness).

#![warn(missing_docs)]

pub mod combinators;
mod database;
mod delta;
mod domain;
mod elem;
mod fin;
mod fingerprint;
mod fuel;
pub mod genericity;
mod intern;
mod lociso;
mod query;
mod relation;
pub mod rng;
pub mod sampling;
mod schema;
mod types;

pub use combinators::{complement, intersect, mapped, product, shared, union};
pub use database::{Database, DatabaseBuilder};
pub use delta::DeltaVar;
pub use domain::Domain;
pub use elem::{Elem, Tuple};
pub use fin::FiniteStructure;
pub use fingerprint::Fingerprint;
pub use fuel::{Fuel, FuelError};
pub use genericity::{amalgamate, find_local_genericity_violation, GenericityViolation};
pub use intern::{TupleId, TupleInterner};
pub use lociso::{index_vectors, locally_equivalent, locally_isomorphic};
pub use query::{ClassUnionQuery, QueryOutcome, RQuery};
pub use relation::{CoFiniteRelation, FiniteRelation, FnRelation, RecursiveRelation, RelationRef};
pub use rng::{fnv1a, SplitMix64};
pub use sampling::{genericity_disagreements, iso_pair_from_class, iso_pairs, IsoPair};
pub use schema::Schema;
pub use types::{
    count_classes, enumerate_classes, restricted_growth_strings, stirling2, AtomicType,
};
