//! r-queries and the structure of the computable ones.
//!
//! Def 2.3: an r-query of type `a` is a partial function `Q` mapping
//! each r-db of type `a` to a recursive relation over its domain (or
//! undefined). Def 2.6: a query is *computable* if it is recursive
//! (oracle-TM decidable, Def 2.4) and generic (isomorphism-preserving,
//! Def 2.5). Props 2.3–2.5 pin the computable queries down completely:
//! a computable r-query is either everywhere undefined or is the union
//! of finitely many `≅ₗ`-classes of a common rank. [`ClassUnionQuery`]
//! is precisely that normal form.

use crate::{AtomicType, Database, Schema, Tuple};
use std::collections::BTreeSet;

/// The outcome of asking whether a tuple belongs to a query's result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryOutcome {
    /// `Q(B)` is defined and the tuple is in / not in `Q(B)`.
    Defined(bool),
    /// `Q(B)` is undefined. By Prop 2.3 part 1, a locally generic query
    /// undefined anywhere is undefined everywhere.
    Undefined,
}

impl QueryOutcome {
    /// `Defined(true)`, conveniently.
    pub fn is_member(self) -> bool {
        self == QueryOutcome::Defined(true)
    }
}

/// A tuple-membership query interface: the abstract r-query.
///
/// The trait is deliberately thin — it matches Def 2.4's oracle shape:
/// given `B` (as oracles) and `u`, decide `u ∈ Q(B)`.
pub trait RQuery: Send + Sync {
    /// The common output rank of the query, if defined anywhere.
    fn output_rank(&self) -> Option<usize>;

    /// Decides membership of `u` in `Q(db)`.
    fn contains(&self, db: &Database, u: &Tuple) -> QueryOutcome;
}

/// The normal form of a computable r-query (Prop 2.4): a union
/// `Q̄ = ⋃ⱼ Cⁿ_{iⱼ}` of `≅ₗ`-equivalence classes of a common rank `n` —
/// or the everywhere-undefined query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassUnionQuery {
    schema: Schema,
    body: Option<ClassUnion>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct ClassUnion {
    rank: usize,
    classes: BTreeSet<AtomicType>,
}

impl ClassUnionQuery {
    /// The everywhere-undefined query (`undefined` in `L⁻`).
    pub fn undefined(schema: Schema) -> Self {
        ClassUnionQuery { schema, body: None }
    }

    /// A query defined as the union of the given classes.
    ///
    /// # Panics
    /// Panics if the classes do not all have rank `rank`.
    pub fn new(schema: Schema, rank: usize, classes: impl IntoIterator<Item = AtomicType>) -> Self {
        let classes: BTreeSet<AtomicType> = classes.into_iter().collect();
        for c in &classes {
            assert_eq!(c.rank(), rank, "class rank mismatch");
        }
        ClassUnionQuery {
            schema,
            body: Some(ClassUnion { rank, classes }),
        }
    }

    /// The everywhere-empty query of the given rank (union of zero
    /// classes) — defined, but with empty output on every database.
    pub fn empty(schema: Schema, rank: usize) -> Self {
        Self::new(schema, rank, [])
    }

    /// The schema this query applies to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Whether the query is the everywhere-undefined one.
    pub fn is_undefined(&self) -> bool {
        self.body.is_none()
    }

    /// The classes in the union (empty iterator if undefined).
    pub fn classes(&self) -> impl Iterator<Item = &AtomicType> {
        self.body.iter().flat_map(|b| b.classes.iter())
    }

    /// Number of classes in the union.
    pub fn class_count(&self) -> usize {
        self.body.as_ref().map_or(0, |b| b.classes.len())
    }

    /// Complement within rank `n`: the union of all other classes.
    /// Requires enumerating `Cⁿ`, so only viable for small ranks.
    pub fn complement(&self) -> Option<ClassUnionQuery> {
        let body = self.body.as_ref()?;
        let all = crate::enumerate_classes(&self.schema, body.rank);
        let classes: BTreeSet<AtomicType> = all
            .into_iter()
            .filter(|c| !body.classes.contains(c))
            .collect();
        Some(ClassUnionQuery {
            schema: self.schema.clone(),
            body: Some(ClassUnion {
                rank: body.rank,
                classes,
            }),
        })
    }

    /// Union with another class-union query of the same rank.
    ///
    /// # Panics
    /// Panics on schema or rank mismatch; undefined absorbs.
    pub fn union(&self, other: &ClassUnionQuery) -> ClassUnionQuery {
        assert_eq!(self.schema, other.schema, "schema mismatch");
        match (&self.body, &other.body) {
            (None, _) | (_, None) => ClassUnionQuery::undefined(self.schema.clone()),
            (Some(a), Some(b)) => {
                assert_eq!(a.rank, b.rank, "rank mismatch in union");
                ClassUnionQuery {
                    schema: self.schema.clone(),
                    body: Some(ClassUnion {
                        rank: a.rank,
                        classes: a.classes.union(&b.classes).cloned().collect(),
                    }),
                }
            }
        }
    }

    /// Intersection with another class-union query of the same rank.
    ///
    /// # Panics
    /// Panics on schema or rank mismatch; undefined absorbs.
    pub fn intersection(&self, other: &ClassUnionQuery) -> ClassUnionQuery {
        assert_eq!(self.schema, other.schema, "schema mismatch");
        match (&self.body, &other.body) {
            (None, _) | (_, None) => ClassUnionQuery::undefined(self.schema.clone()),
            (Some(a), Some(b)) => {
                assert_eq!(a.rank, b.rank, "rank mismatch in intersection");
                ClassUnionQuery {
                    schema: self.schema.clone(),
                    body: Some(ClassUnion {
                        rank: a.rank,
                        classes: a.classes.intersection(&b.classes).cloned().collect(),
                    }),
                }
            }
        }
    }
}

impl RQuery for ClassUnionQuery {
    fn output_rank(&self) -> Option<usize> {
        self.body.as_ref().map(|b| b.rank)
    }

    fn contains(&self, db: &Database, u: &Tuple) -> QueryOutcome {
        match &self.body {
            None => QueryOutcome::Undefined,
            Some(b) => {
                if u.rank() != b.rank {
                    return QueryOutcome::Defined(false);
                }
                // Membership is by atomic type — the query cannot see
                // anything else (Prop 2.4).
                let ty = AtomicType::of(db, u);
                QueryOutcome::Defined(b.classes.contains(&ty))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate_classes, tuple, DatabaseBuilder, FnRelation};

    fn clique_db() -> Database {
        DatabaseBuilder::new("K")
            .relation("E", FnRelation::infinite_clique())
            .build()
    }

    /// The "edge" query over graphs: pairs (x,y) with x≠y and E(x,y).
    fn edge_query() -> ClassUnionQuery {
        let schema = Schema::new([2]);
        let classes = enumerate_classes(&schema, 2)
            .into_iter()
            .filter(|ty| {
                let (db, u) = ty.witness(&schema);
                u[0] != u[1] && db.query(0, &[u[0], u[1]])
            })
            .collect::<Vec<_>>();
        ClassUnionQuery::new(Schema::new([2]), 2, classes)
    }

    #[test]
    fn edge_query_on_clique() {
        let q = edge_query();
        let db = clique_db();
        assert!(q.contains(&db, &tuple![1, 2]).is_member());
        assert!(!q.contains(&db, &tuple![3, 3]).is_member());
        assert_eq!(q.output_rank(), Some(2));
    }

    #[test]
    fn wrong_rank_is_nonmember_not_undefined() {
        let q = edge_query();
        let db = clique_db();
        assert_eq!(
            q.contains(&db, &tuple![1]),
            QueryOutcome::Defined(false),
            "Q(B) is a rank-2 relation; rank-1 tuples are simply not in it"
        );
    }

    #[test]
    fn undefined_query_is_undefined_everywhere() {
        let q = ClassUnionQuery::undefined(Schema::new([2]));
        assert!(q.is_undefined());
        assert_eq!(q.output_rank(), None);
        assert_eq!(
            q.contains(&clique_db(), &tuple![1, 2]),
            QueryOutcome::Undefined
        );
    }

    #[test]
    fn complement_flips_membership() {
        let q = edge_query();
        let c = q.complement().unwrap();
        let db = clique_db();
        for u in [tuple![1, 2], tuple![3, 3], tuple![0, 7]] {
            assert_ne!(
                q.contains(&db, &u).is_member(),
                c.contains(&db, &u).is_member(),
                "complement must flip membership at {u:?}"
            );
        }
        let schema = Schema::new([2]);
        assert_eq!(
            q.class_count() + c.class_count(),
            crate::count_classes(&schema, 2) as usize
        );
    }

    #[test]
    fn union_and_intersection_behave_like_sets() {
        let q = edge_query();
        let c = q.complement().unwrap();
        let all = q.union(&c);
        let none = q.intersection(&c);
        let db = clique_db();
        assert!(all.contains(&db, &tuple![5, 5]).is_member());
        assert!(!none.contains(&db, &tuple![1, 2]).is_member());
    }

    #[test]
    fn empty_query_is_defined_and_empty() {
        let q = ClassUnionQuery::empty(Schema::new([2]), 2);
        assert!(!q.is_undefined());
        assert_eq!(
            q.contains(&clique_db(), &tuple![1, 2]),
            QueryOutcome::Defined(false)
        );
    }

    #[test]
    fn undefined_absorbs_in_union() {
        let q = edge_query();
        let u = ClassUnionQuery::undefined(Schema::new([2]));
        assert!(q.union(&u).is_undefined());
        assert!(q.intersection(&u).is_undefined());
    }

    #[test]
    fn query_is_locally_generic_by_construction() {
        // Two locally equivalent pairs across *different* databases
        // must receive the same answer (Def 2.5).
        let q = edge_query();
        let k = clique_db();
        let line = DatabaseBuilder::new("L")
            .relation("E", FnRelation::infinite_line())
            .build();
        // (K,(1,2)) and (line,(0,2)): both x≠y with a symmetric edge.
        assert!(crate::locally_isomorphic(
            &k,
            &tuple![1, 2],
            &line,
            &tuple![0, 2]
        ));
        assert_eq!(
            q.contains(&k, &tuple![1, 2]),
            q.contains(&line, &tuple![0, 2])
        );
    }
}
