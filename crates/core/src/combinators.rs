//! Relation combinators.
//!
//! §1's observation that "recursive relations are not closed under
//! some of the simplest accepted relational operators" is about
//! *projection* (the halting-relation example). The boolean operators
//! and products, by contrast, **do** preserve recursiveness — each is
//! one oracle call away — and this module provides them as first-class
//! relation constructors. (They are also the operators the paper lists
//! as "both generic and locally generic": unions, intersections,
//! complementations.)

use crate::{Elem, RecursiveRelation, RelationRef};
use std::sync::Arc;

/// `R ∪ S` (equal arity).
pub struct UnionRelation {
    left: RelationRef,
    right: RelationRef,
}

/// `R ∩ S` (equal arity).
pub struct IntersectRelation {
    left: RelationRef,
    right: RelationRef,
}

/// `¬R` — the complement within `Dⁿ`. The complement of a recursive
/// relation is recursive (flip the oracle's answer).
pub struct ComplementRelation {
    inner: RelationRef,
}

/// `R × S` — tuples split into a left part for `R` and a right part
/// for `S`. Arity is the sum.
pub struct ProductRelation {
    left: RelationRef,
    right: RelationRef,
}

/// `R ∘ f` — membership after applying an element translation to each
/// coordinate. With a bijective `f` this is the relation of an
/// isomorphic copy of the database (the paper's "replace `1..n` by
/// `n+1..2n`" constructions).
pub struct MappedRelation {
    inner: RelationRef,
    f: Box<dyn Fn(Elem) -> Elem + Send + Sync>,
}

/// Builds `R ∪ S`.
///
/// # Panics
/// Panics on arity mismatch.
pub fn union(left: RelationRef, right: RelationRef) -> UnionRelation {
    assert_eq!(left.arity(), right.arity(), "union needs equal arities");
    UnionRelation { left, right }
}

/// Builds `R ∩ S`.
///
/// # Panics
/// Panics on arity mismatch.
pub fn intersect(left: RelationRef, right: RelationRef) -> IntersectRelation {
    assert_eq!(
        left.arity(),
        right.arity(),
        "intersection needs equal arities"
    );
    IntersectRelation { left, right }
}

/// Builds `¬R`.
pub fn complement(inner: RelationRef) -> ComplementRelation {
    ComplementRelation { inner }
}

/// Builds `R × S`.
pub fn product(left: RelationRef, right: RelationRef) -> ProductRelation {
    ProductRelation { left, right }
}

/// Builds `R ∘ f`: `t ∈ mapped ⟺ f(t) ∈ R` (coordinatewise).
pub fn mapped(
    inner: RelationRef,
    f: impl Fn(Elem) -> Elem + Send + Sync + 'static,
) -> MappedRelation {
    MappedRelation {
        inner,
        f: Box::new(f),
    }
}

impl RecursiveRelation for UnionRelation {
    fn arity(&self) -> usize {
        self.left.arity()
    }
    fn contains(&self, t: &[Elem]) -> bool {
        self.left.contains(t) || self.right.contains(t)
    }
}

impl RecursiveRelation for IntersectRelation {
    fn arity(&self) -> usize {
        self.left.arity()
    }
    fn contains(&self, t: &[Elem]) -> bool {
        self.left.contains(t) && self.right.contains(t)
    }
}

impl RecursiveRelation for ComplementRelation {
    fn arity(&self) -> usize {
        self.inner.arity()
    }
    fn contains(&self, t: &[Elem]) -> bool {
        !self.inner.contains(t)
    }
}

impl RecursiveRelation for ProductRelation {
    fn arity(&self) -> usize {
        self.left.arity() + self.right.arity()
    }
    fn contains(&self, t: &[Elem]) -> bool {
        let k = self.left.arity();
        self.left.contains(&t[..k]) && self.right.contains(&t[k..])
    }
}

impl RecursiveRelation for MappedRelation {
    fn arity(&self) -> usize {
        self.inner.arity()
    }
    fn contains(&self, t: &[Elem]) -> bool {
        let mapped: Vec<Elem> = t.iter().map(|&e| (self.f)(e)).collect();
        self.inner.contains(&mapped)
    }
}

/// Convenience: wraps any concrete relation into a shared handle.
pub fn shared(r: impl RecursiveRelation + 'static) -> RelationRef {
    Arc::new(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, FnRelation};

    fn lt() -> RelationRef {
        shared(FnRelation::new("lt", 2, |t| t[0].value() < t[1].value()))
    }
    fn eq_rel() -> RelationRef {
        shared(FnRelation::new("eq", 2, |t| t[0] == t[1]))
    }

    #[test]
    fn union_is_or() {
        let le = union(lt(), eq_rel());
        assert!(le.contains(tuple![1, 2].elems()));
        assert!(le.contains(tuple![2, 2].elems()));
        assert!(!le.contains(tuple![3, 2].elems()));
    }

    #[test]
    fn intersect_is_and() {
        let never = intersect(lt(), eq_rel());
        assert!(!never.contains(tuple![1, 2].elems()));
        assert!(!never.contains(tuple![2, 2].elems()));
    }

    #[test]
    fn complement_flips() {
        let ge = complement(lt());
        assert!(ge.contains(tuple![2, 2].elems()));
        assert!(ge.contains(tuple![3, 2].elems()));
        assert!(!ge.contains(tuple![1, 2].elems()));
        // Double complement is the original.
        let lt2 = complement(shared(ge));
        assert!(lt2.contains(tuple![1, 2].elems()));
    }

    #[test]
    fn product_splits_the_tuple() {
        let p = product(lt(), eq_rel());
        assert_eq!(p.arity(), 4);
        assert!(p.contains(tuple![1, 2, 5, 5].elems()));
        assert!(!p.contains(tuple![2, 1, 5, 5].elems()));
        assert!(!p.contains(tuple![1, 2, 5, 6].elems()));
    }

    #[test]
    fn mapped_gives_isomorphic_copies() {
        // Shift by 10: the isomorphic copy of `lt` on shifted elements.
        let shifted = mapped(lt(), |e| Elem(e.value().wrapping_sub(10)));
        assert!(shifted.contains(tuple![11, 12].elems()));
        assert!(!shifted.contains(tuple![12, 11].elems()));
    }

    #[test]
    #[should_panic(expected = "equal arities")]
    fn arity_mismatch_rejected() {
        let unary = shared(FnRelation::new("u", 1, |_| true));
        let _ = union(lt(), unary);
    }

    #[test]
    fn combinators_preserve_local_genericity_of_queries() {
        // A class-union query against a combinator-built database
        // behaves identically on locally isomorphic inputs — sanity
        // that the combinators are plain relations.
        use crate::{locally_equivalent, DatabaseBuilder};
        let db = DatabaseBuilder::new("combo")
            .relation_ref("LE", shared(union(lt(), eq_rel())))
            .build();
        assert!(locally_equivalent(&db, &tuple![1, 2], &tuple![5, 9]));
        assert!(!locally_equivalent(&db, &tuple![1, 2], &tuple![9, 5]));
    }
}
