//! Dense tuple interning.
//!
//! The refinement pipeline, the EF-game memo, and the QLhs
//! canonicalization cache all key hash maps by [`Tuple`]. Cloning a
//! heap-allocated tuple per lookup (and hashing its elements on every
//! probe) is pure overhead once the working set is known: a
//! [`TupleInterner`] assigns each distinct tuple a dense [`TupleId`]
//! (`u32`) exactly once, after which partitions, signatures, and memo
//! keys are plain integers.

use crate::Tuple;
use std::collections::HashMap;

/// A dense identifier for an interned [`Tuple`]. Ids are assigned
/// contiguously from 0 in interning order, so they double as indices
/// into side tables (`Vec<_>` keyed by id).
pub type TupleId = u32;

/// Assigns dense [`TupleId`]s to tuples, each tuple stored exactly once.
#[derive(Clone, Debug, Default)]
pub struct TupleInterner {
    ids: HashMap<Tuple, TupleId>,
    tuples: Vec<Tuple>,
}

impl TupleInterner {
    /// An empty interner.
    pub fn new() -> Self {
        TupleInterner::default()
    }

    /// The id of `t`, assigning a fresh one on first sight.
    ///
    /// # Panics
    /// Panics if more than `u32::MAX` distinct tuples are interned.
    pub fn intern(&mut self, t: &Tuple) -> TupleId {
        if let Some(&id) = self.ids.get(t) {
            return id;
        }
        self.push_new(t.clone())
    }

    /// Like [`Self::intern`] but takes ownership, avoiding a clone when
    /// the tuple is fresh.
    pub fn intern_owned(&mut self, t: Tuple) -> TupleId {
        if let Some(&id) = self.ids.get(&t) {
            return id;
        }
        self.push_new(t)
    }

    fn push_new(&mut self, t: Tuple) -> TupleId {
        assert!(
            self.tuples.len() < u32::MAX as usize,
            "TupleInterner overflow: more than u32::MAX distinct tuples"
        );
        let id = self.tuples.len() as TupleId;
        self.ids.insert(t.clone(), id);
        self.tuples.push(t);
        id
    }

    /// The id of `t`, if it has been interned.
    pub fn get(&self, t: &Tuple) -> Option<TupleId> {
        self.ids.get(t).copied()
    }

    /// The tuple behind an id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: TupleId) -> &Tuple {
        &self.tuples[id as usize]
    }

    /// Number of distinct tuples interned.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut i = TupleInterner::new();
        let a = i.intern(&tuple![1, 2]);
        let b = i.intern(&tuple![3]);
        let a2 = i.intern(&tuple![1, 2]);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a, a2, "re-interning returns the same id");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = TupleInterner::new();
        for t in [tuple![], tuple![5], tuple![5, 5, 7]] {
            let id = i.intern(&t);
            assert_eq!(i.resolve(id), &t);
            assert_eq!(i.get(&t), Some(id));
        }
        assert_eq!(i.get(&tuple![9, 9]), None);
    }

    #[test]
    fn intern_owned_agrees_with_intern() {
        let mut i = TupleInterner::new();
        let a = i.intern(&tuple![4, 2]);
        let b = i.intern_owned(tuple![4, 2]);
        let c = i.intern_owned(tuple![0]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
