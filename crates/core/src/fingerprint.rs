//! Canonical fingerprints of `≅ₗ`-classes.
//!
//! [`AtomicType::of`](crate::AtomicType::of) already computes the full
//! canonical description of a tuple's `≅ₗ`-class (equality pattern +
//! one membership bit per relation and index vector). A [`Fingerprint`]
//! is the same observation sequence folded into a fixed-size digest:
//! cheap to compute (the identical `Σᵢ mᵃⁱ` oracle questions, but no
//! per-relation `Vec` allocations), trivially hashable, and `Copy`.
//!
//! Soundness contract: if `(B,u) ≅ₗ (B,v)` then
//! `Fingerprint::of(B,u) == Fingerprint::of(B,v)` — locally equivalent
//! tuples stream byte-identical observations into the hasher. The
//! converse holds only up to 64-bit hash collision, so consumers that
//! need exactness (the `Vⁿᵣ` partitioner) bucket by fingerprint first
//! and verify with [`locally_equivalent`](crate::locally_equivalent)
//! *within* a bucket — O(t) hashing plus within-bucket checks instead
//! of O(t²) pairwise tests.

use crate::{Database, Elem, Tuple};

/// A 64-bit digest of a tuple's `≅ₗ`-class within one database.
///
/// Rank and distinct-element count ride along undigested so that the
/// cheapest disagreements never even compare hashes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fingerprint {
    rank: u32,
    blocks: u32,
    digest: u64,
}

impl Fingerprint {
    /// Computes the fingerprint of `(db, u)` by streaming the same
    /// observations as [`AtomicType::of`](crate::AtomicType::of) —
    /// equality pattern, then per relation the membership bits in
    /// odometer order over index vectors — into an FNV-1a digest.
    pub fn of(db: &Database, u: &Tuple) -> Fingerprint {
        recdb_obs::count("core.fingerprints", 1);
        let pattern = u.equality_pattern();
        let blocks = pattern.iter().copied().max().map_or(0, |m| m + 1);
        let reps = u.distinct_elems();
        let mut h = Fnv1a::new();
        for &p in &pattern {
            h.write_u64(p as u64);
        }
        let schema = db.schema();
        let mut probe: Vec<Elem> = Vec::new();
        for i in 0..schema.len() {
            let a = schema.arity(i);
            if a == 0 {
                h.write_u64(db.query(i, &[]) as u64);
                continue;
            }
            if blocks == 0 {
                continue;
            }
            // Odometer over {0..blocks}^a, least-significant digit
            // first — the index_vectors order of the atomic types.
            let mut idx = vec![0usize; a];
            loop {
                probe.clear();
                probe.extend(idx.iter().map(|&j| reps[j]));
                h.write_u64(db.query(i, &probe) as u64);
                let mut pos = 0;
                while pos < a {
                    idx[pos] += 1;
                    if idx[pos] < blocks {
                        break;
                    }
                    idx[pos] = 0;
                    pos += 1;
                }
                if pos == a {
                    break;
                }
            }
        }
        Fingerprint {
            rank: u.rank() as u32,
            blocks: blocks as u32,
            digest: h.finish(),
        }
    }

    /// The rank of the fingerprinted tuple.
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// The number of distinct elements in the fingerprinted tuple.
    pub fn distinct_count(&self) -> usize {
        self.blocks as usize
    }
}

/// Deterministic FNV-1a, folding `u64` words bytewise. Hand-rolled so
/// the digest is independent of any std hasher's unspecified internals.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{locally_equivalent, tuple, AtomicType, DatabaseBuilder, FnRelation};

    fn sample_db() -> Database {
        DatabaseBuilder::new("d")
            .relation("D", FnRelation::divides())
            .relation("P", FnRelation::new("even", 1, |t| t[0].value() % 2 == 0))
            .build()
    }

    fn sample_tuples() -> Vec<Tuple> {
        vec![
            tuple![2, 4],
            tuple![3, 9],
            tuple![4, 2],
            tuple![5, 7],
            tuple![6, 6],
            tuple![2, 2],
            tuple![8, 4],
            tuple![1],
            tuple![2],
            tuple![],
        ]
    }

    #[test]
    fn fingerprint_refines_like_atomic_types() {
        // On samples: fp(u) == fp(v) ⟺ AtomicType::of(u) == ::of(v)
        // (⇐ always; ⇒ holds here because no 64-bit collision occurs).
        let db = sample_db();
        let ts = sample_tuples();
        for u in &ts {
            for v in &ts {
                let same_fp = Fingerprint::of(&db, u) == Fingerprint::of(&db, v);
                let same_ty = AtomicType::of(&db, u) == AtomicType::of(&db, v);
                assert_eq!(same_fp, same_ty, "fingerprint vs type at ({u:?},{v:?})");
            }
        }
    }

    #[test]
    fn locally_equivalent_implies_equal_fingerprint() {
        let db = sample_db();
        let ts = sample_tuples();
        for u in &ts {
            for v in &ts {
                if u.rank() == v.rank() && locally_equivalent(&db, u, v) {
                    assert_eq!(
                        Fingerprint::of(&db, u),
                        Fingerprint::of(&db, v),
                        "≅ₗ must imply equal fingerprints at ({u:?},{v:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn rank_and_blocks_exposed() {
        let db = sample_db();
        let fp = Fingerprint::of(&db, &tuple![7, 7, 3]);
        assert_eq!(fp.rank(), 3);
        assert_eq!(fp.distinct_count(), 2);
        assert_eq!(Fingerprint::of(&db, &tuple![]).distinct_count(), 0);
    }

    #[test]
    fn oracle_cost_matches_atomic_type() {
        // Same observation sequence ⇒ same number of oracle questions.
        let db = sample_db();
        let u = tuple![2, 4, 4];
        db.reset_oracle_calls();
        let _ = Fingerprint::of(&db, &u);
        let fp_calls = db.oracle_calls();
        db.reset_oracle_calls();
        let _ = AtomicType::of(&db, &u);
        assert_eq!(fp_calls, db.oracle_calls());
    }
}
