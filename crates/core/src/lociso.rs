//! Local isomorphism — the decidable fragment of isomorphism (§2).
//!
//! Def 2.2(3): `(B₁,u) ≅ₗ (B₂,v)` iff the restriction of `B₁` to the
//! elements of `u` and the restriction of `B₂` to the elements of `v`
//! are isomorphic *by the specific map taking u to v*. Full isomorphism
//! of r-dbs is Σ¹₁-complete (Prop 2.1, [Morozov]); local isomorphism is
//! recursive (Prop 2.2), and this module is that decision procedure.

use crate::{Database, Tuple};

/// Decides `(b1, u) ≅ₗ (b2, v)` — Prop 2.2.
///
/// Implements the paper's three checks verbatim:
/// (i) `|u| = |v|`;
/// (ii) for all `i,j`: `uᵢ = uⱼ` iff `vᵢ = vⱼ`;
/// (iii) for every relation `Rᵢ` of arity `aᵢ` and every choice of
/// indices `j₁,…,j_{aᵢ}` from `1..n`: `(u_{j₁},…) ∈ Rᵢ` iff
/// `(v_{j₁},…) ∈ R'ᵢ`.
///
/// The number of oracle questions is `Σᵢ 2·n^{aᵢ}` in the worst case —
/// finite, which is the whole point.
///
/// # Panics
/// Panics if the two databases have different schemas (local
/// isomorphism is only defined between databases of the same type).
pub fn locally_isomorphic(b1: &Database, u: &Tuple, b2: &Database, v: &Tuple) -> bool {
    assert_eq!(
        b1.schema(),
        b2.schema(),
        "local isomorphism requires databases of the same type"
    );
    recdb_obs::count("core.lociso_checks", 1);
    // (i) equal rank
    if u.rank() != v.rank() {
        return false;
    }
    let n = u.rank();
    // (ii) identical equality pattern
    if u.equality_pattern() != v.equality_pattern() {
        return false;
    }
    // (iii) identical atomic facts under the positional map uᵢ ↦ vᵢ
    for i in 0..b1.relation_count() {
        let a = b1.schema().arity(i);
        if a == 0 {
            if b1.query(i, &[]) != b2.query(i, &[]) {
                return false;
            }
            continue;
        }
        if n == 0 {
            // No index tuples exist for positive arity over an empty
            // tuple: nothing to check for this relation.
            continue;
        }
        let mut idx = vec![0usize; a];
        loop {
            let ut = u.project(&idx);
            let vt = v.project(&idx);
            if b1.query(i, ut.elems()) != b2.query(i, vt.elems()) {
                return false;
            }
            // Advance the index vector (odometer over n^a).
            let mut pos = 0;
            loop {
                if pos == a {
                    return_if_done(&mut idx);
                    break;
                }
                idx[pos] += 1;
                if idx[pos] < n {
                    break;
                }
                idx[pos] = 0;
                pos += 1;
            }
            if pos == a {
                break;
            }
        }
    }
    true
}

// Helper so the odometer's terminal state is explicit.
fn return_if_done(_idx: &mut [usize]) {}

/// Decides `(b, u) ≅ₗ (b, v)` within a single database — the common
/// case written `u ≅ₗ v` in §3.2.
pub fn locally_equivalent(b: &Database, u: &Tuple, v: &Tuple) -> bool {
    locally_isomorphic(b, u, b, v)
}

/// Iterates over all index vectors `(j₁,…,j_a) ∈ {0..n}^a` — the
/// projection patterns condition (iii) quantifies over. Exposed for the
/// atomic-type machinery in [`crate::types`].
pub fn index_vectors(n: usize, a: usize) -> Vec<Vec<usize>> {
    if a == 0 {
        return vec![Vec::new()];
    }
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n.pow(a as u32));
    let mut idx = vec![0usize; a];
    loop {
        out.push(idx.clone());
        let mut pos = 0;
        while pos < a {
            idx[pos] += 1;
            if idx[pos] < n {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
        if pos == a {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, DatabaseBuilder, FiniteRelation, FnRelation};

    /// The paper's running example after Def 2.2:
    /// `R₁ = {(a,a),(a,b)}`, `R₂ = {(c,c)}` with a=1,b=2,c=3.
    /// `(R₁,(a)) ≅ₗ (R₂,(c))` but they are not isomorphic.
    fn paper_r1() -> crate::Database {
        DatabaseBuilder::new("R1")
            .relation("R", FiniteRelation::edges([(1, 1), (1, 2)]))
            .build()
    }
    fn paper_r2() -> crate::Database {
        DatabaseBuilder::new("R2")
            .relation("R", FiniteRelation::edges([(3, 3)]))
            .build()
    }

    #[test]
    fn paper_example_locally_isomorphic() {
        assert!(locally_isomorphic(
            &paper_r1(),
            &tuple![1],
            &paper_r2(),
            &tuple![3]
        ));
    }

    #[test]
    fn paper_example_distinguished_at_rank_two() {
        // (a,b) has R(a,b) but no pair (c,x) with x≠c can match in R₂.
        assert!(!locally_isomorphic(
            &paper_r1(),
            &tuple![1, 2],
            &paper_r2(),
            &tuple![3, 4]
        ));
    }

    #[test]
    fn rank_mismatch_fails_check_i() {
        assert!(!locally_isomorphic(
            &paper_r1(),
            &tuple![1, 1],
            &paper_r2(),
            &tuple![3]
        ));
    }

    #[test]
    fn equality_pattern_mismatch_fails_check_ii() {
        let db = paper_r1();
        assert!(!locally_equivalent(&db, &tuple![1, 1], &tuple![1, 2]));
    }

    #[test]
    fn empty_tuples_always_locally_isomorphic_for_positive_arity() {
        // Prop 2.3 part 1: for all B₁,B₂, (B₁,()) ≅ₗ (B₂,()).
        assert!(locally_isomorphic(
            &paper_r1(),
            &Tuple::empty(),
            &paper_r2(),
            &Tuple::empty()
        ));
    }

    #[test]
    fn rank_zero_relations_are_checked_on_empty_tuples() {
        let yes = DatabaseBuilder::new("yes")
            .relation("P", FiniteRelation::new(0, [Tuple::empty()]))
            .build();
        let no = DatabaseBuilder::new("no")
            .relation("P", FiniteRelation::empty(0))
            .build();
        assert!(!locally_isomorphic(
            &yes,
            &Tuple::empty(),
            &no,
            &Tuple::empty()
        ));
        assert!(locally_isomorphic(
            &yes,
            &Tuple::empty(),
            &yes,
            &Tuple::empty()
        ));
    }

    #[test]
    fn clique_tuples_locally_equivalent_iff_same_pattern() {
        let db = DatabaseBuilder::new("K")
            .relation("E", FnRelation::infinite_clique())
            .build();
        assert!(locally_equivalent(&db, &tuple![1, 2], &tuple![7, 9]));
        assert!(locally_equivalent(&db, &tuple![1, 1], &tuple![4, 4]));
        assert!(!locally_equivalent(&db, &tuple![1, 2], &tuple![4, 4]));
    }

    #[test]
    fn line_distinguishes_distance() {
        let db = DatabaseBuilder::new("line")
            .relation("E", FnRelation::infinite_line())
            .build();
        // 0–2 adjacent (positions 0,1); 2–6 not (positions 1,3).
        assert!(!locally_equivalent(&db, &tuple![0, 2], &tuple![2, 6]));
        // Two adjacent pairs are locally equivalent.
        assert!(locally_equivalent(&db, &tuple![0, 2], &tuple![2, 4]));
    }

    #[test]
    fn local_equivalence_is_an_equivalence_relation_on_samples() {
        let db = DatabaseBuilder::new("div")
            .relation("D", FnRelation::divides())
            .build();
        let ts: Vec<Tuple> = vec![
            tuple![1, 2],
            tuple![2, 4],
            tuple![3, 5],
            tuple![2, 2],
            tuple![6, 6],
        ];
        for a in &ts {
            assert!(locally_equivalent(&db, a, a), "reflexive at {a:?}");
            for b in &ts {
                assert_eq!(
                    locally_equivalent(&db, a, b),
                    locally_equivalent(&db, b, a),
                    "symmetric at {a:?},{b:?}"
                );
                for c in &ts {
                    if locally_equivalent(&db, a, b) && locally_equivalent(&db, b, c) {
                        assert!(locally_equivalent(&db, a, c), "transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn index_vectors_enumerates_n_pow_a() {
        assert_eq!(index_vectors(3, 2).len(), 9);
        assert_eq!(index_vectors(2, 3).len(), 8);
        assert_eq!(index_vectors(0, 2), Vec::<Vec<usize>>::new());
        assert_eq!(index_vectors(5, 0), vec![Vec::<usize>::new()]);
        let vs = index_vectors(2, 2);
        assert!(vs.contains(&vec![0, 0]) && vs.contains(&vec![1, 0]));
    }

    #[test]
    #[should_panic(expected = "same type")]
    fn different_schemas_rejected() {
        let g = DatabaseBuilder::new("g")
            .relation("E", FiniteRelation::edges([]))
            .build();
        let u = DatabaseBuilder::new("u")
            .relation("P", FiniteRelation::unary([]))
            .build();
        locally_isomorphic(&g, &Tuple::empty(), &u, &Tuple::empty());
    }
}
