//! Database types (schemas).
//!
//! A recursive relational data base of *type* `a = (a₁,…,a_k)` (Def 2.1)
//! has `k` relations, the `i`-th of arity `aᵢ`. We call the type a
//! [`Schema`] to match database parlance; the paper's "type" is exactly
//! the tuple of arities.

use std::fmt;

/// The type `a = (a₁,…,a_k)` of a database: the arities of its
/// relations, in order. Arity 0 is allowed (rank-0 relations; the
/// atomic formula `( ) ∈ R` is legal in `L⁻`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    arities: Vec<usize>,
    names: Vec<String>,
}

impl Schema {
    /// A schema with relations named `R1,…,Rk` of the given arities.
    pub fn new(arities: impl Into<Vec<usize>>) -> Self {
        let arities = arities.into();
        let names = (1..=arities.len()).map(|i| format!("R{i}")).collect();
        Schema { arities, names }
    }

    /// A schema with explicitly named relations.
    ///
    /// # Panics
    /// Panics if `names` and `arities` have different lengths or names
    /// are not distinct.
    pub fn with_names(names: &[&str], arities: &[usize]) -> Self {
        assert_eq!(names.len(), arities.len(), "names/arities mismatch");
        for (i, n) in names.iter().enumerate() {
            assert!(
                !names[..i].contains(n),
                "duplicate relation name {n:?} in schema"
            );
        }
        Schema {
            arities: arities.to_vec(),
            names: names.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Number of relations `k`.
    #[inline]
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// Whether the schema has no relations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// The arity `aᵢ` of relation `i` (0-based).
    #[inline]
    pub fn arity(&self, i: usize) -> usize {
        self.arities[i]
    }

    /// All arities in order.
    #[inline]
    pub fn arities(&self) -> &[usize] {
        &self.arities
    }

    /// The name of relation `i` (0-based).
    #[inline]
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Looks up a relation index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The schema of a *stretching* of this schema by `m` new unary
    /// singleton relations (§3.1): `(D, R₁,…,R_k, {(d₁)},…,{(d_m)})`.
    pub fn stretched(&self, m: usize) -> Schema {
        let mut arities = self.arities.clone();
        let mut names = self.names.clone();
        for j in 1..=m {
            arities.push(1);
            names.push(format!("Mark{j}"));
        }
        Schema { arities, names }
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Schema(")?;
        for i in 0..self.len() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", self.names[i], self.arities[i])?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_names_are_r1_rk() {
        let s = Schema::new([2, 1]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(0), "R1");
        assert_eq!(s.name(1), "R2");
        assert_eq!(s.arity(0), 2);
        assert_eq!(s.arity(1), 1);
    }

    #[test]
    fn index_of_finds_named_relations() {
        let s = Schema::with_names(&["E", "Color"], &[2, 1]);
        assert_eq!(s.index_of("E"), Some(0));
        assert_eq!(s.index_of("Color"), Some(1));
        assert_eq!(s.index_of("Missing"), None);
    }

    #[test]
    fn stretching_appends_unary_marks() {
        let s = Schema::new([2]).stretched(2);
        assert_eq!(s.arities(), &[2, 1, 1]);
        assert_eq!(s.name(1), "Mark1");
        assert_eq!(s.name(2), "Mark2");
    }

    #[test]
    #[should_panic(expected = "duplicate relation name")]
    fn duplicate_names_rejected() {
        Schema::with_names(&["R", "R"], &[1, 1]);
    }

    #[test]
    fn arity_zero_is_legal() {
        let s = Schema::new([0]);
        assert_eq!(s.arity(0), 0);
    }
}
