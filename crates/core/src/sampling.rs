//! Structured sample generation for genericity experiments.
//!
//! The genericity checkers ([`crate::find_local_genericity_violation`])
//! need *locally isomorphic pairs* to compare — random tuples rarely
//! collide in type, so naive sampling wastes its checks. This module
//! manufactures guaranteed-locally-isomorphic pairs: take a class
//! witness, embed it into two differently-decorated databases under
//! different element renamings, and return both `(db, tuple)` pairs.
//! Any recursive query that answers them differently is *provably*
//! non-generic (Prop 2.5 direction).

use crate::{enumerate_classes, AtomicType, Database, Elem, Schema, Tuple};

/// A pair of database/tuple pairs that are locally isomorphic by
/// construction.
#[derive(Clone, Debug)]
pub struct IsoPair {
    /// First side.
    pub left: (Database, Tuple),
    /// Second side.
    pub right: (Database, Tuple),
    /// The shared atomic type.
    pub class: AtomicType,
}

/// Builds one locally-isomorphic pair from a class: the witness
/// database and an isomorphic copy shifted by `shift` (every element
/// `e ↦ e + shift`), with the tuple renamed accordingly.
///
/// # Panics
/// Panics if `shift == 0` (the two sides would be identical).
pub fn iso_pair_from_class(schema: &Schema, class: &AtomicType, shift: u64) -> IsoPair {
    assert_ne!(shift, 0, "shift must produce a distinct copy");
    let (db, u) = class.witness(schema);
    let copy = db.isomorphic_copy(format!("witness+{shift}"), move |e| {
        Elem(e.value().wrapping_sub(shift))
    });
    let v = u.map(|e| Elem(e.value() + shift));
    IsoPair {
        left: (db, u),
        right: (copy, v),
        class: class.clone(),
    }
}

/// Generates one pair per class of rank `rank` (subsampled by
/// `keep_every` to bound the batch), each with a distinct shift.
pub fn iso_pairs(schema: &Schema, rank: usize, keep_every: usize) -> Vec<IsoPair> {
    enumerate_classes(schema, rank)
        .into_iter()
        .step_by(keep_every.max(1))
        .enumerate()
        .map(|(i, class)| iso_pair_from_class(schema, &class, 10 + i as u64))
        .collect()
}

/// Runs a query oracle over generated pairs and returns the classes on
/// which the two sides disagree — direct evidence of non-genericity.
pub fn genericity_disagreements(
    schema: &Schema,
    rank: usize,
    keep_every: usize,
    query: impl Fn(&Database, &Tuple) -> bool,
) -> Vec<AtomicType> {
    iso_pairs(schema, rank, keep_every)
        .into_iter()
        .filter(|p| query(&p.left.0, &p.left.1) != query(&p.right.0, &p.right.1))
        .map(|p| p.class)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{locally_isomorphic, RQuery};

    fn graph_schema() -> Schema {
        Schema::with_names(&["E"], &[2])
    }

    #[test]
    fn pairs_are_locally_isomorphic_by_construction() {
        for p in iso_pairs(&graph_schema(), 2, 3) {
            assert!(locally_isomorphic(
                &p.left.0, &p.left.1, &p.right.0, &p.right.1
            ));
            assert_ne!(p.left.1, p.right.1, "sides use different elements");
        }
    }

    #[test]
    fn generic_queries_never_disagree() {
        // A class-union query (generic by construction) sees no
        // disagreement on any pair.
        let schema = graph_schema();
        let classes: Vec<AtomicType> = enumerate_classes(&schema, 2)
            .into_iter()
            .step_by(2)
            .collect();
        let q = crate::ClassUnionQuery::new(schema.clone(), 2, classes);
        let bad = genericity_disagreements(&schema, 2, 1, |db, t| q.contains(db, t).is_member());
        assert!(bad.is_empty(), "generic query flagged: {bad:?}");
    }

    #[test]
    fn value_peeking_queries_are_caught() {
        // A query that inspects raw element values is exposed on
        // almost every class.
        let schema = graph_schema();
        let bad = genericity_disagreements(&schema, 1, 1, |_db, t| {
            t[0].value() < 5 // branches on identity: not generic
        });
        assert!(!bad.is_empty(), "value-peeking must be detected");
    }

    #[test]
    #[should_panic(expected = "shift")]
    fn zero_shift_rejected() {
        let schema = graph_schema();
        let class = enumerate_classes(&schema, 1).pop().unwrap();
        let _ = iso_pair_from_class(&schema, &class, 0);
    }
}
