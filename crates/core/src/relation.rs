//! Recursive relations: computable membership oracles.
//!
//! "A recursive relation is a recursive set of tuples over a recursive
//! countably infinite domain. … A recursive relation R can be
//! represented by a Turing machine, which on input u decides whether
//! the tuple u is in R" (§2). We represent that deciding machine as any
//! Rust value implementing [`RecursiveRelation`]: total, terminating
//! membership. Queries are only ever given oracle access to relations
//! ("is u ∈ R?"), exactly as in the paper's oracle-based Definition 2.4.

use crate::{Elem, Tuple};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A recursive (computable) relation of fixed arity.
///
/// Implementations must be *total* — `contains` always terminates — and
/// *pure* — repeated queries give the same answer. This is the Rust
/// rendering of "a Turing machine that accepts the relation".
pub trait RecursiveRelation: Send + Sync {
    /// The arity of the relation.
    fn arity(&self) -> usize;

    /// The membership oracle: is the tuple in the relation?
    ///
    /// # Panics
    /// Implementations may panic if `tuple.len() != self.arity()`;
    /// callers go through [`crate::Database`], which validates ranks.
    fn contains(&self, tuple: &[Elem]) -> bool;

    /// If the relation is finite *and its implementation knows it*,
    /// the explicit set of tuples. This is representation metadata in
    /// the sense of §4: finiteness of a recursive relation is not
    /// decidable from the oracle, so only relations *constructed* as
    /// finite report `Some`.
    fn as_finite(&self) -> Option<&BTreeSet<Tuple>> {
        None
    }

    /// If the relation is co-finite and knows it, the finite complement.
    fn as_cofinite_complement(&self) -> Option<&BTreeSet<Tuple>> {
        None
    }
}

/// A shared, dynamically-typed recursive relation.
pub type RelationRef = Arc<dyn RecursiveRelation>;

/// An explicitly finite relation, stored as its set of tuples.
///
/// This is the "finite part" representation of §4 and also the relation
/// type of ordinary finite databases (the Chandra–Harel baseline).
#[derive(Clone, PartialEq, Eq)]
pub struct FiniteRelation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl FiniteRelation {
    /// An empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        FiniteRelation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Builds a finite relation from tuples, checking ranks.
    ///
    /// # Panics
    /// Panics if any tuple's rank differs from `arity`.
    pub fn new(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let tuples: BTreeSet<Tuple> = tuples.into_iter().collect();
        for t in &tuples {
            assert_eq!(
                t.rank(),
                arity,
                "tuple {t:?} has rank {} but relation arity is {arity}",
                t.rank()
            );
        }
        FiniteRelation { arity, tuples }
    }

    /// Builds a finite binary relation from edge pairs.
    pub fn edges(pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        Self::new(
            2,
            pairs.into_iter().map(|(a, b)| Tuple::from_values([a, b])),
        )
    }

    /// Builds a finite unary relation from element values.
    pub fn unary(vals: impl IntoIterator<Item = u64>) -> Self {
        Self::new(1, vals.into_iter().map(|v| Tuple::from_values([v])))
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples, ordered.
    pub fn tuples(&self) -> &BTreeSet<Tuple> {
        &self.tuples
    }

    /// Inserts a tuple.
    ///
    /// # Panics
    /// Panics on rank mismatch.
    pub fn insert(&mut self, t: Tuple) {
        assert_eq!(t.rank(), self.arity, "rank mismatch on insert");
        self.tuples.insert(t);
    }

    /// All distinct elements appearing in any tuple — the *active
    /// domain* of the relation.
    pub fn active_domain(&self) -> BTreeSet<Elem> {
        self.tuples
            .iter()
            .flat_map(|t| t.elems().iter().copied())
            .collect()
    }
}

impl RecursiveRelation for FiniteRelation {
    fn arity(&self) -> usize {
        self.arity
    }

    fn contains(&self, tuple: &[Elem]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        self.tuples.contains(&Tuple::from(tuple))
    }

    fn as_finite(&self) -> Option<&BTreeSet<Tuple>> {
        Some(&self.tuples)
    }
}

impl fmt::Debug for FiniteRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FiniteRelation/{}{:?}", self.arity, self.tuples)
    }
}

/// A co-finite relation: everything (of the right rank, over the whole
/// domain ℕ) except a finite set of tuples. The "special indicator" of
/// Def 4.1 is the type itself.
#[derive(Clone, PartialEq, Eq)]
pub struct CoFiniteRelation {
    arity: usize,
    complement: BTreeSet<Tuple>,
}

impl CoFiniteRelation {
    /// The full relation `Dⁿ` (empty complement).
    pub fn full(arity: usize) -> Self {
        CoFiniteRelation {
            arity,
            complement: BTreeSet::new(),
        }
    }

    /// Builds a co-finite relation from its finite complement.
    ///
    /// # Panics
    /// Panics if any complement tuple's rank differs from `arity`.
    pub fn new(arity: usize, complement: impl IntoIterator<Item = Tuple>) -> Self {
        let complement: BTreeSet<Tuple> = complement.into_iter().collect();
        for t in &complement {
            assert_eq!(t.rank(), arity, "complement tuple rank mismatch");
        }
        CoFiniteRelation { arity, complement }
    }

    /// The finite complement `R̄`.
    pub fn complement(&self) -> &BTreeSet<Tuple> {
        &self.complement
    }
}

impl RecursiveRelation for CoFiniteRelation {
    fn arity(&self) -> usize {
        self.arity
    }

    fn contains(&self, tuple: &[Elem]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        !self.complement.contains(&Tuple::from(tuple))
    }

    fn as_cofinite_complement(&self) -> Option<&BTreeSet<Tuple>> {
        Some(&self.complement)
    }
}

impl fmt::Debug for CoFiniteRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CoFiniteRelation/{} ℕⁿ∖{:?}",
            self.arity, self.complement
        )
    }
}

/// A relation computed by an arbitrary (total) Rust closure — the
/// general "Turing machine deciding membership". All the paper's
/// arithmetic examples (`z = x·y`, trigonometric tables, step-bounded
/// halting) are `FnRelation`s.
pub struct FnRelation {
    arity: usize,
    name: String,
    f: MembershipFn,
}

/// A boxed membership predicate.
type MembershipFn = Box<dyn Fn(&[Elem]) -> bool + Send + Sync>;

impl FnRelation {
    /// Wraps a membership closure.
    pub fn new(
        name: impl Into<String>,
        arity: usize,
        f: impl Fn(&[Elem]) -> bool + Send + Sync + 'static,
    ) -> Self {
        FnRelation {
            arity,
            name: name.into(),
            f: Box::new(f),
        }
    }

    /// The paper's opening example of a recursive relation:
    /// `{(x,y,z) | z = x·y}`.
    pub fn multiplication() -> Self {
        FnRelation::new("mult", 3, |t| {
            t[0].value().checked_mul(t[1].value()) == Some(t[2].value())
        })
    }

    /// The divisibility relation `{(x,y) | x divides y}` (with the
    /// convention that 0 divides only 0).
    pub fn divides() -> Self {
        FnRelation::new("divides", 2, |t| {
            let (x, y) = (t[0].value(), t[1].value());
            if x == 0 {
                y == 0
            } else {
                y % x == 0
            }
        })
    }

    /// The infinite clique: the complete (irreflexive) graph on ℕ — the
    /// paper's canonical highly symmetric graph (§3.1).
    pub fn infinite_clique() -> Self {
        FnRelation::new("clique", 2, |t| t[0] != t[1])
    }

    /// The two-way infinite line graph of §3.1 (the "not highly
    /// symmetric" example): nodes are ℕ arranged as
    /// `… 7 5 3 1 2 4 6 …`, with symmetric edges between consecutive
    /// positions. In ℤ-coordinates, node `2k+1 ↦ -k` (k ≥ 0) and
    /// `2k ↦ k` (k ≥ 1), with 0 placed at the far even end via `0 ↦ 0`…
    /// we instead use the standard fold: odd `2k+1 ↦ -(k+1)`, even
    /// `2k ↦ k`. Adjacency is `|pos(x) − pos(y)| = 1`.
    pub fn infinite_line() -> Self {
        fn pos(e: Elem) -> i64 {
            let v = e.value() as i64;
            if v % 2 == 0 {
                v / 2
            } else {
                -(v + 1) / 2
            }
        }
        FnRelation::new("line", 2, |t| (pos(t[0]) - pos(t[1])).abs() == 1)
    }
}

impl RecursiveRelation for FnRelation {
    fn arity(&self) -> usize {
        self.arity
    }

    fn contains(&self, tuple: &[Elem]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        (self.f)(tuple)
    }
}

impl fmt::Debug for FnRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnRelation({}/{})", self.name, self.arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn finite_relation_membership() {
        let r = FiniteRelation::edges([(1, 2), (2, 3)]);
        assert!(r.contains(tuple![1, 2].elems()));
        assert!(!r.contains(tuple![2, 1].elems()));
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.active_domain(),
            [Elem(1), Elem(2), Elem(3)].into_iter().collect()
        );
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn finite_relation_rejects_wrong_rank() {
        FiniteRelation::new(2, [tuple![1, 2, 3]]);
    }

    #[test]
    fn cofinite_relation_is_complement_of_its_complement() {
        let r = CoFiniteRelation::new(1, [tuple![5], tuple![7]]);
        assert!(!r.contains(tuple![5].elems()));
        assert!(!r.contains(tuple![7].elems()));
        assert!(r.contains(tuple![6].elems()));
        assert!(r.contains(tuple![1_000_000].elems()));
    }

    #[test]
    fn full_cofinite_contains_everything() {
        let r = CoFiniteRelation::full(2);
        assert!(r.contains(tuple![0, 0].elems()));
        assert!(r.as_cofinite_complement().unwrap().is_empty());
    }

    #[test]
    fn multiplication_relation() {
        let r = FnRelation::multiplication();
        assert!(r.contains(tuple![6, 7, 42].elems()));
        assert!(!r.contains(tuple![6, 7, 43].elems()));
        assert!(r.contains(tuple![0, 999, 0].elems()));
        // Overflow must not panic: checked_mul handles it.
        assert!(!r.contains(tuple![u64::MAX, u64::MAX, 1].elems()));
    }

    #[test]
    fn divides_relation() {
        let r = FnRelation::divides();
        assert!(r.contains(tuple![3, 12].elems()));
        assert!(!r.contains(tuple![5, 12].elems()));
        assert!(r.contains(tuple![0, 0].elems()));
        assert!(!r.contains(tuple![0, 3].elems()));
    }

    #[test]
    fn infinite_clique_is_irreflexive_and_total() {
        let r = FnRelation::infinite_clique();
        assert!(r.contains(tuple![3, 9].elems()));
        assert!(!r.contains(tuple![4, 4].elems()));
    }

    #[test]
    fn infinite_line_structure() {
        let r = FnRelation::infinite_line();
        // Positions: 0↦0, 1↦-1, 2↦1, 3↦-2, 4↦2, …
        assert!(r.contains(tuple![0, 1].elems()), "0 and 1 are adjacent");
        assert!(r.contains(tuple![0, 2].elems()), "0 and 2 are adjacent");
        assert!(r.contains(tuple![2, 4].elems()), "positions 1,2 adjacent");
        assert!(
            !r.contains(tuple![1, 2].elems()),
            "positions -1,1 not adjacent"
        );
        // Symmetry of the line.
        assert!(r.contains(tuple![4, 2].elems()));
        // Every node has degree exactly 2: check node 0's neighbours
        // among the first few naturals.
        let neigh: Vec<u64> = (0..10)
            .filter(|&v| r.contains(&[Elem(0), Elem(v)]))
            .collect();
        assert_eq!(neigh, vec![1, 2]);
    }

    #[test]
    fn finite_relations_report_finiteness_metadata() {
        let f = FiniteRelation::unary([1]);
        assert!(f.as_finite().is_some());
        assert!(f.as_cofinite_complement().is_none());
        let c = CoFiniteRelation::full(1);
        assert!(c.as_finite().is_none());
        assert!(c.as_cofinite_complement().is_some());
        let g = FnRelation::divides();
        assert!(g.as_finite().is_none() && g.as_cofinite_complement().is_none());
    }
}
