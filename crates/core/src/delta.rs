//! Semi-naive delta variables (the datafrog `Variable` discipline).
//!
//! A [`DeltaVar`] holds a monotonically growing set of interned
//! [`TupleId`]s split into the classic three regions:
//!
//! * **stable** — tuples that have already been fed through every
//!   delta rule;
//! * **recent** — tuples admitted on the previous round, the delta the
//!   current round consumes;
//! * **to_add** — tuples produced this round, pending admission.
//!
//! [`DeltaVar::changed`] rotates the regions (`stable ∪= recent`,
//! `recent = to_add`, `to_add = ∅`) and reports whether another round
//! is needed — the standard `while v.changed() { … }` drain loop.
//!
//! Unlike datafrog's `Variable`, the underlying storage is a single
//! deduplicated append log in admission order, with the regions as
//! index ranges into it. The log gives sequential consumers an exact
//! per-reader delta: a cursor into the log plus
//! [`DeltaVar::added_since`] yields precisely the tuples admitted
//! since that reader last looked, independent of the global round
//! rotation. The QL semi-naive engine (`recdb-qlhs`) relies on this to
//! reproduce sequential statement semantics exactly.

use crate::TupleId;
use std::collections::BTreeSet;

/// A monotone set of interned tuple ids with `stable`/`recent`/`to_add`
/// views over a deduplicated insertion-ordered log.
#[derive(Clone, Debug, Default)]
pub struct DeltaVar {
    /// Every id ever admitted, in first-insertion order. Regions:
    /// `order[..stable_len]` is stable, `order[stable_len..recent_len]`
    /// is recent, `order[recent_len..]` is to_add.
    order: Vec<TupleId>,
    present: BTreeSet<TupleId>,
    stable_len: usize,
    recent_len: usize,
}

impl DeltaVar {
    /// An empty variable.
    pub fn new() -> Self {
        DeltaVar::default()
    }

    /// Inserts an id into `to_add`; returns `true` if it was new.
    /// Merging is monotone: an id already present anywhere (stable,
    /// recent, or pending) is ignored.
    pub fn insert(&mut self, id: TupleId) -> bool {
        if self.present.insert(id) {
            self.order.push(id);
            true
        } else {
            false
        }
    }

    /// Rotates the regions: `stable` absorbs `recent`, `to_add`
    /// becomes the new `recent`. Returns whether the new `recent` is
    /// nonempty, i.e. whether another semi-naive round is warranted.
    /// Observes the admitted delta size as `fixpoint.delta.recent`.
    pub fn changed(&mut self) -> bool {
        self.stable_len = self.recent_len;
        self.recent_len = self.order.len();
        recdb_obs::observe(
            "fixpoint.delta.recent",
            (self.recent_len - self.stable_len) as u64,
        );
        self.recent_len > self.stable_len
    }

    /// Membership across all three regions.
    pub fn contains(&self, id: TupleId) -> bool {
        self.present.contains(&id)
    }

    /// Total number of distinct ids (all regions).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Is the variable empty (all regions)?
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The stable region.
    pub fn stable(&self) -> &[TupleId] {
        &self.order[..self.stable_len]
    }

    /// The recent region — the current round's delta.
    pub fn recent(&self) -> &[TupleId] {
        &self.order[self.stable_len..self.recent_len]
    }

    /// The pending region.
    pub fn to_add(&self) -> &[TupleId] {
        &self.order[self.recent_len..]
    }

    /// Everything admitted at or after log position `cursor` — the
    /// per-reader delta for cursor-based sequential consumers. Pair
    /// with [`Self::len`] to advance the cursor.
    pub fn added_since(&self, cursor: usize) -> &[TupleId] {
        &self.order[cursor.min(self.order.len())..]
    }

    /// The whole log in admission order.
    pub fn iter(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.order.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedupes_and_preserves_order() {
        let mut v = DeltaVar::new();
        assert!(v.insert(3));
        assert!(v.insert(1));
        assert!(!v.insert(3), "duplicate admission is monotone-merged");
        assert_eq!(v.len(), 2);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![3, 1]);
        assert!(v.contains(1));
        assert!(!v.contains(7));
    }

    #[test]
    fn changed_rotates_regions() {
        let mut v = DeltaVar::new();
        v.insert(10);
        v.insert(20);
        assert_eq!(v.to_add(), &[10, 20]);
        assert!(v.stable().is_empty() && v.recent().is_empty());
        assert!(v.changed());
        assert_eq!(v.recent(), &[10, 20]);
        assert!(v.to_add().is_empty());
        v.insert(30);
        v.insert(10); // already stable-bound: dropped
        assert!(v.changed());
        assert_eq!(v.stable(), &[10, 20]);
        assert_eq!(v.recent(), &[30]);
        assert!(!v.changed(), "no pending ids: fixpoint reached");
        assert_eq!(v.stable(), &[10, 20, 30]);
    }

    #[test]
    fn cursors_see_exact_deltas() {
        let mut v = DeltaVar::new();
        v.insert(1);
        v.insert(2);
        let cursor = v.len();
        assert_eq!(v.added_since(0), &[1, 2]);
        assert!(v.added_since(cursor).is_empty());
        v.insert(3);
        v.insert(2);
        assert_eq!(v.added_since(cursor), &[3]);
        assert!(v.added_since(99).is_empty(), "cursor past end is empty");
    }
}
