//! Domain elements and tuples.
//!
//! The paper works over an arbitrary countably infinite recursive domain;
//! "here N serves, without loss of generality, as the set of nodes"
//! (§1). We follow that convention: an element is a natural number
//! wrapped in the [`Elem`] newtype, and a tuple is a finite sequence of
//! elements. The *rank* of a tuple is its length (the paper's `|u|`).

use std::fmt;
use std::ops::Deref;

/// A single domain element.
///
/// Elements are opaque identifiers: queries may compare them for
/// equality and pass them to relation oracles, but — to preserve
/// genericity (Def 2.5) — must never branch on their numeric value.
/// The interpreters in the sibling crates respect this discipline; the
/// numeric payload exists so that *databases* (which are allowed to be
/// arbitrary recursive objects) can compute membership.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Elem(pub u64);

impl Elem {
    /// The numeric payload. Only database implementations (membership
    /// oracles, domain predicates, tree constructions) should use this.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Elem {
    fn from(v: u64) -> Self {
        Elem(v)
    }
}

/// A finite tuple of domain elements.
///
/// `Tuple` is the unit of currency of every query: relations decide
/// membership of tuples, queries map databases to sets of tuples, and
/// the equivalence relations of the paper (`≅`, `≅ₗ`, `≅_B`, `≡ᵣ`) are
/// relations on tuples. The empty tuple `()` of rank 0 is a legal and
/// important value (Prop 2.1 note, rank-0 relations).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple(Vec<Elem>);

impl Tuple {
    /// The empty tuple `( )` of rank 0.
    pub fn empty() -> Self {
        Tuple(Vec::new())
    }

    /// Builds a tuple from raw numeric values.
    pub fn from_values<I: IntoIterator<Item = u64>>(vals: I) -> Self {
        Tuple(vals.into_iter().map(Elem).collect())
    }

    /// The rank `|u|` of the tuple.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the rank-0 tuple.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The elements as a slice.
    #[inline]
    pub fn elems(&self) -> &[Elem] {
        &self.0
    }

    /// The tuple extension `ua` — shorthand for `(u₁,…,uₙ,a)` as in the
    /// paper's footnote 5.
    pub fn extend(&self, a: Elem) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(a);
        Tuple(v)
    }

    /// Concatenation `uv`.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// Drops the last element, returning the prefix (or `None` for the
    /// empty tuple).
    pub fn parent(&self) -> Option<Tuple> {
        if self.0.is_empty() {
            None
        } else {
            Some(Tuple(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// The projection `u[i₁,…,iₘ]` used throughout §3.3: selects the
    /// listed 0-based coordinates, in order (repeats allowed).
    ///
    /// # Panics
    /// Panics if an index is out of range; callers validate indices
    /// against the rank first.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple(indices.iter().map(|&i| self.0[i]).collect())
    }

    /// Projects out the *first* coordinate — the semantics of the `↓`
    /// operator of QLhs acts on this (§3.3, semantics item 4).
    pub fn drop_first(&self) -> Option<Tuple> {
        if self.0.is_empty() {
            None
        } else {
            Some(Tuple(self.0[1..].to_vec()))
        }
    }

    /// Exchanges the two rightmost coordinates — the underlying action
    /// of the `~` operator of QLhs.
    pub fn swap_last_two(&self) -> Option<Tuple> {
        let n = self.0.len();
        if n < 2 {
            return None;
        }
        let mut v = self.0.clone();
        v.swap(n - 1, n - 2);
        Some(Tuple(v))
    }

    /// The distinct elements of the tuple, in first-occurrence order.
    pub fn distinct_elems(&self) -> Vec<Elem> {
        let mut out = Vec::new();
        for &e in &self.0 {
            if !out.contains(&e) {
                out.push(e);
            }
        }
        out
    }

    /// The *equality pattern* of the tuple: position `i` maps to the
    /// index (in first-occurrence order) of the distinct element at
    /// that position. Two tuples satisfy condition (ii) of Prop 2.2
    /// (`uᵢ = uⱼ` iff `vᵢ = vⱼ`) exactly when their equality patterns
    /// are equal.
    pub fn equality_pattern(&self) -> Vec<usize> {
        let mut blocks: Vec<Elem> = Vec::new();
        let mut pat = Vec::with_capacity(self.0.len());
        for &e in &self.0 {
            match blocks.iter().position(|&b| b == e) {
                Some(i) => pat.push(i),
                None => {
                    blocks.push(e);
                    pat.push(blocks.len() - 1);
                }
            }
        }
        pat
    }

    /// Applies a function to every element, producing a new tuple.
    pub fn map(&self, mut f: impl FnMut(Elem) -> Elem) -> Tuple {
        Tuple(self.0.iter().map(|&e| f(e)).collect())
    }
}

impl Deref for Tuple {
    type Target = [Elem];
    fn deref(&self) -> &[Elem] {
        &self.0
    }
}

impl From<Vec<Elem>> for Tuple {
    fn from(v: Vec<Elem>) -> Self {
        Tuple(v)
    }
}

impl From<&[Elem]> for Tuple {
    fn from(v: &[Elem]) -> Self {
        Tuple(v.to_vec())
    }
}

impl FromIterator<Elem> for Tuple {
    fn from_iter<I: IntoIterator<Item = Elem>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", e.0)?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Convenience macro for tuples of numeric literals.
#[macro_export]
macro_rules! tuple {
    ($($x:expr),* $(,)?) => {
        $crate::Tuple::from_values([$($x as u64),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tuple_has_rank_zero() {
        let t = Tuple::empty();
        assert_eq!(t.rank(), 0);
        assert!(t.is_empty());
        assert_eq!(t.parent(), None);
        assert_eq!(t.drop_first(), None);
        assert_eq!(t.swap_last_two(), None);
    }

    #[test]
    fn extend_and_parent_are_inverse() {
        let t = Tuple::from_values([1, 2, 3]);
        let e = t.extend(Elem(9));
        assert_eq!(e.rank(), 4);
        assert_eq!(e.parent().unwrap(), t);
    }

    #[test]
    fn concat_ranks_add() {
        let a = Tuple::from_values([1, 2]);
        let b = Tuple::from_values([3]);
        assert_eq!(a.concat(&b), Tuple::from_values([1, 2, 3]));
        assert_eq!(a.concat(&Tuple::empty()), a);
    }

    #[test]
    fn projection_selects_in_order_with_repeats() {
        let t = Tuple::from_values([10, 20, 30]);
        assert_eq!(t.project(&[2, 0, 0]), Tuple::from_values([30, 10, 10]));
        assert_eq!(t.project(&[]), Tuple::empty());
    }

    #[test]
    fn equality_pattern_canonical() {
        assert_eq!(
            Tuple::from_values([5, 7, 5, 9]).equality_pattern(),
            vec![0, 1, 0, 2]
        );
        // Pattern is invariant under injective renaming.
        assert_eq!(
            Tuple::from_values([100, 3, 100, 42]).equality_pattern(),
            vec![0, 1, 0, 2]
        );
        assert_eq!(Tuple::empty().equality_pattern(), Vec::<usize>::new());
    }

    #[test]
    fn distinct_elems_first_occurrence_order() {
        let t = Tuple::from_values([4, 4, 2, 4, 7, 2]);
        assert_eq!(t.distinct_elems(), vec![Elem(4), Elem(2), Elem(7)]);
    }

    #[test]
    fn swap_last_two_swaps() {
        let t = Tuple::from_values([1, 2, 3]);
        assert_eq!(t.swap_last_two().unwrap(), Tuple::from_values([1, 3, 2]));
        assert_eq!(
            Tuple::from_values([8]).swap_last_two(),
            None,
            "rank-1 tuple has no two rightmost coordinates"
        );
    }

    #[test]
    fn drop_first_projects_out_first_coordinate() {
        let t = Tuple::from_values([1, 2, 3]);
        assert_eq!(t.drop_first().unwrap(), Tuple::from_values([2, 3]));
    }

    #[test]
    fn tuple_macro_builds_tuples() {
        assert_eq!(tuple![1, 2, 3], Tuple::from_values([1, 2, 3]));
        let empty: Tuple = tuple![];
        assert_eq!(empty, Tuple::empty());
    }
}
