//! Recursive countably infinite domains.
//!
//! Def 2.1 requires the domain `D` to be a countably infinite recursive
//! set. We fix the ambient universe to ℕ (as the paper does w.l.o.g.)
//! and represent a domain as a decidable predicate on [`Elem`] together
//! with an enumerator. The default domain is all of ℕ.

use crate::Elem;
use std::fmt;
use std::sync::Arc;

/// A countably infinite recursive subset of ℕ.
///
/// Invariant (by contract, not checkable): the predicate holds for
/// infinitely many values. All built-in constructors preserve this.
#[derive(Clone)]
pub struct Domain {
    kind: DomainKind,
}

#[derive(Clone)]
enum DomainKind {
    /// All of ℕ.
    All,
    /// A decidable predicate with a human-readable name.
    Pred {
        name: String,
        pred: Arc<dyn Fn(Elem) -> bool + Send + Sync>,
    },
}

impl Domain {
    /// The full domain ℕ.
    pub fn naturals() -> Self {
        Domain {
            kind: DomainKind::All,
        }
    }

    /// A domain given by a decidable predicate. The caller warrants the
    /// predicate holds infinitely often.
    pub fn predicate(
        name: impl Into<String>,
        pred: impl Fn(Elem) -> bool + Send + Sync + 'static,
    ) -> Self {
        Domain {
            kind: DomainKind::Pred {
                name: name.into(),
                pred: Arc::new(pred),
            },
        }
    }

    /// The even naturals — a convenient proper recursive subdomain.
    pub fn evens() -> Self {
        Domain::predicate("evens", |e| e.value() % 2 == 0)
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, e: Elem) -> bool {
        match &self.kind {
            DomainKind::All => true,
            DomainKind::Pred { pred, .. } => pred(e),
        }
    }

    /// Enumerates the domain in increasing numeric order.
    pub fn iter(&self) -> impl Iterator<Item = Elem> + '_ {
        (0u64..).map(Elem).filter(move |&e| self.contains(e))
    }

    /// The first `n` elements of the domain in increasing order.
    pub fn first_n(&self, n: usize) -> Vec<Elem> {
        self.iter().take(n).collect()
    }

    /// The first domain element not occurring in `used` — the "first
    /// element of D not appearing in u" step of every back-and-forth
    /// construction in the paper (Prop 3.2, 3.3, 3.5).
    pub fn first_not_in(&self, used: &[Elem]) -> Elem {
        match self.iter().find(|e| !used.contains(e)) {
            Some(e) => e,
            // Unreachable under the contract: `iter()` enumerates an
            // infinite domain, and a finite `used` cannot cover it.
            None => Elem(u64::MAX),
        }
    }
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            DomainKind::All => write!(f, "Domain(ℕ)"),
            DomainKind::Pred { name, .. } => write!(f, "Domain({name})"),
        }
    }
}

impl Default for Domain {
    fn default() -> Self {
        Domain::naturals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naturals_contains_everything() {
        let d = Domain::naturals();
        assert!(d.contains(Elem(0)));
        assert!(d.contains(Elem(u64::MAX)));
        assert_eq!(d.first_n(3), vec![Elem(0), Elem(1), Elem(2)]);
    }

    #[test]
    fn evens_filters() {
        let d = Domain::evens();
        assert!(d.contains(Elem(4)));
        assert!(!d.contains(Elem(5)));
        assert_eq!(d.first_n(3), vec![Elem(0), Elem(2), Elem(4)]);
    }

    #[test]
    fn first_not_in_skips_used_elements() {
        let d = Domain::naturals();
        assert_eq!(d.first_not_in(&[]), Elem(0));
        assert_eq!(
            d.first_not_in(&[Elem(0), Elem(1), Elem(3)]),
            Elem(2),
            "picks the least unused element"
        );
    }
}
