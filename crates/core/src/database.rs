//! Recursive relational data bases (r-dbs).
//!
//! Def 2.1: `B = (D, R₁,…,R_k)` is an r-db of type `a = (a₁,…,a_k)` if
//! each `Rᵢ ⊆ D^{aᵢ}` is a recursive relation over the countably
//! infinite recursive domain `D`. "We actually think of an r-db as a
//! sequence of Turing machines that accept the appropriate relations" —
//! here, a sequence of [`RecursiveRelation`] oracles.
//!
//! Query evaluators access relations **only** through
//! [`Database::query`], which counts oracle calls. The counter is the
//! executable form of the paper's insistence (footnote 2) that a query
//! machine "is allowed to access the input machines only in order to
//! ask questions of the form 'is u ∈ R'".

use crate::{Domain, Elem, RecursiveRelation, RelationRef, Schema, Tuple};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A recursive relational data base.
#[derive(Clone)]
pub struct Database {
    name: String,
    domain: Domain,
    schema: Schema,
    relations: Vec<RelationRef>,
    oracle_calls: Arc<AtomicU64>,
}

impl Database {
    /// Assembles an r-db over the full domain ℕ.
    ///
    /// # Panics
    /// Panics if relation arities disagree with the schema.
    pub fn new(name: impl Into<String>, schema: Schema, relations: Vec<RelationRef>) -> Self {
        Self::with_domain(name, Domain::naturals(), schema, relations)
    }

    /// Assembles an r-db over an explicit domain.
    ///
    /// # Panics
    /// Panics if the relation count or arities disagree with the schema.
    pub fn with_domain(
        name: impl Into<String>,
        domain: Domain,
        schema: Schema,
        relations: Vec<RelationRef>,
    ) -> Self {
        assert_eq!(
            schema.len(),
            relations.len(),
            "schema has {} relations but {} were supplied",
            schema.len(),
            relations.len()
        );
        for (i, r) in relations.iter().enumerate() {
            assert_eq!(
                r.arity(),
                schema.arity(i),
                "relation {} has arity {} but schema says {}",
                schema.name(i),
                r.arity(),
                schema.arity(i)
            );
        }
        Database {
            name: name.into(),
            domain,
            schema,
            relations,
            oracle_calls: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The database name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The domain `D(B)`.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The type `a` of the database.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of relations `k`.
    pub fn relation_count(&self) -> usize {
        self.schema.len()
    }

    /// The oracle question "is `u ∈ Rᵢ`?" — the *only* sanctioned way
    /// for query machinery to inspect a relation.
    ///
    /// # Panics
    /// Panics if `i` is out of range or the tuple rank mismatches the
    /// relation arity (a malformed oracle question, not a `false`).
    pub fn query(&self, i: usize, tuple: &[Elem]) -> bool {
        let rel = &self.relations[i];
        assert_eq!(
            tuple.len(),
            rel.arity(),
            "oracle question to {} has rank {} but arity is {}",
            self.schema.name(i),
            tuple.len(),
            rel.arity()
        );
        self.oracle_calls.fetch_add(1, Ordering::Relaxed);
        rel.contains(tuple)
    }

    /// Raw access to the relation object. Reserved for database
    /// *construction* (stretchings, products); query evaluators must
    /// use [`Self::query`].
    pub fn relation(&self, i: usize) -> &RelationRef {
        &self.relations[i]
    }

    /// Total oracle questions asked so far, across clones of this
    /// database handle.
    pub fn oracle_calls(&self) -> u64 {
        self.oracle_calls.load(Ordering::Relaxed)
    }

    /// Resets the oracle-call counter.
    pub fn reset_oracle_calls(&self) {
        self.oracle_calls.store(0, Ordering::Relaxed);
    }

    /// An isomorphic copy of the database under the element bijection
    /// `f` (with inverse `f_inv`): tuple `t` is in the copy's `Rᵢ` iff
    /// `f_inv(t)` is in this database's `Rᵢ`. The paper's "replace
    /// `1,…,n` by `n+1,…,2n`" constructions, as an operator.
    ///
    /// Correctness requires `f_inv ∘ f = id`; only `f_inv` is actually
    /// evaluated (on query tuples), `f` documents the direction.
    pub fn isomorphic_copy(
        &self,
        name: impl Into<String>,
        f_inv: impl Fn(Elem) -> Elem + Send + Sync + Clone + 'static,
    ) -> Database {
        let mut relations: Vec<RelationRef> = Vec::with_capacity(self.relations.len());
        for r in &self.relations {
            relations.push(
                Arc::new(crate::combinators::mapped(Arc::clone(r), f_inv.clone())) as RelationRef,
            );
        }
        Database {
            name: name.into(),
            domain: self.domain.clone(),
            schema: self.schema.clone(),
            relations,
            oracle_calls: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The *stretching* of this database by the marked elements
    /// `d₁,…,d_m` (§3.1): appends `m` unary singleton relations
    /// `{(d₁)},…,{(d_m)}`.
    pub fn stretch(&self, marks: &[Elem]) -> Database {
        let schema = self.schema.stretched(marks.len());
        let mut relations = self.relations.clone();
        for &d in marks {
            relations.push(
                Arc::new(crate::FiniteRelation::new(1, [Tuple::from(vec![d])])) as RelationRef,
            );
        }
        Database {
            name: format!("{}+stretch{:?}", self.name, marks),
            domain: self.domain.clone(),
            schema,
            relations,
            oracle_calls: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Database({} : {:?})", self.name, self.schema)
    }
}

/// Builder for assembling databases readably.
///
/// ```
/// use recdb_core::{DatabaseBuilder, FnRelation};
/// let db = DatabaseBuilder::new("arith")
///     .relation("mult", FnRelation::multiplication())
///     .relation("div", FnRelation::divides())
///     .build();
/// assert_eq!(db.relation_count(), 2);
/// ```
pub struct DatabaseBuilder {
    name: String,
    domain: Domain,
    names: Vec<String>,
    relations: Vec<RelationRef>,
}

impl DatabaseBuilder {
    /// Starts a builder for a database over ℕ.
    pub fn new(name: impl Into<String>) -> Self {
        DatabaseBuilder {
            name: name.into(),
            domain: Domain::naturals(),
            names: Vec::new(),
            relations: Vec::new(),
        }
    }

    /// Sets the domain.
    pub fn domain(mut self, d: Domain) -> Self {
        self.domain = d;
        self
    }

    /// Adds a named relation.
    pub fn relation(
        mut self,
        name: impl Into<String>,
        rel: impl RecursiveRelation + 'static,
    ) -> Self {
        self.names.push(name.into());
        self.relations.push(Arc::new(rel));
        self
    }

    /// Adds a shared relation handle.
    pub fn relation_ref(mut self, name: impl Into<String>, rel: RelationRef) -> Self {
        self.names.push(name.into());
        self.relations.push(rel);
        self
    }

    /// Finalizes the database.
    pub fn build(self) -> Database {
        let arities: Vec<usize> = self.relations.iter().map(|r| r.arity()).collect();
        let name_refs: Vec<&str> = self.names.iter().map(String::as_str).collect();
        let schema = Schema::with_names(&name_refs, &arities);
        Database::with_domain(self.name, self.domain, schema, self.relations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, FiniteRelation, FnRelation};

    fn graph_db(edges: &[(u64, u64)]) -> Database {
        DatabaseBuilder::new("g")
            .relation("E", FiniteRelation::edges(edges.iter().copied()))
            .build()
    }

    #[test]
    fn query_counts_oracle_calls() {
        let db = graph_db(&[(1, 2)]);
        assert_eq!(db.oracle_calls(), 0);
        assert!(db.query(0, tuple![1, 2].elems()));
        assert!(!db.query(0, tuple![2, 1].elems()));
        assert_eq!(db.oracle_calls(), 2);
        db.reset_oracle_calls();
        assert_eq!(db.oracle_calls(), 0);
    }

    #[test]
    fn clones_share_the_counter() {
        let db = graph_db(&[(1, 2)]);
        let db2 = db.clone();
        db2.query(0, tuple![1, 2].elems());
        assert_eq!(db.oracle_calls(), 1);
    }

    #[test]
    #[should_panic(expected = "oracle question")]
    fn malformed_oracle_question_panics() {
        let db = graph_db(&[]);
        db.query(0, tuple![1].elems());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn schema_relation_arity_mismatch_rejected() {
        let schema = Schema::new([3]);
        Database::new(
            "bad",
            schema,
            vec![Arc::new(FiniteRelation::edges([])) as RelationRef],
        );
    }

    #[test]
    fn stretching_appends_singletons() {
        let db = graph_db(&[(1, 2)]);
        let s = db.stretch(&[Elem(1), Elem(5)]);
        assert_eq!(s.relation_count(), 3);
        assert!(s.query(1, tuple![1].elems()));
        assert!(!s.query(1, tuple![5].elems()));
        assert!(s.query(2, tuple![5].elems()));
        assert_eq!(s.schema().name(1), "Mark1");
    }

    #[test]
    fn builder_names_relations() {
        let db = DatabaseBuilder::new("arith")
            .relation("mult", FnRelation::multiplication())
            .build();
        assert_eq!(db.schema().index_of("mult"), Some(0));
        assert!(db.query(0, tuple![2, 3, 6].elems()));
    }
}

#[cfg(test)]
mod iso_copy_tests {
    use super::*;
    use crate::{locally_isomorphic, tuple, FiniteRelation};

    #[test]
    fn shifted_copy_is_isomorphic_at_shifted_tuples() {
        let db = DatabaseBuilder::new("g")
            .relation("E", FiniteRelation::edges([(1, 2), (2, 3), (1, 1)]))
            .build();
        // Shift every element up by 10: f(x) = x+10, f_inv(y) = y−10.
        let copy = db.isomorphic_copy("g+10", |e| Elem(e.value().wrapping_sub(10)));
        assert!(copy.query(0, tuple![11, 12].elems()));
        assert!(copy.query(0, tuple![11, 11].elems()));
        assert!(!copy.query(0, tuple![1, 2].elems()));
        // (db, u) ≅ₗ (copy, f(u)) for any u.
        for u in [tuple![1, 2], tuple![2, 2], tuple![3, 1]] {
            let v = u.map(|e| Elem(e.value() + 10));
            assert!(locally_isomorphic(&db, &u, &copy, &v));
        }
    }

    #[test]
    fn copy_has_independent_oracle_counter() {
        let db = DatabaseBuilder::new("g")
            .relation("E", FiniteRelation::edges([(1, 2)]))
            .build();
        let copy = db.isomorphic_copy("c", |e| e);
        copy.query(0, tuple![1, 2].elems());
        assert_eq!(copy.oracle_calls(), 1);
        assert_eq!(db.oracle_calls(), 0);
    }
}
