//! Bounded computation.
//!
//! Recursive databases are infinite objects, and several of the paper's
//! procedures are only *semi*-decidable (oracle Turing machines may
//! diverge; an r-query may be everywhere-undefined). To keep every API
//! in this workspace total, potentially-divergent procedures take a
//! [`Fuel`] budget and return [`FuelError`] on exhaustion instead of
//! hanging. This is the workspace-wide answer to "lazy infinite
//! structures": nothing blocks, everything is explicitly bounded.

use std::fmt;

/// A step budget for potentially-divergent computations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fuel {
    remaining: u64,
    initial: u64,
}

impl Fuel {
    /// A budget of `n` steps.
    pub fn new(n: u64) -> Self {
        Fuel {
            remaining: n,
            initial: n,
        }
    }

    /// Consumes one step, failing when the budget is exhausted.
    #[inline]
    pub fn tick(&mut self) -> Result<(), FuelError> {
        self.consume(1)
    }

    /// Consumes `n` steps at once.
    #[inline]
    pub fn consume(&mut self, n: u64) -> Result<(), FuelError> {
        if self.remaining < n {
            self.remaining = 0;
            Err(FuelError {
                budget: self.initial,
            })
        } else {
            self.remaining -= n;
            Ok(())
        }
    }

    /// Steps left in the budget.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Steps consumed so far.
    #[inline]
    pub fn used(&self) -> u64 {
        self.initial - self.remaining
    }
}

/// The budget of a bounded computation ran out.
///
/// This is *not* evidence of divergence — only that the answer was not
/// reached within the budget. Callers distinguishing "undefined" from
/// "needs more fuel" must reason at the call site (e.g. Prop 2.3 part 1
/// lets a query evaluator conclude "everywhere undefined" only from the
/// query's own structure, never from a timeout).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FuelError {
    /// The initial budget that was exhausted.
    pub budget: u64,
}

impl fmt::Display for FuelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fuel budget of {} steps exhausted", self.budget)
    }
}

impl std::error::Error for FuelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_counts_down() {
        let mut f = Fuel::new(3);
        assert!(f.tick().is_ok());
        assert!(f.tick().is_ok());
        assert_eq!(f.remaining(), 1);
        assert_eq!(f.used(), 2);
        assert!(f.tick().is_ok());
        assert_eq!(f.tick(), Err(FuelError { budget: 3 }));
    }

    #[test]
    fn consume_rejects_overdraft_and_zeroes() {
        let mut f = Fuel::new(10);
        assert!(f.consume(7).is_ok());
        assert!(f.consume(4).is_err());
        assert_eq!(f.remaining(), 0, "failed consume drains the budget");
    }

    #[test]
    fn zero_fuel_fails_immediately() {
        let mut f = Fuel::new(0);
        assert!(f.tick().is_err());
    }

    #[test]
    fn error_displays_budget() {
        let e = FuelError { budget: 42 };
        assert!(e.to_string().contains("42"));
    }
}
