//! A deterministic, dependency-free RNG for tests and benchmarks.
//!
//! [`SplitMix64`] (Steele–Lea–Flood) is the offline stand-in for
//! `rand::rngs::StdRng`: same seeding discipline (`seed_from_u64`),
//! full reproducibility from a single `u64`, no external crates. It
//! started life in the conformance crate and moved here so the seeded
//! property tests and the bench generators can share it. Every
//! conformance check derives its own stream from the master seed and
//! its check id, so adding or reordering checks never perturbs the
//! inputs another check sees.

/// A SplitMix64 generator. Passes BigCrush as a 64-bit mixer; more
/// than enough to drive metamorphic test-case generation.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

/// Alias documenting the substitution: the conformance harness is
/// written against the `StdRng` seeding discipline, provided offline
/// by [`SplitMix64`].
pub type StdRng = SplitMix64;

impl SplitMix64 {
    /// Seeds the generator from a `u64` (the `rand::SeedableRng`
    /// convention).
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. `n` must be positive.
    pub fn gen_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_usize(0)");
        // Multiply-shift rejection-free mapping; bias is < 2⁻⁶⁴·n,
        // irrelevant for test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform in `[lo, hi)`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.gen_usize((hi - lo) as usize) as u64
    }

    /// A fair coin.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            xs.swap(i, self.gen_usize(i + 1));
        }
    }

    /// A uniformly chosen element.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.gen_usize(xs.len())]
    }
}

/// FNV-1a over a string — used to derive per-check seeds from the
/// master seed, keyed by check id.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3, 9);
            assert!((3..9).contains(&x));
            assert!(r.gen_usize(5) < 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..20).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn fnv_distinguishes_check_ids() {
        assert_ne!(fnv1a("T2.1"), fnv1a("P2.2"));
        assert_ne!(fnv1a("P3.7"), fnv1a("P3.1"));
    }
}
