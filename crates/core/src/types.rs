//! Atomic types: the equivalence classes of `≅ₗ`.
//!
//! For a fixed database type `a` and rank `n`, `≅ₗ` is an equivalence
//! relation **of finite index** on pairs `(B,u)` (§2); the paper writes
//! its classes `Cⁿ = {Cⁿ₁,…,Cⁿₘ}`. An [`AtomicType`] is the canonical
//! description of one class: the equality pattern among the tuple's
//! positions plus, for every relation and every index vector over the
//! distinct elements, one membership bit. The paper's example: for type
//! `a = (2,1)` there are `2² + 2⁴·2² = 68` classes of rank 2 — see
//! [`count_classes`] and the tests.
//!
//! Atomic types are the pivot of the whole paper: computable r-queries
//! are exactly unions of classes (Prop 2.4), and `L⁻` formulas are
//! exactly descriptions of such unions (Theorem 2.1).

use crate::lociso::index_vectors;
use crate::{Database, DatabaseBuilder, FiniteRelation, Schema, Tuple};

/// A canonical `≅ₗ`-equivalence class of rank-`n` pairs `(B,u)` for a
/// fixed schema.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AtomicType {
    /// Rank `n` of the tuples in the class.
    rank: usize,
    /// Canonical equality pattern: `pattern[i]` is the block index (in
    /// first-occurrence order) of position `i`. A restricted-growth
    /// string.
    pattern: Vec<usize>,
    /// Number of distinct elements `m` (= number of blocks).
    blocks: usize,
    /// `facts[i][j]` — whether the `j`-th index vector (odometer order,
    /// as produced by `index_vectors(blocks, arity_i)`) over the block
    /// representatives lies in relation `i`.
    facts: Vec<Vec<bool>>,
}

impl AtomicType {
    /// Computes the atomic type of `(db, u)` by querying the oracles —
    /// the constructive content of Prop 2.2.
    pub fn of(db: &Database, u: &Tuple) -> AtomicType {
        let pattern = u.equality_pattern();
        let blocks = pattern.iter().copied().max().map_or(0, |m| m + 1);
        let reps = u.distinct_elems();
        debug_assert_eq!(reps.len(), blocks);
        let schema = db.schema();
        let mut facts = Vec::with_capacity(schema.len());
        for i in 0..schema.len() {
            let a = schema.arity(i);
            let bits = if a == 0 {
                // The single fact `( ) ∈ Rᵢ`.
                vec![db.query(i, &[])]
            } else if blocks == 0 {
                // No facts are expressible about an empty tuple for a
                // positive-arity relation.
                Vec::new()
            } else {
                index_vectors(blocks, a)
                    .iter()
                    .map(|idx| {
                        let t: Tuple = idx.iter().map(|&j| reps[j]).collect();
                        db.query(i, t.elems())
                    })
                    .collect()
            };
            facts.push(bits);
        }
        AtomicType {
            rank: u.rank(),
            pattern,
            blocks,
            facts,
        }
    }

    /// The rank `n`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The number of distinct elements in tuples of this class.
    pub fn distinct_count(&self) -> usize {
        self.blocks
    }

    /// The canonical equality pattern.
    pub fn pattern(&self) -> &[usize] {
        &self.pattern
    }

    /// The membership bit for relation `i` at the given index vector
    /// over blocks (odometer order).
    pub fn fact(&self, i: usize, idx_vector_pos: usize) -> bool {
        self.facts[i][idx_vector_pos]
    }

    /// All facts for relation `i`, in odometer order over
    /// `index_vectors(self.distinct_count(), arity_i)`.
    pub fn facts_of(&self, i: usize) -> &[bool] {
        &self.facts[i]
    }

    /// Does `(db, u)` belong to this class? Equivalent to
    /// `AtomicType::of(db, u) == *self` but short-circuits.
    pub fn matches(&self, db: &Database, u: &Tuple) -> bool {
        if u.rank() != self.rank || u.equality_pattern() != self.pattern {
            return false;
        }
        let reps = u.distinct_elems();
        let schema = db.schema();
        for i in 0..schema.len() {
            let a = schema.arity(i);
            if a == 0 {
                if db.query(i, &[]) != self.facts[i][0] {
                    return false;
                }
                continue;
            }
            if self.blocks == 0 {
                continue;
            }
            for (j, idx) in index_vectors(self.blocks, a).iter().enumerate() {
                let t: Tuple = idx.iter().map(|&b| reps[b]).collect();
                if db.query(i, t.elems()) != self.facts[i][j] {
                    return false;
                }
            }
        }
        true
    }

    /// Builds a *witness* — a concrete r-db (with finite relations over
    /// ℕ) and tuple whose atomic type is exactly `self`. Witnesses make
    /// the finite-index classes of `Cⁿ` tangible and are the seed of
    /// Prop 2.3's "combine two locally isomorphic pairs into one
    /// database" construction.
    pub fn witness(&self, schema: &Schema) -> (Database, Tuple) {
        assert_eq!(schema.len(), self.facts.len(), "schema mismatch");
        let mut b = DatabaseBuilder::new("witness");
        for i in 0..schema.len() {
            let a = schema.arity(i);
            let mut rel = FiniteRelation::empty(a);
            if a == 0 {
                if self.facts[i][0] {
                    rel.insert(Tuple::empty());
                }
            } else if self.blocks > 0 {
                for (j, idx) in index_vectors(self.blocks, a).iter().enumerate() {
                    if self.facts[i][j] {
                        rel.insert(idx.iter().map(|&x| crate::Elem(x as u64)).collect());
                    }
                }
            }
            b = b.relation(schema.name(i), rel);
        }
        let u: Tuple = self
            .pattern
            .iter()
            .map(|&blk| crate::Elem(blk as u64))
            .collect();
        (b.build(), u)
    }
}

/// Enumerates all restricted-growth strings of length `n` — canonical
/// set partitions of `{0,…,n−1}`.
pub fn restricted_growth_strings(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = vec![0usize; n];
    fn rec(cur: &mut Vec<usize>, pos: usize, maxv: usize, out: &mut Vec<Vec<usize>>) {
        let n = cur.len();
        if pos == n {
            out.push(cur.clone());
            return;
        }
        for v in 0..=maxv + 1 {
            cur[pos] = v;
            rec(cur, pos + 1, maxv.max(v), out);
        }
    }
    if n == 0 {
        return vec![Vec::new()];
    }
    // First position is always block 0.
    cur[0] = 0;
    rec(&mut cur, 1, 0, &mut out);
    out
}

/// Enumerates every atomic type of rank `n` for the given schema — the
/// finite set `Cⁿ`. Exponential in `n` and the arities; intended for
/// the small ranks the paper's constructions need.
pub fn enumerate_classes(schema: &Schema, n: usize) -> Vec<AtomicType> {
    let mut out = Vec::new();
    for pattern in restricted_growth_strings(n) {
        let blocks = pattern.iter().copied().max().map_or(0, |m| m + 1);
        // Sizes of the fact tables per relation.
        let sizes: Vec<usize> = (0..schema.len())
            .map(|i| {
                let a = schema.arity(i);
                if a == 0 {
                    1
                } else if blocks == 0 {
                    0
                } else {
                    blocks.pow(a as u32)
                }
            })
            .collect();
        let total_bits: usize = sizes.iter().sum();
        // Enumerate all 2^total_bits fact assignments.
        assert!(
            total_bits < 32,
            "class enumeration for this schema/rank is astronomically large"
        );
        for mask in 0u64..(1u64 << total_bits) {
            let mut facts = Vec::with_capacity(schema.len());
            let mut off = 0;
            for &sz in &sizes {
                let mut bits = Vec::with_capacity(sz);
                for b in 0..sz {
                    bits.push((mask >> (off + b)) & 1 == 1);
                }
                off += sz;
                facts.push(bits);
            }
            out.push(AtomicType {
                rank: n,
                pattern: pattern.clone(),
                blocks,
                facts,
            });
        }
    }
    out
}

/// Stirling number of the second kind `S(n, m)`: the number of
/// partitions of an `n`-set into `m` nonempty blocks.
pub fn stirling2(n: usize, m: usize) -> u128 {
    if n == 0 && m == 0 {
        return 1;
    }
    if n == 0 || m == 0 || m > n {
        return 0;
    }
    let mut row = vec![0u128; m + 1];
    row[0] = 1; // S(0,0)
    for i in 1..=n {
        let hi = m.min(i);
        // Compute in place from high to low: S(i,j) = j·S(i−1,j) + S(i−1,j−1).
        for j in (1..=hi).rev() {
            row[j] = (j as u128) * row[j] + row[j - 1];
        }
        row[0] = 0; // S(i,0) = 0 for i ≥ 1
    }
    row[m]
}

/// The closed-form size of `Cⁿ`:
/// `|Cⁿ| = Σ_{m} S(n,m) · Πᵢ 2^{m^{aᵢ}}` (with the rank-0-relation bit
/// counting once regardless of `m`). Matches [`enumerate_classes`] —
/// the paper's `2² + 2⁴·2² = 68` example is the `a=(2,1), n=2` entry.
pub fn count_classes(schema: &Schema, n: usize) -> u128 {
    if n == 0 {
        // Only the empty pattern; facts exist only for rank-0 relations.
        let zero_rels = schema.arities().iter().filter(|&&a| a == 0).count();
        return 1u128 << zero_rels;
    }
    let mut total = 0u128;
    for m in 1..=n {
        let mut per_partition = 1u128;
        for &a in schema.arities() {
            let bits = if a == 0 { 1 } else { (m as u128).pow(a as u32) };
            // Counts past `u128::MAX` saturate: callers only compare
            // against small enumerations or cutoff thresholds, and
            // both read correctly through saturation.
            let factor = if bits >= 128 {
                u128::MAX
            } else {
                1u128 << bits
            };
            per_partition = per_partition.saturating_mul(factor);
        }
        total += stirling2(n, m) * per_partition;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, DatabaseBuilder, FnRelation};

    fn schema21() -> Schema {
        Schema::new([2, 1])
    }

    #[test]
    fn paper_example_68_classes() {
        // §2 example: type a=(2,1), rank 2 → 2² + 2⁴·2² = 68 classes.
        assert_eq!(count_classes(&schema21(), 2), 68);
        assert_eq!(enumerate_classes(&schema21(), 2).len(), 68);
    }

    #[test]
    fn class_counts_match_enumeration_on_small_cases() {
        for (arities, n) in [
            (vec![1], 0),
            (vec![1], 1),
            (vec![1], 2),
            (vec![1], 3),
            (vec![2], 1),
            (vec![2], 2),
            (vec![2, 1], 1),
            (vec![0], 0),
            (vec![0, 1], 1),
            (vec![1, 1, 1], 2),
        ] {
            let s = Schema::new(arities.clone());
            assert_eq!(
                count_classes(&s, n),
                enumerate_classes(&s, n).len() as u128,
                "mismatch for a={arities:?}, n={n}"
            );
        }
    }

    #[test]
    fn rank_zero_classes() {
        // No rank-0 relations: exactly one class (the empty pair).
        assert_eq!(count_classes(&schema21(), 0), 1);
        // One rank-0 relation: two classes (( ) ∈ R or not).
        assert_eq!(count_classes(&Schema::new([0]), 0), 2);
    }

    #[test]
    fn stirling_numbers() {
        assert_eq!(stirling2(0, 0), 1);
        assert_eq!(stirling2(3, 1), 1);
        assert_eq!(stirling2(3, 2), 3);
        assert_eq!(stirling2(3, 3), 1);
        assert_eq!(stirling2(4, 2), 7);
        assert_eq!(stirling2(5, 3), 25);
        assert_eq!(stirling2(3, 4), 0);
        assert_eq!(stirling2(0, 1), 0);
    }

    #[test]
    fn rgs_counts_are_bell_numbers() {
        assert_eq!(restricted_growth_strings(0).len(), 1);
        assert_eq!(restricted_growth_strings(1).len(), 1);
        assert_eq!(restricted_growth_strings(2).len(), 2);
        assert_eq!(restricted_growth_strings(3).len(), 5);
        assert_eq!(restricted_growth_strings(4).len(), 15);
    }

    #[test]
    fn atomic_type_of_matches_itself() {
        let db = DatabaseBuilder::new("d")
            .relation("E", FnRelation::infinite_clique())
            .relation("P", FnRelation::new("even", 1, |t| t[0].value() % 2 == 0))
            .build();
        for u in [tuple![1, 2], tuple![4, 4], tuple![2, 7], tuple![0, 0]] {
            let ty = AtomicType::of(&db, &u);
            assert!(ty.matches(&db, &u), "type of {u:?} must match {u:?}");
        }
    }

    #[test]
    fn atomic_type_equality_iff_locally_equivalent() {
        let db = DatabaseBuilder::new("d")
            .relation("D", FnRelation::divides())
            .build();
        let tuples = [
            tuple![2, 4],
            tuple![3, 9],
            tuple![4, 2],
            tuple![5, 7],
            tuple![6, 6],
        ];
        for u in &tuples {
            for v in &tuples {
                assert_eq!(
                    AtomicType::of(&db, u) == AtomicType::of(&db, v),
                    crate::locally_equivalent(&db, u, v),
                    "types agree with ≅ₗ on ({u:?},{v:?})"
                );
            }
        }
    }

    #[test]
    fn every_enumerated_class_has_a_valid_witness() {
        let schema = Schema::new([2, 1]);
        for ty in enumerate_classes(&schema, 2) {
            let (db, u) = ty.witness(&schema);
            assert!(
                ty.matches(&db, &u),
                "witness of {ty:?} must inhabit the class"
            );
            assert_eq!(AtomicType::of(&db, &u), ty);
        }
    }

    #[test]
    fn classes_partition_observed_pairs() {
        // Every (db,u) falls in exactly one enumerated class.
        let db = DatabaseBuilder::new("d")
            .relation("E", FnRelation::infinite_line())
            .relation(
                "P",
                FnRelation::new("sq", 1, |t| {
                    let v = t[0].value();
                    let r = (v as f64).sqrt() as u64;
                    r * r == v || (r + 1) * (r + 1) == v
                }),
            )
            .build();
        let classes = enumerate_classes(db.schema(), 2);
        for u in [tuple![0, 1], tuple![3, 3], tuple![4, 9], tuple![5, 2]] {
            let hits = classes.iter().filter(|c| c.matches(&db, &u)).count();
            assert_eq!(hits, 1, "tuple {u:?} must lie in exactly one class");
        }
    }

    #[test]
    fn witness_of_paper_class_c2i() {
        // The paper's example class C²ᵢ for a=(2,1):
        // x≠y ∧ (x,y)∉R₁ ∧ (y,x)∈R₁ ∧ (x,x)∈R₁ ∧ (y,y)∉R₁ ∧ x∉R₂ ∧ y∈R₂.
        let schema = schema21();
        let target = enumerate_classes(&schema, 2)
            .into_iter()
            .find(|ty| {
                if ty.distinct_count() != 2 {
                    return false;
                }
                let (db, u) = ty.witness(&schema);
                let (x, y) = (u[0], u[1]);
                !db.query(0, &[x, y])
                    && db.query(0, &[y, x])
                    && db.query(0, &[x, x])
                    && !db.query(0, &[y, y])
                    && !db.query(1, &[x])
                    && db.query(1, &[y])
            })
            .expect("the paper's C²ᵢ is one of the 68 classes");
        assert_eq!(target.rank(), 2);
    }
}
