//! Property-based tests for the core invariants of §2.
//!
//! Written as seeded deterministic property loops over
//! [`recdb_core::SplitMix64`] rather than an external framework, so
//! they run in offline environments (DESIGN.md §7, seed-test triage).
//! Each test derives its stream from its own name, so adding or
//! reordering tests never perturbs another test's inputs.

use recdb_core::{
    amalgamate, count_classes, enumerate_classes, fnv1a, locally_equivalent, locally_isomorphic,
    AtomicType, ClassUnionQuery, Database, DatabaseBuilder, Elem, FiniteRelation, QueryOutcome,
    RQuery, Schema, SplitMix64, Tuple,
};
use std::collections::BTreeSet;

/// Cases per property — seeded, so every run explores the same inputs.
const CASES: usize = 96;

fn rng_for(test: &str) -> SplitMix64 {
    SplitMix64::seed_from_u64(fnv1a(test) ^ 0x5ecd_eb0a)
}

/// A small finite graph database over elements 0..6.
fn small_graph_db(rng: &mut SplitMix64) -> Database {
    DatabaseBuilder::new("g")
        .relation("E", FiniteRelation::edges(small_edge_set(rng)))
        .build()
}

fn small_edge_set(rng: &mut SplitMix64) -> BTreeSet<(u64, u64)> {
    let n = rng.gen_usize(12);
    (0..n)
        .map(|_| (rng.gen_range(0, 6), rng.gen_range(0, 6)))
        .collect()
}

/// A tuple of rank 0..4 over elements 0..6.
fn small_tuple(rng: &mut SplitMix64) -> Tuple {
    let rank = rng.gen_usize(4);
    Tuple::from_values((0..rank).map(|_| rng.gen_range(0, 6)))
}

#[test]
fn lociso_reflexive() {
    let mut rng = rng_for("lociso_reflexive");
    for _ in 0..CASES {
        let db = small_graph_db(&mut rng);
        let u = small_tuple(&mut rng);
        assert!(locally_equivalent(&db, &u, &u));
    }
}

#[test]
fn lociso_symmetric() {
    let mut rng = rng_for("lociso_symmetric");
    for _ in 0..CASES {
        let db1 = small_graph_db(&mut rng);
        let db2 = small_graph_db(&mut rng);
        let u = small_tuple(&mut rng);
        let v = small_tuple(&mut rng);
        assert_eq!(
            locally_isomorphic(&db1, &u, &db2, &v),
            locally_isomorphic(&db2, &v, &db1, &u)
        );
    }
}

#[test]
fn lociso_transitive() {
    let mut rng = rng_for("lociso_transitive");
    for _ in 0..CASES {
        let db = small_graph_db(&mut rng);
        let u = small_tuple(&mut rng);
        let v = small_tuple(&mut rng);
        let w = small_tuple(&mut rng);
        if locally_equivalent(&db, &u, &v) && locally_equivalent(&db, &v, &w) {
            assert!(locally_equivalent(&db, &u, &w));
        }
    }
}

/// Atomic-type equality coincides with `≅ₗ` — the classes `Cⁿ` are
/// exactly the fibers of `AtomicType::of` (Prop 2.2 / Prop 2.4).
#[test]
fn atomic_type_iff_lociso() {
    let mut rng = rng_for("atomic_type_iff_lociso");
    for _ in 0..CASES {
        let db1 = small_graph_db(&mut rng);
        let db2 = small_graph_db(&mut rng);
        let u = small_tuple(&mut rng);
        let v = small_tuple(&mut rng);
        assert_eq!(
            AtomicType::of(&db1, &u) == AtomicType::of(&db2, &v),
            locally_isomorphic(&db1, &u, &db2, &v)
        );
    }
}

/// `≅ₗ` is invariant under injective renaming of the tuple (with the
/// graph renamed accordingly).
#[test]
fn lociso_invariant_under_renaming() {
    let mut rng = rng_for("lociso_invariant_under_renaming");
    for _ in 0..CASES {
        let edges = small_edge_set(&mut rng);
        let u = small_tuple(&mut rng);
        let shift = rng.gen_range(1, 50);
        let db = DatabaseBuilder::new("g")
            .relation("E", FiniteRelation::edges(edges.iter().copied()))
            .build();
        let db2 = DatabaseBuilder::new("g+shift")
            .relation(
                "E",
                FiniteRelation::edges(edges.iter().map(|&(a, b)| (a + shift, b + shift))),
            )
            .build();
        let v = u.map(|e| Elem(e.value() + shift));
        assert!(locally_isomorphic(&db, &u, &db2, &v));
    }
}

/// The amalgam of Prop 2.3 is locally isomorphic to both inputs.
#[test]
fn amalgam_locally_isomorphic_to_inputs() {
    let mut rng = rng_for("amalgam_locally_isomorphic_to_inputs");
    for _ in 0..CASES {
        let db1 = small_graph_db(&mut rng);
        let db2 = small_graph_db(&mut rng);
        let u = small_tuple(&mut rng);
        let v = small_tuple(&mut rng);
        let (b3, u3, v3) = amalgamate(&db1, &u, &db2, &v);
        assert!(locally_isomorphic(&db1, &u, &b3, &u3));
        assert!(locally_isomorphic(&db2, &v, &b3, &v3));
    }
}

/// Witnesses round-trip: the type of a witness is the type itself —
/// exhaustively over all 68 rank-2 classes of the ⟨2,1⟩ schema.
#[test]
fn witness_roundtrip() {
    let schema = Schema::new([2, 1]);
    let classes = enumerate_classes(&schema, 2);
    assert_eq!(classes.len(), 68);
    for ty in &classes {
        let (db, u) = ty.witness(&schema);
        assert_eq!(&AtomicType::of(&db, &u), ty);
    }
}

/// Class-union queries are locally generic by construction: the answer
/// depends only on the atomic type.
#[test]
fn class_union_query_answers_by_type() {
    let mut rng = rng_for("class_union_query_answers_by_type");
    for _ in 0..CASES {
        let db1 = small_graph_db(&mut rng);
        let db2 = small_graph_db(&mut rng);
        let u = small_tuple(&mut rng);
        let v = small_tuple(&mut rng);
        let selector: Vec<bool> = (0..10).map(|_| rng.gen_bool()).collect();
        let schema = Schema::new([2]);
        let rank = u.rank();
        let all = enumerate_classes(&schema, rank);
        let chosen: Vec<AtomicType> = all
            .into_iter()
            .enumerate()
            .filter(|(i, _)| selector[i % selector.len()])
            .map(|(_, c)| c)
            .collect();
        let q = ClassUnionQuery::new(schema, rank, chosen);
        if locally_isomorphic(&db1, &u, &db2, &v) {
            assert_eq!(q.contains(&db1, &u), q.contains(&db2, &v));
        }
    }
}

/// Complementation is an involution and partitions membership.
#[test]
fn complement_partitions() {
    let mut rng = rng_for("complement_partitions");
    for _ in 0..CASES {
        let db = small_graph_db(&mut rng);
        let u = small_tuple(&mut rng);
        let schema = Schema::new([2]);
        let rank = u.rank();
        let half: Vec<AtomicType> = enumerate_classes(&schema, rank)
            .into_iter()
            .step_by(2)
            .collect();
        let q = ClassUnionQuery::new(schema, rank, half);
        let c = q.complement().unwrap();
        let (a, b) = (q.contains(&db, &u), c.contains(&db, &u));
        assert_ne!(a.is_member(), b.is_member());
        assert_eq!(c.complement().unwrap(), q);
    }
}

/// `count_classes` agrees with enumeration, exhaustively over small
/// schemas ⟨a1, a2⟩ with a1 ∈ {1,2}, a2 ∈ {0,1} and n ∈ {0,1,2}.
#[test]
fn count_matches_enumeration() {
    for a1 in 1usize..3 {
        for a2 in 0usize..2 {
            for n in 0usize..3 {
                let schema = Schema::new([a1, a2]);
                // Skip astronomically large cases the enumerator
                // guards against.
                let count = count_classes(&schema, n);
                if count < 5000 {
                    assert_eq!(count, enumerate_classes(&schema, n).len() as u128);
                }
            }
        }
    }
}

/// Equality patterns are restricted-growth strings.
#[test]
fn equality_pattern_is_rgs() {
    let mut rng = rng_for("equality_pattern_is_rgs");
    for _ in 0..CASES {
        let u = small_tuple(&mut rng);
        let pat = u.equality_pattern();
        let mut maxv: Option<usize> = None;
        for &p in &pat {
            match maxv {
                None => assert_eq!(p, 0),
                Some(m) => assert!(p <= m + 1),
            }
            maxv = Some(maxv.map_or(0, |m| m.max(p)));
        }
    }
}

/// Query outcomes on undefined queries are Undefined on every input.
#[test]
fn undefined_is_total_undefined() {
    let mut rng = rng_for("undefined_is_total_undefined");
    for _ in 0..CASES {
        let db = small_graph_db(&mut rng);
        let u = small_tuple(&mut rng);
        let q = ClassUnionQuery::undefined(Schema::new([2]));
        assert_eq!(q.contains(&db, &u), QueryOutcome::Undefined);
    }
}

mod combinator_props {
    use super::*;
    use recdb_core::{
        complement, intersect, mapped, product, shared, union, FnRelation, RecursiveRelation,
    };

    fn rel_mod(m: u64) -> recdb_core::RelationRef {
        shared(FnRelation::new("mod", 2, move |t| {
            (t[0].value() + t[1].value()) % m == 0
        }))
    }

    /// Boolean-algebra laws of the relation combinators, pointwise —
    /// exhaustive over the moduli, random over the evaluation points.
    #[test]
    fn combinator_laws() {
        let mut rng = rng_for("combinator_laws");
        for m1 in 2u64..6 {
            for m2 in 2u64..6 {
                for _ in 0..8 {
                    let a = rng.gen_range(0, 30);
                    let b = rng.gen_range(0, 30);
                    let t = [Elem(a), Elem(b)];
                    let (r, s) = (rel_mod(m1), rel_mod(m2));
                    // De Morgan.
                    let lhs = complement(shared(union(r.clone(), s.clone())));
                    let rhs =
                        intersect(shared(complement(r.clone())), shared(complement(s.clone())));
                    assert_eq!(lhs.contains(&t), rhs.contains(&t));
                    // Involution.
                    let cc = complement(shared(complement(r.clone())));
                    assert_eq!(cc.contains(&t), r.contains(&t));
                    // Intersection commutes.
                    let i1 = intersect(r.clone(), s.clone());
                    let i2 = intersect(s, r);
                    assert_eq!(i1.contains(&t), i2.contains(&t));
                }
            }
        }
    }

    /// Product membership splits exactly at the arity boundary.
    #[test]
    fn product_split() {
        let mut rng = rng_for("product_split");
        for _ in 0..CASES {
            let m1 = rng.gen_range(2, 6);
            let m2 = rng.gen_range(2, 6);
            let (r, s) = (rel_mod(m1), rel_mod(m2));
            let p = product(r.clone(), s.clone());
            let t: Vec<Elem> = (0..4).map(|_| Elem(rng.gen_range(0, 20))).collect();
            assert_eq!(p.contains(&t), r.contains(&t[..2]) && s.contains(&t[2..]));
        }
    }

    /// Mapped copies are isomorphic: membership is preserved under the
    /// element translation.
    #[test]
    fn mapped_preserves_membership() {
        let mut rng = rng_for("mapped_preserves_membership");
        for _ in 0..CASES {
            let m = rng.gen_range(2, 6);
            let a = rng.gen_range(0, 30);
            let b = rng.gen_range(0, 30);
            let shift = rng.gen_range(1, 50);
            let r = rel_mod(m);
            let copy = mapped(r.clone(), move |e| Elem(e.value().wrapping_sub(shift)));
            let orig = [Elem(a), Elem(b)];
            let image = [Elem(a + shift), Elem(b + shift)];
            assert_eq!(r.contains(&orig), copy.contains(&image));
        }
    }

    /// Sampled iso-pairs are always locally isomorphic, for any
    /// subsampling stride — exhaustive over (keep, rank).
    #[test]
    fn iso_pairs_always_locally_isomorphic() {
        for keep in 1usize..8 {
            for rank in 1usize..3 {
                let schema = Schema::with_names(&["E"], &[2]);
                for p in recdb_core::iso_pairs(&schema, rank, keep) {
                    assert!(locally_isomorphic(
                        &p.left.0, &p.left.1, &p.right.0, &p.right.1
                    ));
                }
            }
        }
    }
}
