//! Property-based tests for the core invariants of §2.

use proptest::prelude::*;
use recdb_core::{
    amalgamate, count_classes, enumerate_classes, locally_equivalent, locally_isomorphic,
    AtomicType, ClassUnionQuery, Database, DatabaseBuilder, FiniteRelation, QueryOutcome, RQuery,
    Schema, Tuple,
};

/// Strategy: a small finite graph database over elements 0..6.
fn small_graph_db() -> impl Strategy<Value = Database> {
    proptest::collection::btree_set((0u64..6, 0u64..6), 0..12).prop_map(|edges| {
        DatabaseBuilder::new("g")
            .relation("E", FiniteRelation::edges(edges))
            .build()
    })
}

/// Strategy: a tuple of rank 0..4 over elements 0..6.
fn small_tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(0u64..6, 0..4).prop_map(Tuple::from_values)
}

proptest! {
    /// `≅ₗ` is reflexive.
    #[test]
    fn lociso_reflexive(db in small_graph_db(), u in small_tuple()) {
        prop_assert!(locally_equivalent(&db, &u, &u));
    }

    /// `≅ₗ` is symmetric (across two databases).
    #[test]
    fn lociso_symmetric(
        db1 in small_graph_db(),
        db2 in small_graph_db(),
        u in small_tuple(),
        v in small_tuple(),
    ) {
        prop_assert_eq!(
            locally_isomorphic(&db1, &u, &db2, &v),
            locally_isomorphic(&db2, &v, &db1, &u)
        );
    }

    /// `≅ₗ` is transitive.
    #[test]
    fn lociso_transitive(
        db in small_graph_db(),
        u in small_tuple(),
        v in small_tuple(),
        w in small_tuple(),
    ) {
        if locally_equivalent(&db, &u, &v) && locally_equivalent(&db, &v, &w) {
            prop_assert!(locally_equivalent(&db, &u, &w));
        }
    }

    /// Atomic-type equality coincides with `≅ₗ` — the classes `Cⁿ` are
    /// exactly the fibers of `AtomicType::of` (Prop 2.2 / Prop 2.4).
    #[test]
    fn atomic_type_iff_lociso(
        db1 in small_graph_db(),
        db2 in small_graph_db(),
        u in small_tuple(),
        v in small_tuple(),
    ) {
        prop_assert_eq!(
            AtomicType::of(&db1, &u) == AtomicType::of(&db2, &v),
            locally_isomorphic(&db1, &u, &db2, &v)
        );
    }

    /// `≅ₗ` is invariant under injective renaming of the tuple (with
    /// the graph renamed accordingly).
    #[test]
    fn lociso_invariant_under_renaming(
        edges in proptest::collection::btree_set((0u64..6, 0u64..6), 0..12),
        u in small_tuple(),
        shift in 1u64..50,
    ) {
        let db = DatabaseBuilder::new("g")
            .relation("E", FiniteRelation::edges(edges.iter().copied()))
            .build();
        let db2 = DatabaseBuilder::new("g+shift")
            .relation(
                "E",
                FiniteRelation::edges(edges.iter().map(|&(a, b)| (a + shift, b + shift))),
            )
            .build();
        let v = u.map(|e| recdb_core::Elem(e.value() + shift));
        prop_assert!(locally_isomorphic(&db, &u, &db2, &v));
    }

    /// The amalgam of Prop 2.3 is locally isomorphic to both inputs.
    #[test]
    fn amalgam_locally_isomorphic_to_inputs(
        db1 in small_graph_db(),
        db2 in small_graph_db(),
        u in small_tuple(),
        v in small_tuple(),
    ) {
        let (b3, u3, v3) = amalgamate(&db1, &u, &db2, &v);
        prop_assert!(locally_isomorphic(&db1, &u, &b3, &u3));
        prop_assert!(locally_isomorphic(&db2, &v, &b3, &v3));
    }

    /// Witnesses round-trip: the type of a witness is the type itself.
    #[test]
    fn witness_roundtrip(idx in 0usize..68) {
        let schema = Schema::new([2, 1]);
        let classes = enumerate_classes(&schema, 2);
        prop_assert_eq!(classes.len(), 68);
        let ty = &classes[idx];
        let (db, u) = ty.witness(&schema);
        prop_assert_eq!(&AtomicType::of(&db, &u), ty);
    }

    /// Class-union queries are locally generic by construction: the
    /// answer depends only on the atomic type.
    #[test]
    fn class_union_query_answers_by_type(
        db1 in small_graph_db(),
        db2 in small_graph_db(),
        u in small_tuple(),
        v in small_tuple(),
        selector in proptest::collection::vec(any::<bool>(), 10),
    ) {
        let schema = Schema::new([2]);
        let rank = u.rank();
        let all = enumerate_classes(&schema, rank);
        let chosen: Vec<AtomicType> = all
            .into_iter()
            .enumerate()
            .filter(|(i, _)| selector.get(i % selector.len().max(1)).copied().unwrap_or(false))
            .map(|(_, c)| c)
            .collect();
        let q = ClassUnionQuery::new(schema, rank, chosen);
        if locally_isomorphic(&db1, &u, &db2, &v) {
            prop_assert_eq!(q.contains(&db1, &u), q.contains(&db2, &v));
        }
    }

    /// Complementation is an involution and partitions membership.
    #[test]
    fn complement_partitions(db in small_graph_db(), u in small_tuple()) {
        let schema = Schema::new([2]);
        let rank = u.rank();
        let half: Vec<AtomicType> = enumerate_classes(&schema, rank)
            .into_iter()
            .step_by(2)
            .collect();
        let q = ClassUnionQuery::new(schema, rank, half);
        let c = q.complement().unwrap();
        let (a, b) = (q.contains(&db, &u), c.contains(&db, &u));
        prop_assert_ne!(a.is_member(), b.is_member());
        prop_assert_eq!(c.complement().unwrap(), q);
    }

    /// `count_classes` agrees with enumeration for random small schemas.
    #[test]
    fn count_matches_enumeration(
        a1 in 1usize..3,
        a2 in 0usize..2,
        n in 0usize..3,
    ) {
        let schema = Schema::new([a1, a2]);
        // Skip astronomically large cases the enumerator guards against.
        let count = count_classes(&schema, n);
        if count < 5000 {
            prop_assert_eq!(count, enumerate_classes(&schema, n).len() as u128);
        }
    }

    /// Equality patterns are restricted-growth strings.
    #[test]
    fn equality_pattern_is_rgs(u in small_tuple()) {
        let pat = u.equality_pattern();
        let mut maxv: Option<usize> = None;
        for &p in &pat {
            match maxv {
                None => prop_assert_eq!(p, 0),
                Some(m) => prop_assert!(p <= m + 1),
            }
            maxv = Some(maxv.map_or(0, |m| m.max(p)));
        }
    }

    /// Query outcomes on undefined queries are Undefined on every input.
    #[test]
    fn undefined_is_total_undefined(db in small_graph_db(), u in small_tuple()) {
        let q = ClassUnionQuery::undefined(Schema::new([2]));
        prop_assert_eq!(q.contains(&db, &u), QueryOutcome::Undefined);
    }
}

mod combinator_props {
    use super::*;
    use recdb_core::{
        complement, intersect, mapped, product, shared, union, FnRelation, RecursiveRelation,
    };

    fn rel_mod(m: u64) -> recdb_core::RelationRef {
        shared(FnRelation::new("mod", 2, move |t| {
            (t[0].value() + t[1].value()) % m == 0
        }))
    }

    proptest! {
        /// Boolean-algebra laws of the relation combinators, pointwise.
        #[test]
        fn combinator_laws(
            m1 in 2u64..6,
            m2 in 2u64..6,
            a in 0u64..30,
            b in 0u64..30,
        ) {
            let t = [recdb_core::Elem(a), recdb_core::Elem(b)];
            let (r, s) = (rel_mod(m1), rel_mod(m2));
            // De Morgan.
            let lhs = complement(shared(union(r.clone(), s.clone())));
            let rhs = intersect(
                shared(complement(r.clone())),
                shared(complement(s.clone())),
            );
            prop_assert_eq!(lhs.contains(&t), rhs.contains(&t));
            // Involution.
            let cc = complement(shared(complement(r.clone())));
            prop_assert_eq!(cc.contains(&t), r.contains(&t));
            // Intersection commutes.
            let i1 = intersect(r.clone(), s.clone());
            let i2 = intersect(s, r);
            prop_assert_eq!(i1.contains(&t), i2.contains(&t));
        }

        /// Product membership splits exactly at the arity boundary.
        #[test]
        fn product_split(
            m1 in 2u64..6,
            m2 in 2u64..6,
            vals in proptest::collection::vec(0u64..20, 4),
        ) {
            let (r, s) = (rel_mod(m1), rel_mod(m2));
            let p = product(r.clone(), s.clone());
            let t: Vec<recdb_core::Elem> = vals.iter().map(|&v| recdb_core::Elem(v)).collect();
            prop_assert_eq!(
                p.contains(&t),
                r.contains(&t[..2]) && s.contains(&t[2..])
            );
        }

        /// Mapped copies are isomorphic: membership is preserved under
        /// the element translation.
        #[test]
        fn mapped_preserves_membership(
            m in 2u64..6,
            a in 0u64..30,
            b in 0u64..30,
            shift in 1u64..50,
        ) {
            let r = rel_mod(m);
            let copy = mapped(r.clone(), move |e| {
                recdb_core::Elem(e.value().wrapping_sub(shift))
            });
            let orig = [recdb_core::Elem(a), recdb_core::Elem(b)];
            let image = [recdb_core::Elem(a + shift), recdb_core::Elem(b + shift)];
            prop_assert_eq!(r.contains(&orig), copy.contains(&image));
        }

        /// Sampled iso-pairs are always locally isomorphic, for any
        /// subsampling stride.
        #[test]
        fn iso_pairs_always_locally_isomorphic(keep in 1usize..8, rank in 1usize..3) {
            let schema = Schema::with_names(&["E"], &[2]);
            for p in recdb_core::iso_pairs(&schema, rank, keep) {
                prop_assert!(locally_isomorphic(
                    &p.left.0, &p.left.1, &p.right.0, &p.right.1
                ));
            }
        }
    }
}
