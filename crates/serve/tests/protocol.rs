//! Deterministic protocol suite: every admission verdict path, the
//! cache paths, malformed input, oversized bodies, and mid-request
//! connection drops — ephemeral ports, fixed seeds, no sleeps.

use recdb_core::SplitMix64;
use recdb_qlhs::Permutation;
use recdb_serve::client::Conn;
use recdb_serve::{ServeConfig, Server};

fn server() -> Server {
    Server::start(ServeConfig {
        verify_hits: true,
        read_timeout_ms: 200,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

fn conn(s: &Server) -> Conn {
    Conn::connect(s.addr()).expect("connect")
}

fn finite_query(program: &str, edges: &str, extra: &str) -> String {
    format!(
        r#"{{"program":"{program}","db":{{"kind":"finite","universe":[0,1,2,3,4],"relations":[{{"arity":2,"tuples":[{edges}]}}]}}{extra}}}"#
    )
}

#[test]
fn health_and_unknown_routes() {
    let s = server();
    let mut c = conn(&s);
    let r = c.get("/v1/health").unwrap();
    assert_eq!((r.status, r.body.as_str()), (200, "{\"status\":\"ok\"}"));
    assert_eq!(c.get("/v1/nope").unwrap().status, 404);
    assert_eq!(c.post("/v1/health", "{}").unwrap().status, 405);
}

#[test]
fn exact_admission_runs_under_proved_budget() {
    let s = server();
    let mut c = conn(&s);
    let r = c
        .post("/v1/query", &finite_query("Y1 := R1;", "[0,1],[1,2]", ""))
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"mode\":\"exact\""), "{}", r.body);
    assert!(
        r.body
            .contains("\"result\":{\"rank\":2,\"tuples\":[[0,1],[1,2]]}"),
        "{}",
        r.body
    );
}

#[test]
fn cost_bounded_programs_run_within_their_work_caps() {
    let s = server();
    let mut c = conn(&s);
    // Cost-bounded programs are admitted with a hard work cap
    // (the §11 polynomial instantiated at this slice); a sound bound
    // never trips on the actual run, so these must all be 200s.
    for prog in [
        "Y1 := E & R1;",
        "Y1 := up(down(R1)); Y2 := Y1 & R1;",
        "Y1 := !R1 & R1;",
    ] {
        let r = c
            .post("/v1/query", &finite_query(prog, "[0,1],[1,2],[2,3]", ""))
            .unwrap();
        assert_eq!(r.status, 200, "{prog}: {}", r.body);
        assert!(!r.body.contains("work-exceeded"), "{prog}: {}", r.body);
    }
}

#[test]
fn unknown_termination_runs_under_fuel() {
    let s = server();
    let mut c = conn(&s);
    let r = c
        .post(
            "/v1/query",
            &finite_query(
                "Y2 := R1; while empty(Y3) { Y3 := Y2; }",
                "[0,1]",
                ",\"fuel\":10000",
            ),
        )
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"mode\":\"fuel\""), "{}", r.body);
    assert!(
        r.body.contains("\"cache\":\"off\""),
        "unproved ⇒ uncached: {}",
        r.body
    );
}

#[test]
fn fuel_exhaustion_preempts_with_408() {
    let s = server();
    let mut c = conn(&s);
    // R2 is empty at runtime but statically opaque: fuel-mode, never
    // exits, stopped by the 300-tick budget.
    let body = r#"{"program":"while empty(Y3) { Y3 := R2; }","db":{"kind":"finite","universe":[0,1],"relations":[{"arity":2,"tuples":[[0,1]]},{"arity":2,"tuples":[]}]},"fuel":300}"#;
    let r = c.post("/v1/query", body).unwrap();
    assert_eq!(r.status, 408, "{}", r.body);
    assert!(
        r.body.contains("\"reason\":\"fuel-exhausted\""),
        "{}",
        r.body
    );
    assert!(r.body.contains("\"fuel\":300"), "{}", r.body);
}

#[test]
fn provable_divergence_rejects_with_span_diagnostics() {
    let s = server();
    let mut c = conn(&s);
    let r = c
        .post(
            "/v1/query",
            &finite_query("while empty(Y2) { Y3 := E; }", "[0,1]", ""),
        )
        .unwrap();
    assert_eq!(r.status, 422, "{}", r.body);
    assert!(r.body.contains("\"reasons\":[\"diverges\"]"), "{}", r.body);
    assert!(r.body.contains("\"line\":1"), "span-resolved: {}", r.body);
}

#[test]
fn dialect_unsafety_rejects() {
    let s = server();
    let mut c = conn(&s);
    let r = c
        .post(
            "/v1/query",
            &finite_query("while single(Y1) { Y1 := E; }", "[0,1]", ""),
        )
        .unwrap();
    assert_eq!(r.status, 422, "{}", r.body);
    assert!(r.body.contains("\"unsafe\""), "{}", r.body);
}

#[test]
fn parse_errors_reject_with_line_col() {
    let s = server();
    let mut c = conn(&s);
    let r = c
        .post("/v1/query", &finite_query("Y1 := ;", "[0,1]", ""))
        .unwrap();
    assert_eq!(r.status, 422, "{}", r.body);
    assert!(r.body.contains("\"parse-error\""), "{}", r.body);
    assert!(r.body.contains("\"line\":1"), "{}", r.body);
}

#[test]
fn cache_misses_then_hits_across_the_orbit() {
    let s = server();
    let mut c = conn(&s);
    let miss = c
        .post(
            "/v1/query",
            &finite_query("Y1 := R1;", "[0,1],[1,2],[2,3]", ""),
        )
        .unwrap();
    assert_eq!(miss.status, 200, "{}", miss.body);
    assert!(miss.body.contains("\"cache\":\"miss\""), "{}", miss.body);
    assert_eq!(s.cache_len(), 1);

    // The same slice again: a verified hit (verify_hits is on).
    let hit = c
        .post(
            "/v1/query",
            &finite_query("Y1 := R1;", "[0,1],[1,2],[2,3]", ""),
        )
        .unwrap();
    assert!(hit.body.contains("\"cache\":\"hit\""), "{}", hit.body);
    // Identical slice ⇒ identical result bytes.
    let result = |b: &str| b.split("\"result\":").nth(1).map(str::to_string);
    assert_eq!(result(&miss.body), result(&hit.body));

    // A relabeled copy (π = seeded random permutation) is the same
    // ≅-orbit: still a hit, with the answer transported back through
    // π⁻¹ — and differentially verified against fresh evaluation.
    let mut rng = SplitMix64::seed_from_u64(42);
    let p = Permutation::random(&mut rng, 5);
    let edges: Vec<String> = [(0u64, 1u64), (1, 2), (2, 3)]
        .iter()
        .map(|&(a, b)| {
            format!(
                "[{},{}]",
                p.apply(recdb_core::Elem(a)).value(),
                p.apply(recdb_core::Elem(b)).value()
            )
        })
        .collect();
    let relabeled = c
        .post(
            "/v1/query",
            &finite_query("Y1 := R1;", &edges.join(","), ""),
        )
        .unwrap();
    assert_eq!(relabeled.status, 200, "{}", relabeled.body);
    assert!(
        relabeled.body.contains("\"cache\":\"hit\""),
        "same orbit must hit: {}",
        relabeled.body
    );
    assert_eq!(s.cache_len(), 1, "one orbit, one entry");

    // Opting out bypasses the cache entirely.
    let off = c
        .post(
            "/v1/query",
            &finite_query("Y1 := R1;", "[0,1],[1,2],[2,3]", ",\"no_cache\":true"),
        )
        .unwrap();
    assert!(off.body.contains("\"cache\":\"off\""), "{}", off.body);
}

#[test]
fn oversized_orbits_bypass_the_cache() {
    let s = server();
    let mut c = conn(&s);
    // 10 universe elements, no fixed constants: > MAX_CANON_FREE.
    let body = r#"{"program":"Y1 := R1;","db":{"kind":"finite","universe":[0,1,2,3,4,5,6,7,8,9],"relations":[{"arity":2,"tuples":[[0,1]]}]}}"#;
    let r = c.post("/v1/query", body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"cache\":\"bypass\""), "{}", r.body);
    assert_eq!(s.cache_len(), 0);
}

#[test]
fn family_and_fcf_slices_are_descriptor_cached() {
    let s = server();
    let mut c = conn(&s);
    let fam = r#"{"program":"Y1 := R1;","db":{"kind":"family","name":"clique"}}"#;
    let first = c.post("/v1/query", fam).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert!(first.body.contains("\"cache\":\"miss\""), "{}", first.body);
    let second = c.post("/v1/query", fam).unwrap();
    assert!(second.body.contains("\"cache\":\"hit\""), "{}", second.body);

    let fcf = r#"{"program":"Y1 := R1;","db":{"kind":"fcf","relations":[{"cofinite":{"arity":1,"exceptions":[[2]]}}]}}"#;
    let f1 = c.post("/v1/query", fcf).unwrap();
    assert_eq!(f1.status, 200, "{}", f1.body);
    assert!(f1.body.contains("\"finite\":false"), "{}", f1.body);
    let f2 = c.post("/v1/query", fcf).unwrap();
    assert!(f2.body.contains("\"cache\":\"hit\""), "{}", f2.body);
}

#[test]
fn runtime_errors_are_422() {
    let s = server();
    let mut c = conn(&s);
    // `up` on a co-finite value is a QLf+ runtime error the static
    // passes cannot rule out — it passes admission, then errors.
    let body = r#"{"program":"Y1 := up(R1);","db":{"kind":"fcf","relations":[{"cofinite":{"arity":1,"exceptions":[[2]]}}]}}"#;
    let r = c.post("/v1/query", body).unwrap();
    assert_eq!(r.status, 422, "{}", r.body);
    assert!(r.body.contains("\"status\":\"error\""), "{}", r.body);
}

#[test]
fn out_of_schema_relations_are_statically_unsafe() {
    let s = server();
    let mut c = conn(&s);
    let r = c
        .post("/v1/query", &finite_query("Y1 := R9;", "[0,1]", ""))
        .unwrap();
    assert_eq!(r.status, 422, "{}", r.body);
    assert!(r.body.contains("\"status\":\"rejected\""), "{}", r.body);
    assert!(r.body.contains("E0002"), "{}", r.body);
}

#[test]
fn malformed_json_and_shapes_are_400() {
    let s = server();
    for bad in [
        "not json at all",
        "{\"program\":42}",
        "{\"program\":\"Y1 := E;\"}", // missing db
        r#"{"program":"Y1 := E;","db":{"kind":"blob"}}"#,
        r#"{"program":"Y1 := E;","db":{"kind":"finite","universe":[0],"relations":[{"arity":2,"tuples":[[0,7]]}]}}"#,
        r#"{"program":"Y1 := E;","dialect":"qlhs","db":{"kind":"finite","universe":[0],"relations":[]}}"#,
    ] {
        let mut c = conn(&s);
        let r = c.post("/v1/query", bad).unwrap();
        assert_eq!(r.status, 400, "{bad} → {}", r.body);
    }
}

#[test]
fn malformed_http_is_400_and_closes() {
    let s = server();
    let mut c = conn(&s);
    c.send_raw(b"GET /v1/health HTTP/2\r\n\r\n").unwrap();
    let r = c.read_response().unwrap();
    assert_eq!(r.status, 400);
    // The server closed the connection; a fresh one still works.
    let mut c2 = conn(&s);
    assert_eq!(c2.get("/v1/health").unwrap().status, 200);
}

#[test]
fn oversized_bodies_are_413() {
    let s = Server::start(ServeConfig {
        max_body: 256,
        read_timeout_ms: 200,
        ..ServeConfig::default()
    })
    .expect("bind");
    let mut c = conn(&s);
    c.send_raw(b"POST /v1/query HTTP/1.1\r\ncontent-length: 5000\r\n\r\n")
        .unwrap();
    let r = c.read_response().unwrap();
    assert_eq!(r.status, 413);
    assert!(r.body.contains("256-byte limit"), "{}", r.body);
}

#[test]
fn mid_request_drops_leave_the_server_healthy() {
    let s = server();
    {
        let mut c = conn(&s);
        // Declares a body, sends half a head, hangs up.
        c.send_raw(b"POST /v1/query HTTP/1.1\r\ncontent-le")
            .unwrap();
    } // dropped here
    {
        let mut c = conn(&s);
        // Declares a 100-byte body, sends 3 bytes, hangs up.
        c.send_raw(b"POST /v1/query HTTP/1.1\r\ncontent-length: 100\r\n\r\nabc")
            .unwrap();
    }
    let mut c = conn(&s);
    assert_eq!(c.get("/v1/health").unwrap().status, 200);
}

#[test]
fn keep_alive_and_connection_close_are_honored() {
    let s = server();
    let mut c = conn(&s);
    for _ in 0..5 {
        assert_eq!(c.get("/v1/health").unwrap().status, 200);
    }
    let r = c.request("GET", "/v1/health", "", true).unwrap();
    assert_eq!(r.status, 200);
    // Server closed after the `Connection: close` exchange.
    assert!(c.get("/v1/health").is_err());
}

#[test]
fn formula_endpoint_evaluates_lminus() {
    let s = server();
    let mut c = conn(&s);
    let body = r#"{"formula":"{(x0,x1) | R1(x0,x1)}","db":{"kind":"finite","universe":[0,1,2],"relations":[{"arity":2,"tuples":[[0,1]]}]},"tuples":[[0,1],[1,0]]}"#;
    let r = c.post("/v1/formula", body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(
        r.body.contains("\"outcomes\":[\"true\",\"false\"]"),
        "{}",
        r.body
    );
}

#[test]
fn quantified_formulas_are_rejected_for_lminus() {
    let s = server();
    let mut c = conn(&s);
    let body = r#"{"formula":"{(x0) | exists x1. R1(x0,x1)}","db":{"kind":"finite","universe":[0,1],"relations":[{"arity":2,"tuples":[[0,1]]}]},"tuples":[[0]]}"#;
    let r = c.post("/v1/formula", body).unwrap();
    assert_eq!(r.status, 422, "{}", r.body);
}

/// An `/v1/ra` body over the graph schema `E(x, y)`.
fn ra_query(query: &str, edges: &str, extra: &str) -> String {
    format!(
        r#"{{"query":"{query}","schema":"E(x, y)","db":{{"kind":"finite","universe":[0,1,2,3,4],"relations":[{{"arity":2,"tuples":[{edges}]}}]}}{extra}}}"#
    )
}

#[test]
fn ra_endpoint_compiles_and_runs_end_to_end() {
    let s = server();
    let mut c = conn(&s);
    // π_y(E ⋈ ρ_{x→y,y→z}(E)): targets of length-2 paths.
    let r = c
        .post(
            "/v1/ra",
            &ra_query(
                "project #z (E join rename #x -> #y, #y -> #z (E))",
                "[0,1],[1,2],[2,3]",
                "",
            ),
        )
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.starts_with("{\"attrs\":[\"z\"],"), "{}", r.body);
    assert!(r.body.contains("\"mode\":\"exact\""), "{}", r.body);
    assert!(
        r.body
            .contains("\"result\":{\"rank\":1,\"tuples\":[[2],[3]]}"),
        "{}",
        r.body
    );
    assert_eq!(c.post("/v1/ra", "{}").unwrap().status, 400);
    assert_eq!(c.get("/v1/ra").unwrap().status, 405);
}

#[test]
fn ra_validator_rejection_is_422_with_span() {
    let s = server();
    let mut c = conn(&s);
    // A bare complement: rejected at validation, never compiled.
    let r = c
        .post("/v1/ra", &ra_query("E union not (E)", "[0,1]", ""))
        .unwrap();
    assert_eq!(r.status, 422, "{}", r.body);
    assert!(r.body.contains("\"code\":\"RA05\""), "{}", r.body);
    assert!(r.body.contains("\"reasons\":[\"ra-unsafe\"]"), "{}", r.body);
    assert!(
        r.body.contains("\"line\":1,\"col\":9"),
        "span resolves to the complement: {}",
        r.body
    );

    // A type error: unknown attribute, rejected with its code.
    let r = c
        .post("/v1/ra", &ra_query("project #nope (E)", "[0,1]", ""))
        .unwrap();
    assert_eq!(r.status, 422, "{}", r.body);
    assert!(r.body.contains("\"code\":\"RA02\""), "{}", r.body);
    assert!(r.body.contains("\"reasons\":[\"ra-type\"]"), "{}", r.body);

    // An RA parse error carries line/col too.
    let r = c
        .post("/v1/ra", &ra_query("project # (E)", "[0,1]", ""))
        .unwrap();
    assert_eq!(r.status, 422, "{}", r.body);
    assert!(r.body.contains("\"code\":\"PARSE\""), "{}", r.body);
}

#[test]
fn ra_compiled_queries_share_the_query_cache() {
    let s = server();
    let mut c = conn(&s);
    // A constant selection compiles to a `Generic {fixed:{2}}`
    // straight-line program: cacheable, keyed on the fixed orbit.
    let q = || ra_query("select #x = 2 (E)", "[0,1],[2,3]", "");
    let miss = c.post("/v1/ra", &q()).unwrap();
    assert_eq!(miss.status, 200, "{}", miss.body);
    assert!(miss.body.contains("\"cache\":\"miss\""), "{}", miss.body);
    assert_eq!(s.cache_len(), 1);
    let hit = c.post("/v1/ra", &q()).unwrap();
    assert!(hit.body.contains("\"cache\":\"hit\""), "{}", hit.body);
    assert!(
        hit.body
            .contains("\"result\":{\"rank\":2,\"tuples\":[[2,3]]}"),
        "{}",
        hit.body
    );
    assert_eq!(s.cache_len(), 1, "same compiled program, same key");

    // Opting out bypasses the cache.
    let off = c
        .post(
            "/v1/ra",
            &ra_query("select #x = 2 (E)", "[0,1],[2,3]", ",\"no_cache\":true"),
        )
        .unwrap();
    assert!(off.body.contains("\"cache\":\"off\""), "{}", off.body);
}

/// A query the §11 optimizer provably rewrites (projection cascade +
/// selection pushdown through a union) still answers exactly — the
/// `/v1/ra` path runs every query through `optimize_program` before
/// compilation, and the chosen plan must be transparent.
#[test]
fn ra_endpoint_optimizes_plans_transparently() {
    let s = server();
    let mut c = conn(&s);
    let r = c
        .post(
            "/v1/ra",
            &ra_query(
                "project #x (project #x, #y (select #x = 0 (E union E)))",
                "[0,1],[1,2],[0,3]",
                "",
            ),
        )
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(
        r.body.contains("\"result\":{\"rank\":1,\"tuples\":[[0]]}"),
        "{}",
        r.body
    );
}

#[test]
fn concurrent_mixed_load_is_fully_consistent() {
    let s = Server::start(ServeConfig {
        workers: 4,
        verify_hits: true,
        read_timeout_ms: 200,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = s.addr();
    let mut handles = Vec::new();
    for t in 0..8u64 {
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::seed_from_u64(0x5ecd_eb0a ^ t);
            for _ in 0..25 {
                let p = Permutation::random(&mut rng, 5);
                let edges: Vec<String> = (0..4u64)
                    .map(|i| {
                        format!(
                            "[{},{}]",
                            p.apply(recdb_core::Elem(i)).value(),
                            p.apply(recdb_core::Elem(i + 1)).value()
                        )
                    })
                    .collect();
                let body = finite_query("Y1 := R1;", &edges.join(","), "");
                let r = recdb_serve::post_once(addr, "/v1/query", &body).expect("round trip");
                assert_eq!(r.status, 200, "{}", r.body);
                assert!(!r.body.contains("\"violation\""), "{}", r.body);
            }
        }));
    }
    for h in handles {
        h.join().expect("worker thread");
    }
    // Every request was a relabeling of the same path: one orbit,
    // one cache entry, no matter the interleaving.
    assert_eq!(s.cache_len(), 1);
    s.shutdown();
}

#[test]
fn shutdown_joins_with_an_idle_keepalive_connection_open() {
    let s = Server::start(ServeConfig {
        read_timeout_ms: 50,
        ..ServeConfig::default()
    })
    .expect("bind");
    let mut c = conn(&s);
    assert_eq!(c.get("/v1/health").unwrap().status, 200);
    // `c` stays open and idle; shutdown must still join promptly
    // (the worker's read timeout is the bound).
    s.shutdown();
}
