//! The wire protocol: typed request/response shapes over the JSON
//! layer.
//!
//! A query request names a **database slice** (one of four kinds), a
//! **program** in the QL family's concrete syntax, and scheduling
//! knobs. The dialect is determined by the database kind — the pairing
//! the interpreters enforce anyway:
//!
//! | `db.kind`  | backend                    | dialect |
//! |------------|----------------------------|---------|
//! | `finite`   | `FinInterp`                | QL      |
//! | `family`   | `HsInterp` (catalog C_B)   | QLhs    |
//! | `cells`    | `HsInterp` (unary cells)   | QLhs    |
//! | `fcf`      | `FcfInterp`                | QLf+    |
//!
//! An explicit `"dialect"` field is accepted but must agree with the
//! database kind; a mismatch is a protocol error (the alternative —
//! silently running a QLhs program under QL semantics — is exactly the
//! confusion the dialect checker exists to prevent).

use crate::json::Json;
use recdb_core::{CoFiniteRelation, Elem, FiniteStructure, Schema, Tuple};
use recdb_hsdb::{catalog, unary_cells, CellSize, FcfDatabase, FcfRel, HsDatabase};
use recdb_qlhs::{Dialect, FcfVal, Val};
use std::collections::BTreeSet;

/// A protocol-shape error: the JSON parsed, but does not describe a
/// valid request. Reported as HTTP 400.
#[derive(Clone, Debug)]
pub struct BadRequest(pub String);

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn bad(msg: impl Into<String>) -> BadRequest {
    BadRequest(msg.into())
}

/// The database slice a request runs against.
#[derive(Clone, Debug)]
pub enum DbSpec {
    /// A fully materialized finite structure (QL / `FinInterp`).
    Finite(FiniteStructure),
    /// A catalog family by name (QLhs / `HsInterp`), e.g. `"clique"`.
    Family(String),
    /// A unary-cells homogeneous database: each cell is a list of
    /// elements or infinite (QLhs / `HsInterp`).
    Cells(Vec<CellSize>),
    /// A finite/co-finite database (QLf+ / `FcfInterp`).
    Fcf(FcfDatabase),
}

impl DbSpec {
    /// The dialect this database kind pairs with.
    pub fn dialect(&self) -> Dialect {
        match self {
            DbSpec::Finite(_) => Dialect::Ql,
            DbSpec::Family(_) | DbSpec::Cells(_) => Dialect::Qlhs,
            DbSpec::Fcf(_) => Dialect::QlfPlus,
        }
    }

    /// The schema the program is analyzed against.
    pub fn schema(&self) -> Result<Schema, BadRequest> {
        Ok(match self {
            DbSpec::Finite(st) => st.schema().clone(),
            DbSpec::Family(name) => resolve_family(name)
                .ok_or_else(|| bad(format!("unknown catalog family {name:?}")))?
                .schema()
                .clone(),
            DbSpec::Cells(cells) => Schema::new(vec![1usize; cells.len()]),
            DbSpec::Fcf(db) => db.schema(),
        })
    }

    /// A canonical text form of the slice — the *raw* (pre-≅_B)
    /// fingerprint the cache layer starts from. Two requests with equal
    /// descriptors denote the same database.
    pub fn descriptor(&self) -> String {
        match self {
            DbSpec::Finite(st) => {
                let mut s = String::from("finite:");
                s.push_str(&finite_descriptor(st));
                s
            }
            DbSpec::Family(name) => format!("family:{name}"),
            DbSpec::Cells(cells) => {
                let mut s = String::from("cells:");
                for (i, c) in cells.iter().enumerate() {
                    if i > 0 {
                        s.push('|');
                    }
                    match c {
                        CellSize::Infinite => s.push_str("inf"),
                        CellSize::Finite(vals) => {
                            let parts: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
                            s.push_str(&parts.join(","));
                        }
                    }
                }
                s
            }
            DbSpec::Fcf(db) => {
                let mut s = String::from("fcf:");
                for (i, rel) in db.relations().iter().enumerate() {
                    if i > 0 {
                        s.push('|');
                    }
                    let tag = match rel {
                        FcfRel::Finite(_) => "fin",
                        FcfRel::CoFinite(_) => "cof",
                    };
                    s.push_str(&format!("{tag}/{}:", rel.arity()));
                    push_tuples(&mut s, rel.finite_part().iter());
                }
                s
            }
        }
    }
}

fn push_tuples<'a>(s: &mut String, tuples: impl Iterator<Item = &'a Tuple>) {
    for (i, t) in tuples.enumerate() {
        if i > 0 {
            s.push(' ');
        }
        let parts: Vec<String> = t.elems().iter().map(|e| e.value().to_string()).collect();
        s.push('(');
        s.push_str(&parts.join(","));
        s.push(')');
    }
}

/// A plain serialization of a finite structure: universe then
/// relations, all sorted (the input orders are already canonical).
pub fn finite_descriptor(st: &FiniteStructure) -> String {
    let mut s = String::new();
    s.push_str(&format!("a{:?};u", st.schema().arities()));
    let parts: Vec<String> = st
        .universe()
        .iter()
        .map(|e| e.value().to_string())
        .collect();
    s.push_str(&parts.join(","));
    for i in 0..st.schema().len() {
        s.push_str(";r");
        push_tuples(&mut s, st.relation(i).iter());
    }
    s
}

/// Looks up a catalog family by its stable name.
pub fn resolve_family(name: &str) -> Option<HsDatabase> {
    catalog()
        .into_iter()
        .find(|e| e.info.name == name)
        .map(|e| e.hs)
}

/// One `/v1/query` request, decoded and validated.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// Opaque tenant label (metrics/log dimension only; admission and
    /// caching are deliberately tenant-blind — the cache is
    /// cross-tenant by design).
    pub tenant: String,
    /// The program, in the family's concrete syntax.
    pub program: String,
    /// The database slice.
    pub db: DbSpec,
    /// Requested fuel budget (clamped to the server's maximum).
    pub fuel: Option<u64>,
    /// Opt out of the result cache for this request.
    pub no_cache: bool,
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, BadRequest> {
    obj.get(key)
        .ok_or_else(|| bad(format!("missing field {key:?}")))
}

fn str_field(obj: &Json, key: &str) -> Result<String, BadRequest> {
    field(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| bad(format!("field {key:?} must be a string")))
}

fn u64_array(j: &Json, what: &str) -> Result<Vec<u64>, BadRequest> {
    j.as_arr()
        .ok_or_else(|| bad(format!("{what} must be an array")))?
        .iter()
        .map(|x| {
            x.as_u64()
                .ok_or_else(|| bad(format!("{what} must contain integers")))
        })
        .collect()
}

fn tuple_array(j: &Json, what: &str) -> Result<Vec<Tuple>, BadRequest> {
    j.as_arr()
        .ok_or_else(|| bad(format!("{what} must be an array of tuples")))?
        .iter()
        .map(|t| Ok(Tuple::from_values(u64_array(t, what)?)))
        .collect()
}

impl QueryRequest {
    /// Decodes and validates a request body.
    pub fn decode(body: &Json) -> Result<Self, BadRequest> {
        let program = str_field(body, "program")?;
        let db = decode_db(field(body, "db")?)?;
        if let Some(d) = body.get("dialect") {
            let name = d
                .as_str()
                .ok_or_else(|| bad("field \"dialect\" must be a string"))?;
            let declared = match name {
                "ql" => Dialect::Ql,
                "qlhs" => Dialect::Qlhs,
                "qlf+" => Dialect::QlfPlus,
                other => return Err(bad(format!("unknown dialect {other:?}"))),
            };
            if declared != db.dialect() {
                return Err(bad(format!(
                    "dialect {name:?} does not match the database kind (expected {:?})",
                    db.dialect().name()
                )));
            }
        }
        let fuel = match body.get("fuel") {
            None => None,
            Some(f) => Some(
                f.as_u64()
                    .ok_or_else(|| bad("field \"fuel\" must be an integer"))?,
            ),
        };
        let no_cache = match body.get("no_cache") {
            None => false,
            Some(b) => b
                .as_bool()
                .ok_or_else(|| bad("field \"no_cache\" must be a boolean"))?,
        };
        Ok(QueryRequest {
            tenant: body
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or("anonymous")
                .to_string(),
            program,
            db,
            fuel,
            no_cache,
        })
    }
}

/// Decodes a `db` object into a validated [`DbSpec`].
pub fn decode_db(j: &Json) -> Result<DbSpec, BadRequest> {
    let kind = str_field(j, "kind")?;
    match kind.as_str() {
        "finite" => decode_finite(j).map(DbSpec::Finite),
        "family" => {
            let name = str_field(j, "name")?;
            if resolve_family(&name).is_none() {
                return Err(bad(format!("unknown catalog family {name:?}")));
            }
            Ok(DbSpec::Family(name))
        }
        "cells" => decode_cells(j).map(DbSpec::Cells),
        "fcf" => decode_fcf(j).map(DbSpec::Fcf),
        other => Err(bad(format!("unknown db kind {other:?}"))),
    }
}

/// Decodes and validates a finite structure — every check
/// `FiniteStructure::new` would enforce by panicking is performed here
/// first, so untrusted input can never panic a worker.
pub fn decode_finite(j: &Json) -> Result<FiniteStructure, BadRequest> {
    let universe = u64_array(field(j, "universe")?, "\"universe\"")?;
    let uset: BTreeSet<u64> = universe.iter().copied().collect();
    let rels = field(j, "relations")?
        .as_arr()
        .ok_or_else(|| bad("field \"relations\" must be an array"))?;
    let mut arities = Vec::with_capacity(rels.len());
    let mut relations = Vec::with_capacity(rels.len());
    for (i, r) in rels.iter().enumerate() {
        let arity = field(r, "arity")?
            .as_u64()
            .ok_or_else(|| bad("relation arity must be an integer"))? as usize;
        if arity > 8 {
            return Err(bad(format!(
                "relation {i}: arity {arity} exceeds the limit of 8"
            )));
        }
        let tuples = tuple_array(field(r, "tuples")?, "relation tuples")?;
        let mut set: BTreeSet<Tuple> = BTreeSet::new();
        for t in tuples {
            if t.rank() != arity {
                return Err(bad(format!(
                    "relation {i}: tuple of rank {} in a relation of arity {arity}",
                    t.rank()
                )));
            }
            if let Some(e) = t.elems().iter().find(|e| !uset.contains(&e.value())) {
                return Err(bad(format!(
                    "relation {i}: tuple mentions {e} outside the universe"
                )));
            }
            set.insert(t);
        }
        arities.push(arity);
        relations.push(set);
    }
    Ok(FiniteStructure::new(
        Schema::new(arities),
        universe.into_iter().map(Elem),
        relations,
    ))
}

fn decode_cells(j: &Json) -> Result<Vec<CellSize>, BadRequest> {
    let arr = field(j, "cells")?
        .as_arr()
        .ok_or_else(|| bad("field \"cells\" must be an array"))?;
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut cells = Vec::with_capacity(arr.len());
    for c in arr {
        match c {
            Json::Str(s) if s == "inf" => cells.push(CellSize::Infinite),
            Json::Arr(_) => {
                let vals = u64_array(c, "a finite cell")?;
                for &v in &vals {
                    if !seen.insert(v) {
                        return Err(bad(format!("element {v} appears in two finite cells")));
                    }
                }
                cells.push(CellSize::Finite(vals));
            }
            _ => return Err(bad("cells must be integer arrays or \"inf\"")),
        }
    }
    if cells.is_empty() {
        return Err(bad("a cells database needs at least one cell"));
    }
    Ok(cells)
}

fn decode_fcf(j: &Json) -> Result<FcfDatabase, BadRequest> {
    let arr = field(j, "relations")?
        .as_arr()
        .ok_or_else(|| bad("field \"relations\" must be an array"))?;
    let mut rels = Vec::with_capacity(arr.len());
    for (i, r) in arr.iter().enumerate() {
        let (inner, cofinite) = match (r.get("finite"), r.get("cofinite")) {
            (Some(x), None) => (x, false),
            (None, Some(x)) => (x, true),
            _ => {
                return Err(bad(format!(
                    "fcf relation {i} must have exactly one of \"finite\"/\"cofinite\""
                )))
            }
        };
        let arity = field(inner, "arity")?
            .as_u64()
            .ok_or_else(|| bad("relation arity must be an integer"))? as usize;
        if arity > 8 {
            return Err(bad(format!(
                "relation {i}: arity {arity} exceeds the limit of 8"
            )));
        }
        let key = if cofinite { "exceptions" } else { "tuples" };
        let tuples = tuple_array(field(inner, key)?, key)?;
        if let Some(t) = tuples.iter().find(|t| t.rank() != arity) {
            return Err(bad(format!(
                "relation {i}: tuple of rank {} in a relation of arity {arity}",
                t.rank()
            )));
        }
        rels.push(if cofinite {
            FcfRel::CoFinite(CoFiniteRelation::new(arity, tuples))
        } else {
            FcfRel::Finite(recdb_core::FiniteRelation::new(arity, tuples))
        });
    }
    Ok(FcfDatabase::new("wire", rels))
}

/// Builds the `HsDatabase` a QLhs-kind spec denotes. `None` only for
/// non-QLhs specs.
pub fn build_hs(db: &DbSpec) -> Option<HsDatabase> {
    match db {
        DbSpec::Family(name) => resolve_family(name),
        DbSpec::Cells(cells) => Some(unary_cells(cells.clone())),
        _ => None,
    }
}

/// Renders a finite-relation value deterministically:
/// `{"rank":r,"tuples":[[…],…]}` (tuples in `BTreeSet` order).
pub fn result_json(v: &Val) -> String {
    let mut s = format!("{{\"rank\":{},\"tuples\":[", v.rank);
    for (i, t) in v.tuples.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_tuple_json(&mut s, t);
    }
    s.push_str("]}");
    s
}

/// Renders an fcf value deterministically: `finite` says whether
/// `tuples` is the relation itself or its complement.
pub fn fcf_result_json(v: &FcfVal) -> String {
    let mut s = format!("{{\"finite\":{},\"rank\":{},\"tuples\":[", v.finite, v.rank);
    for (i, t) in v.tuples.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_tuple_json(&mut s, t);
    }
    s.push_str("]}");
    s
}

fn push_tuple_json(s: &mut String, t: &Tuple) {
    s.push('[');
    for (i, e) in t.elems().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&e.value().to_string());
    }
    s.push(']');
}

/// One `/v1/ra` request: a relational-algebra query, compiled to a
/// straight-line QLhs program server-side and then executed exactly
/// like a `/v1/query` program (same admission, same cache).
#[derive(Clone, Debug)]
pub struct RaRequest {
    /// Opaque tenant label (metrics/log dimension only).
    pub tenant: String,
    /// The RA program, in `recdb-ra` concrete syntax.
    pub query: String,
    /// The named-attribute schema, compact form `R(a, b); S(b, c)`.
    pub schema: String,
    /// The finite slice to run against. RA's active-domain semantics
    /// needs a materialized universe, so only `kind:"finite"`.
    pub db: FiniteStructure,
    /// Requested fuel budget (clamped to the server's maximum).
    pub fuel: Option<u64>,
    /// Opt out of the result cache for this request.
    pub no_cache: bool,
}

impl RaRequest {
    /// Decodes and validates a request body.
    pub fn decode(body: &Json) -> Result<Self, BadRequest> {
        let query = str_field(body, "query")?;
        let schema = str_field(body, "schema")?;
        let dbj = field(body, "db")?;
        let db = match decode_db(dbj)? {
            DbSpec::Finite(st) => st,
            _ => return Err(bad("/v1/ra runs over finite slices only")),
        };
        let fuel = match body.get("fuel") {
            None => None,
            Some(f) => Some(
                f.as_u64()
                    .ok_or_else(|| bad("field \"fuel\" must be an integer"))?,
            ),
        };
        let no_cache = match body.get("no_cache") {
            None => false,
            Some(b) => b
                .as_bool()
                .ok_or_else(|| bad("field \"no_cache\" must be a boolean"))?,
        };
        Ok(RaRequest {
            tenant: body
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or("anonymous")
                .to_string(),
            query,
            schema,
            db,
            fuel,
            no_cache,
        })
    }
}

/// One `/v1/formula` request: an L⁻ query against a finite slice, plus
/// the tuples whose membership is asked.
#[derive(Clone, Debug)]
pub struct FormulaRequest {
    /// The L⁻ source text.
    pub formula: String,
    /// The finite structure to evaluate on.
    pub db: FiniteStructure,
    /// Tuples to test for membership.
    pub tuples: Vec<Tuple>,
}

impl FormulaRequest {
    /// Decodes and validates a formula request body.
    pub fn decode(body: &Json) -> Result<Self, BadRequest> {
        let db_field = field(body, "db")?;
        let db = match decode_db(db_field)? {
            DbSpec::Finite(st) => st,
            _ => return Err(bad("formula evaluation requires a finite db")),
        };
        Ok(FormulaRequest {
            formula: str_field(body, "formula")?,
            db,
            tuples: tuple_array(field(body, "tuples")?, "\"tuples\"")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn decode_query(src: &str) -> Result<QueryRequest, BadRequest> {
        QueryRequest::decode(&parse(src).unwrap())
    }

    #[test]
    fn finite_requests_decode() {
        let req = decode_query(
            r#"{"program":"Y1 := R1;","db":{"kind":"finite","universe":[0,1,2],
                "relations":[{"arity":2,"tuples":[[0,1],[1,2]]}]},"fuel":500}"#,
        )
        .unwrap();
        assert_eq!(req.db.dialect(), Dialect::Ql);
        assert_eq!(req.fuel, Some(500));
        assert_eq!(req.tenant, "anonymous");
        match &req.db {
            DbSpec::Finite(st) => assert_eq!(st.size(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_tuples_are_protocol_errors_not_panics() {
        for (label, src) in [
            (
                "outside universe",
                r#"{"kind":"finite","universe":[0,1],"relations":[{"arity":2,"tuples":[[0,9]]}]}"#,
            ),
            (
                "rank mismatch",
                r#"{"kind":"finite","universe":[0,1],"relations":[{"arity":2,"tuples":[[0]]}]}"#,
            ),
            (
                "overlapping cells",
                r#"{"kind":"cells","cells":[[0,1],[1,2]]}"#,
            ),
            ("unknown family", r#"{"kind":"family","name":"nope"}"#),
            ("unknown kind", r#"{"kind":"blob"}"#),
        ] {
            assert!(decode_db(&parse(src).unwrap()).is_err(), "{label}");
        }
    }

    #[test]
    fn dialect_must_match_db_kind() {
        let err = decode_query(
            r#"{"program":"Y1 := E;","dialect":"qlhs",
               "db":{"kind":"finite","universe":[0],"relations":[]}}"#,
        );
        assert!(err.is_err());
    }

    #[test]
    fn descriptors_are_canonical() {
        let a = decode_db(
            &parse(r#"{"kind":"finite","universe":[1,0],"relations":[{"arity":1,"tuples":[[1],[0]]}]}"#)
                .unwrap(),
        )
        .unwrap();
        let b = decode_db(
            &parse(r#"{"kind":"finite","universe":[0,1],"relations":[{"arity":1,"tuples":[[0],[1]]}]}"#)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(a.descriptor(), b.descriptor());
    }

    #[test]
    fn result_rendering_is_sorted_and_stable() {
        let v = Val {
            rank: 2,
            tuples: [Tuple::from_values([1, 0]), Tuple::from_values([0, 1])]
                .into_iter()
                .collect(),
        };
        assert_eq!(result_json(&v), r#"{"rank":2,"tuples":[[0,1],[1,0]]}"#);
    }

    #[test]
    fn fcf_specs_decode_both_parts() {
        let db = decode_db(
            &parse(
                r#"{"kind":"fcf","relations":[
                    {"finite":{"arity":1,"tuples":[[3]]}},
                    {"cofinite":{"arity":2,"exceptions":[[1,1]]}}]}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(db.dialect(), Dialect::QlfPlus);
        assert!(db.descriptor().contains("cof/2"));
    }
}
