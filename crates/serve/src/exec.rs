//! The counted executor: the statement layer the server actually runs
//! admitted programs under.
//!
//! Term semantics are delegated to the real interpreters' `eval_term`
//! (`FinInterp`/`HsInterp`/`FcfInterp`) — the server never re-implements
//! value semantics. What the statement layer adds over the plain `run`
//! entry points is *scheduling*:
//!
//! * **budget enforcement** — a proved-`Terminates` admission carries
//!   per-loop bounds and a whole-program iteration budget; exceeding
//!   either at runtime is an **admission soundness violation** (the
//!   static proof was wrong), counted and surfaced as a 500, never
//!   silently absorbed;
//! * **cooperative preemption** — a shared flag checked at every loop
//!   head, so a draining server can stop fuel-mode programs at the
//!   next iteration boundary instead of waiting out their fuel.
//!
//! This mirrors the conformance crate's counting executor (the
//! `TERMINATE-BOUND` differential) — same guard predicates, same fuel
//! ticks — but lives here because the dependency points the other way:
//! the conformance ledger drives *this* server.

use recdb_core::Fuel;
use recdb_qlhs::{Dialect, FcfInterp, FcfVal, FinInterp, HsInterp, Prog, RunError, Term, Val};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// One backend's value operations, as the statement layer needs them.
/// Implemented by all three interpreters; term evaluation is theirs.
pub trait GuardEval {
    /// The value type the backend computes with.
    type V: Clone;
    /// Term evaluation — the real interpreter's `eval_term`.
    fn eval(&mut self, t: &Term, env: &[Self::V], fuel: &mut Fuel) -> Result<Self::V, RunError>;
    /// The value an unassigned variable holds.
    fn unset() -> Self::V;
    /// The `while empty(Y)` guard.
    fn empty_guard(v: Option<&Self::V>) -> bool;
    /// The `while single(Y)` guard (dialect violation where not admitted).
    fn single_guard(v: Option<&Self::V>) -> Result<bool, RunError>;
    /// The `while finite(Y)` guard (dialect violation where not admitted).
    fn finite_guard(v: Option<&Self::V>) -> Result<bool, RunError>;
    /// Stored size of a value — the tuples the backend materializes
    /// for it (finite part *or* stored complement for QLf⁺). This is
    /// the unit the cost pass bounds.
    fn size(v: &Self::V) -> u64;
}

impl GuardEval for FinInterp<'_> {
    type V = Val;
    fn eval(&mut self, t: &Term, env: &[Val], fuel: &mut Fuel) -> Result<Val, RunError> {
        FinInterp::eval_term(self, t, env, fuel)
    }
    fn unset() -> Val {
        Val::empty(0)
    }
    fn empty_guard(v: Option<&Val>) -> bool {
        v.is_none_or(Val::is_empty)
    }
    fn single_guard(_: Option<&Val>) -> Result<bool, RunError> {
        Err(RunError::DialectViolation(
            "while |Y|=1 is a QLhs primitive; in finitary QL it is only definable",
        ))
    }
    fn finite_guard(_: Option<&Val>) -> Result<bool, RunError> {
        Err(RunError::DialectViolation(
            "while |Y|<∞ is a QLf+ construct",
        ))
    }
    fn size(v: &Val) -> u64 {
        v.len() as u64
    }
}

impl GuardEval for HsInterp<'_> {
    type V = Val;
    fn eval(&mut self, t: &Term, env: &[Val], fuel: &mut Fuel) -> Result<Val, RunError> {
        HsInterp::eval_term(self, t, env, fuel)
    }
    fn unset() -> Val {
        Val::empty(0)
    }
    fn empty_guard(v: Option<&Val>) -> bool {
        v.is_none_or(Val::is_empty)
    }
    fn single_guard(v: Option<&Val>) -> Result<bool, RunError> {
        Ok(v.is_some_and(Val::is_singleton))
    }
    fn finite_guard(_: Option<&Val>) -> Result<bool, RunError> {
        Err(RunError::DialectViolation(
            "while |Y|<∞ is a QLf+ construct, not part of QLhs",
        ))
    }
    fn size(v: &Val) -> u64 {
        v.len() as u64
    }
}

impl GuardEval for FcfInterp<'_> {
    type V = FcfVal;
    fn eval(&mut self, t: &Term, env: &[FcfVal], fuel: &mut Fuel) -> Result<FcfVal, RunError> {
        FcfInterp::eval_term(self, t, env, fuel)
    }
    fn unset() -> FcfVal {
        FcfVal::empty(0)
    }
    fn empty_guard(v: Option<&FcfVal>) -> bool {
        v.is_none_or(FcfVal::is_empty_relation)
    }
    fn single_guard(_: Option<&FcfVal>) -> Result<bool, RunError> {
        Err(RunError::DialectViolation(
            "while |Y|=1 is a QLhs primitive, not part of QLf+",
        ))
    }
    fn finite_guard(v: Option<&FcfVal>) -> Result<bool, RunError> {
        Ok(v.is_none_or(|x| x.finite))
    }
    fn size(v: &FcfVal) -> u64 {
        v.tuples.len() as u64
    }
}

/// The scheduling envelope an admitted program runs under.
#[derive(Clone, Debug)]
pub struct Budget<'a> {
    /// Proved per-entry bounds by loop path (empty in fuel mode).
    pub bounds: &'a BTreeMap<Vec<u32>, u64>,
    /// Whole-program iteration cap. In exact mode this is the proved
    /// `Terminates {iterations}` figure; in fuel mode `u64::MAX` (fuel
    /// is the limiter).
    pub total_cap: u64,
    /// The fuel budget for term evaluation and statement ticks.
    pub fuel: u64,
    /// Statically predicted total work (materialized tuples across
    /// all assignments), when the cost pass derived one at this
    /// database's instantiation. Exceeding it is a cost-soundness
    /// violation.
    pub work_cap: Option<u64>,
}

/// How an execution ended.
#[derive(Debug)]
pub enum ExecEnd<V> {
    /// Completed; the payload is `Y1`.
    Done(V),
    /// The interpreter returned a runtime error (fuel exhaustion is
    /// reported separately).
    Errored(RunError),
    /// Fuel ran out — the fuel-mode analogue of preemption.
    OutOfFuel,
    /// The cooperative-preemption flag was raised at a loop head.
    Preempted,
    /// A proved per-loop bound was exceeded — admission soundness
    /// violation.
    BoundExceeded {
        /// The loop's tree path.
        path: Vec<u32>,
        /// The bound it was proved to respect.
        bound: u64,
    },
    /// The proved whole-program budget was exceeded — admission
    /// soundness violation.
    TotalExceeded {
        /// The proved whole-program budget.
        cap: u64,
    },
    /// The statically predicted work bound was exceeded — a
    /// cost-soundness violation (counted as `serve.cost.overrun`).
    WorkExceeded {
        /// The predicted work bound.
        cap: u64,
    },
}

impl<V> ExecEnd<V> {
    /// Is this end an admission-soundness violation (a static proof
    /// contradicted at runtime)?
    pub fn is_soundness_violation(&self) -> bool {
        matches!(
            self,
            ExecEnd::BoundExceeded { .. }
                | ExecEnd::TotalExceeded { .. }
                | ExecEnd::WorkExceeded { .. }
        )
    }
}

/// An execution outcome plus its iteration accounting.
#[derive(Debug)]
pub struct ExecResult<V> {
    /// How the run ended.
    pub end: ExecEnd<V>,
    /// Total loop iterations executed.
    pub iterations: u64,
    /// Total tuples materialized by assignments (the observed work).
    pub work: u64,
}

enum Stop {
    Run(RunError),
    Fuel,
    Preempt,
    Bound { path: Vec<u32>, bound: u64 },
    Total,
    Work,
}

struct Counter<'b> {
    bounds: &'b BTreeMap<Vec<u32>, u64>,
    total: u64,
    cap: u64,
    work: u64,
    work_cap: Option<u64>,
}

fn tick(fuel: &mut Fuel) -> Result<(), Stop> {
    fuel.tick().map_err(|_| Stop::Fuel)
}

fn cexec<B: GuardEval>(
    b: &mut B,
    p: &Prog,
    env: &mut Vec<B::V>,
    fuel: &mut Fuel,
    path: &mut Vec<u32>,
    c: &mut Counter<'_>,
    preempt: &AtomicBool,
) -> Result<(), Stop> {
    tick(fuel)?;
    match p {
        Prog::Assign(v, t) => {
            let val = b.eval(t, env, fuel).map_err(|e| match e {
                RunError::Fuel(_) => Stop::Fuel,
                other => Stop::Run(other),
            })?;
            c.work = c.work.saturating_add(B::size(&val));
            if c.work_cap.is_some_and(|cap| c.work > cap) {
                return Err(Stop::Work);
            }
            if *v >= env.len() {
                env.resize(*v + 1, B::unset());
            }
            env[*v] = val;
        }
        Prog::Seq(ps) => {
            for (i, q) in ps.iter().enumerate() {
                path.push(i as u32);
                let r = cexec(b, q, env, fuel, path, c, preempt);
                path.pop();
                r?;
            }
        }
        Prog::WhileEmpty(v, body) | Prog::WhileSingleton(v, body) | Prog::WhileFinite(v, body) => {
            let mut here = 0u64;
            loop {
                let go = match p {
                    Prog::WhileEmpty(..) => B::empty_guard(env.get(*v)),
                    Prog::WhileSingleton(..) => B::single_guard(env.get(*v)).map_err(Stop::Run)?,
                    _ => B::finite_guard(env.get(*v)).map_err(Stop::Run)?,
                };
                if !go {
                    break;
                }
                if preempt.load(Ordering::Relaxed) {
                    return Err(Stop::Preempt);
                }
                here += 1;
                c.total += 1;
                if let Some(&bound) = c.bounds.get(path.as_slice()) {
                    if here > bound {
                        return Err(Stop::Bound {
                            path: path.clone(),
                            bound,
                        });
                    }
                }
                if c.total > c.cap {
                    return Err(Stop::Total);
                }
                tick(fuel)?;
                path.push(0);
                let r = cexec(b, body, env, fuel, path, c, preempt);
                path.pop();
                r?;
            }
        }
    }
    Ok(())
}

/// Runs `p` under `budget`, with term semantics from `b`. The dialect
/// check runs first, exactly as the interpreters' own `run` methods do.
pub fn run_scheduled<B: GuardEval>(
    b: &mut B,
    dialect: Dialect,
    p: &Prog,
    budget: &Budget<'_>,
    preempt: &AtomicBool,
) -> ExecResult<B::V> {
    let mut c = Counter {
        bounds: budget.bounds,
        total: 0,
        cap: budget.total_cap,
        work: 0,
        work_cap: budget.work_cap,
    };
    let mut fuel = Fuel::new(budget.fuel);
    let end = if let Err(v) = dialect.check(p) {
        ExecEnd::Errored(RunError::DialectViolation(v.message()))
    } else {
        let nvars = p.max_var().map_or(1, |m| m + 1);
        let mut env = vec![B::unset(); nvars.max(1)];
        let mut path = Vec::new();
        match cexec(b, p, &mut env, &mut fuel, &mut path, &mut c, preempt) {
            Ok(()) => match env.into_iter().next() {
                Some(y1) => ExecEnd::Done(y1),
                None => ExecEnd::Done(B::unset()),
            },
            Err(Stop::Run(e)) => ExecEnd::Errored(e),
            Err(Stop::Fuel) => ExecEnd::OutOfFuel,
            Err(Stop::Preempt) => ExecEnd::Preempted,
            Err(Stop::Bound { path, bound }) => ExecEnd::BoundExceeded { path, bound },
            Err(Stop::Total) => ExecEnd::TotalExceeded { cap: c.cap },
            Err(Stop::Work) => ExecEnd::WorkExceeded {
                cap: c.work_cap.unwrap_or(0),
            },
        }
    };
    ExecResult {
        end,
        iterations: c.total,
        work: c.work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_core::FiniteStructure;
    use recdb_qlhs::parse_program;

    fn graph() -> FiniteStructure {
        FiniteStructure::graph(0..3, [(0, 1), (1, 2)])
    }

    fn run(src: &str, budget: &Budget<'_>) -> ExecResult<Val> {
        let p = parse_program(src).unwrap();
        let st = graph();
        let mut interp = FinInterp::new(&st);
        run_scheduled(
            &mut interp,
            Dialect::Ql,
            &p,
            budget,
            &AtomicBool::new(false),
        )
    }

    fn fueled(fuel: u64) -> Budget<'static> {
        static EMPTY: BTreeMap<Vec<u32>, u64> = BTreeMap::new();
        Budget {
            bounds: &EMPTY,
            total_cap: u64::MAX,
            fuel,
            work_cap: None,
        }
    }

    #[test]
    fn completion_returns_y1() {
        let r = run("Y1 := E;", &fueled(10_000));
        match r.end {
            ExecEnd::Done(v) => assert_eq!(v.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn divergent_loops_run_out_of_fuel() {
        let r = run("while empty(Y2) { Y3 := E; }", &fueled(500));
        assert!(matches!(r.end, ExecEnd::OutOfFuel), "{:?}", r.end);
        assert!(r.iterations > 0);
    }

    #[test]
    fn preemption_stops_at_a_loop_head() {
        let p = parse_program("while empty(Y2) { Y3 := E; }").unwrap();
        let st = graph();
        let mut interp = FinInterp::new(&st);
        let flag = AtomicBool::new(true);
        let r = run_scheduled(&mut interp, Dialect::Ql, &p, &fueled(100_000), &flag);
        assert!(matches!(r.end, ExecEnd::Preempted), "{:?}", r.end);
    }

    #[test]
    fn exceeded_bounds_are_soundness_violations() {
        let bounds: BTreeMap<Vec<u32>, u64> = [(vec![0], 2u64)].into_iter().collect();
        let budget = Budget {
            bounds: &bounds,
            total_cap: 100,
            fuel: 100_000,
            work_cap: None,
        };
        let r = run("while empty(Y2) { Y3 := E; }", &budget);
        assert!(r.end.is_soundness_violation(), "{:?}", r.end);
        match r.end {
            ExecEnd::BoundExceeded { path, bound } => {
                assert_eq!(path, vec![0]);
                assert_eq!(bound, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn total_budget_is_enforced() {
        let bounds = BTreeMap::new();
        let budget = Budget {
            bounds: &bounds,
            total_cap: 5,
            fuel: 100_000,
            work_cap: None,
        };
        let r = run("while empty(Y2) { Y3 := E; }", &budget);
        assert!(
            matches!(r.end, ExecEnd::TotalExceeded { cap: 5 }),
            "{:?}",
            r.end
        );
    }

    #[test]
    fn work_is_counted_and_capped() {
        let r = run("Y1 := E; Y2 := E;", &fueled(10_000));
        assert!(matches!(r.end, ExecEnd::Done(_)), "{:?}", r.end);
        // E on the 3-node graph stores 3 tuples; two assignments.
        assert_eq!(r.work, 6);

        let bounds = BTreeMap::new();
        let budget = Budget {
            bounds: &bounds,
            total_cap: u64::MAX,
            fuel: 10_000,
            work_cap: Some(5),
        };
        let r = run("Y1 := E; Y2 := E;", &budget);
        assert!(
            matches!(r.end, ExecEnd::WorkExceeded { cap: 5 }),
            "{:?}",
            r.end
        );
        assert!(r.end.is_soundness_violation());
    }

    #[test]
    fn runtime_errors_pass_through() {
        let r = run("Y1 := R9;", &fueled(10_000));
        // R9 in the surface syntax is input index 8 (relations are
        // 1-based on the wire, 0-based internally).
        assert!(
            matches!(r.end, ExecEnd::Errored(RunError::NoSuchRelation(8))),
            "{:?}",
            r.end
        );
    }
}
