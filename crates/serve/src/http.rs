//! A minimal HTTP/1.1 layer: exactly what the protocol needs, nothing
//! more.
//!
//! Supported: request line + headers + `Content-Length` bodies,
//! keep-alive (HTTP/1.1 default, `Connection: close` honoured), and
//! hard limits on head and body size so a hostile client cannot make
//! a worker allocate unboundedly. Not supported (rejected as
//! malformed): chunked transfer encoding, continuation lines,
//! HTTP/0.9/2/3.

use std::io::{BufRead, Write};

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method verb, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target (path only; no query parsing).
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Did the client ask to close the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes are not a well-formed HTTP/1.1 request.
    Malformed(&'static str),
    /// The declared body exceeds the server's limit.
    TooLarge {
        /// The limit that was exceeded, in bytes.
        limit: usize,
    },
    /// The peer disconnected mid-request (after sending some bytes).
    Disconnected,
    /// A transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::TooLarge { limit } => write!(f, "request exceeds the {limit}-byte limit"),
            HttpError::Disconnected => f.write_str("peer disconnected mid-request"),
            HttpError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

/// Reading a request either yields one, or reports clean end-of-stream
/// (the peer closed between requests — not an error under keep-alive).
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection before sending anything.
    Closed,
}

/// Reads one request. `max_head` bounds the request line + headers;
/// `max_body` bounds the declared `Content-Length`.
pub fn read_request(
    r: &mut impl BufRead,
    max_head: usize,
    max_body: usize,
) -> Result<ReadOutcome, HttpError> {
    let mut line = Vec::new();
    match read_line(r, &mut line, max_head)? {
        LineEnd::Eof if line.is_empty() => return Ok(ReadOutcome::Closed),
        LineEnd::Eof => return Err(HttpError::Disconnected),
        LineEnd::Line => {}
    }
    let text = std::str::from_utf8(&line).map_err(|_| HttpError::Malformed("non-utf8 head"))?;
    let mut parts = text.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(HttpError::Malformed("bad request line")),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    let mut head_budget = max_head.saturating_sub(line.len());
    loop {
        let mut hl = Vec::new();
        match read_line(r, &mut hl, head_budget)? {
            LineEnd::Eof => return Err(HttpError::Disconnected),
            LineEnd::Line => {}
        }
        head_budget = head_budget.saturating_sub(hl.len() + 2);
        if hl.is_empty() {
            break;
        }
        let htext =
            std::str::from_utf8(&hl).map_err(|_| HttpError::Malformed("non-utf8 header"))?;
        let Some((name, value)) = htext.split_once(':') else {
            return Err(HttpError::Malformed("header without a colon"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut req = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Malformed("chunked bodies are not supported"));
    }
    if let Some(cl) = req.header("content-length") {
        let n: usize = cl
            .parse()
            .map_err(|_| HttpError::Malformed("bad content-length"))?;
        if n > max_body {
            return Err(HttpError::TooLarge { limit: max_body });
        }
        let mut body = vec![0u8; n];
        let mut read = 0;
        while read < n {
            match r.read(&mut body[read..]) {
                Ok(0) => return Err(HttpError::Disconnected),
                Ok(k) => read += k,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(HttpError::Disconnected)
                }
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
        req.body = body;
    }
    Ok(ReadOutcome::Request(req))
}

enum LineEnd {
    Line,
    Eof,
}

/// Reads one CRLF- (or bare-LF-) terminated line into `buf`, excluding
/// the terminator. `budget` bounds the line length.
fn read_line(r: &mut impl BufRead, buf: &mut Vec<u8>, budget: usize) -> Result<LineEnd, HttpError> {
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => return Ok(LineEnd::Eof),
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return Ok(LineEnd::Line);
                }
                if buf.len() >= budget {
                    return Err(HttpError::TooLarge { limit: budget });
                }
                buf.push(byte[0]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return if buf.is_empty() {
                    Ok(LineEnd::Eof)
                } else {
                    Err(HttpError::Disconnected)
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// The reason phrase for the status codes the server uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes one `application/json` response.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {conn}\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(bytes: &[u8]) -> Result<ReadOutcome, HttpError> {
        read_request(&mut BufReader::new(bytes), 4096, 1 << 16)
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/query HTTP/1.1\r\ncontent-length: 4\r\nX-Tenant: t1\r\n\r\nabcd";
        match read(raw).unwrap() {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/v1/query");
                assert_eq!(req.header("x-tenant"), Some("t1"));
                assert_eq!(req.body, b"abcd");
                assert!(!req.wants_close());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clean_eof_is_closed_not_error() {
        assert!(matches!(read(b"").unwrap(), ReadOutcome::Closed));
    }

    #[test]
    fn truncated_head_and_body_are_disconnects() {
        assert!(matches!(
            read(b"POST /x HTTP/1.1\r\ncontent-le"),
            Err(HttpError::Disconnected)
        ));
        assert!(matches!(
            read(b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc"),
            Err(HttpError::Disconnected)
        ));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x HTTP/2\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        ] {
            assert!(
                matches!(read(raw), Err(HttpError::Malformed(_))),
                "{:?} should be malformed",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn oversized_bodies_and_heads_are_bounded() {
        assert!(matches!(
            read(b"POST /x HTTP/1.1\r\ncontent-length: 9999999\r\n\r\n"),
            Err(HttpError::TooLarge { .. })
        ));
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 10_000));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert!(matches!(read(&raw), Err(HttpError::TooLarge { .. })));
    }

    #[test]
    fn responses_have_exact_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"a\":1}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 7\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"a\":1}"));
    }
}
