//! Admission control: every request passes through
//! [`recdb_analyze::analyze_full`] before any evaluation happens, and
//! the verdicts *are* the scheduling policy.
//!
//! | analyzer verdict            | admission decision                    |
//! |-----------------------------|---------------------------------------|
//! | safety `Unsafe`             | rejected (diagnostics serialized)     |
//! | termination `Diverges`      | rejected (diagnostics serialized)     |
//! | termination `Terminates{n}` | admitted, **exact** budget `n` + the proved per-loop bounds |
//! | termination `Unknown`       | admitted under **fuel** with cooperative preemption |
//! | genericity `Generic{fixed}` | (+ proved termination + safety) ⇒ result-cache eligible |
//!
//! Rejection responses carry the analyzer's span diagnostics resolved
//! to `line:col` through the parser's span table — the same data the
//! `analyze` CLI renders rustc-style.

use crate::json::esc;
use recdb_analyze::{
    analyze_full, Diagnostic, FullAnalysis, LoopBound, TerminationVerdict, Verdict,
};
use recdb_core::Schema;
use recdb_qlhs::{parse_program_with_spans, Dialect, Prog, Span, SpanTable};
use std::collections::{BTreeMap, BTreeSet};

/// Admission-side limits (from the server config).
#[derive(Clone, Copy, Debug)]
pub struct AdmitLimits {
    /// Fuel granted when the client does not ask for a budget.
    pub fuel_default: u64,
    /// Hard ceiling on any granted fuel budget.
    pub fuel_max: u64,
}

/// How an admitted program will be scheduled.
#[derive(Clone, Debug)]
pub enum Plan {
    /// Proved terminating: exact iteration budget and per-loop bounds.
    Exact {
        /// The proved whole-program iteration budget.
        iterations: u64,
        /// Proved per-entry bounds, keyed by loop path.
        bounds: BTreeMap<Vec<u32>, u64>,
    },
    /// Termination unknown: run under fuel with preemption.
    Fueled {
        /// The granted fuel budget.
        fuel: u64,
    },
}

impl Plan {
    /// The plan's wire label (`"exact"` / `"fuel"`).
    pub fn mode(&self) -> &'static str {
        match self {
            Plan::Exact { .. } => "exact",
            Plan::Fueled { .. } => "fuel",
        }
    }
}

/// A program that passed admission.
#[derive(Clone, Debug)]
pub struct Admission {
    /// The parsed program.
    pub prog: Prog,
    /// The parser's span table (for any later diagnostics).
    pub spans: SpanTable,
    /// The scheduling plan.
    pub plan: Plan,
    /// `Some(fixed)` when the result is cacheable: the program is
    /// proved C-generic fixing `fixed`, proved terminating, and proved
    /// safe — the three legs of the cache-soundness argument
    /// (DESIGN.md §9).
    pub cache_fixed: Option<BTreeSet<u64>>,
    /// The full analysis (verdict strings go into the response).
    pub analysis: FullAnalysis,
}

/// The admission decision.
#[derive(Clone, Debug)]
pub enum AdmitOutcome {
    /// Run it.
    Admitted(Box<Admission>),
    /// Do not run it: machine-readable reasons plus serialized
    /// diagnostics.
    Rejected {
        /// Stable reason tags (`"parse-error"`, `"unsafe"`,
        /// `"diverges"`).
        reasons: Vec<&'static str>,
        /// The diagnostics as JSON objects (already rendered).
        diagnostics_json: String,
    },
}

/// Serializes one diagnostic, resolving its tree path to `line:col`
/// when the span table covers it.
fn diag_json(d: &Diagnostic, source: &str, spans: &SpanTable) -> String {
    let mut s = format!(
        "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
        d.code,
        d.severity(),
        esc(&d.message)
    );
    if let Some(Span { start, end }) = spans.enclosing(&d.path) {
        let (line, col) = Span { start, end }.line_col(source);
        s.push_str(&format!(",\"line\":{line},\"col\":{col}"));
    }
    if let Some(note) = &d.note {
        s.push_str(&format!(",\"note\":\"{}\"", esc(note)));
    }
    s.push('}');
    s
}

/// Serializes a diagnostic list as a JSON array.
pub fn diags_json(diags: &[&Diagnostic], source: &str, spans: &SpanTable) -> String {
    let items: Vec<String> = diags.iter().map(|d| diag_json(d, source, spans)).collect();
    format!("[{}]", items.join(","))
}

/// All diagnostics of an analysis, in pass order.
pub fn all_diags(a: &FullAnalysis) -> Vec<&Diagnostic> {
    a.safety
        .diagnostics
        .iter()
        .chain(&a.termination.diagnostics)
        .chain(&a.genericity.diagnostics)
        .collect()
}

/// Runs admission on one program source.
pub fn admit(
    source: &str,
    schema: &Schema,
    dialect: Dialect,
    requested_fuel: Option<u64>,
    limits: &AdmitLimits,
) -> AdmitOutcome {
    let (prog, spans) = match parse_program_with_spans(source) {
        Ok(ok) => ok,
        Err(e) => {
            let (line, col) = Span {
                start: e.at,
                end: e.at + 1,
            }
            .line_col(source);
            return AdmitOutcome::Rejected {
                reasons: vec!["parse-error"],
                diagnostics_json: format!(
                    "[{{\"code\":\"PARSE\",\"severity\":\"error\",\"message\":\"{}\",\
                     \"line\":{line},\"col\":{col}}}]",
                    esc(&e.msg)
                ),
            };
        }
    };
    let analysis = analyze_full(&prog, schema, dialect);
    let mut reasons = Vec::new();
    if analysis.safety.verdict == Verdict::Unsafe {
        reasons.push("unsafe");
    }
    if analysis.termination.verdict == TerminationVerdict::Diverges {
        reasons.push("diverges");
    }
    if !reasons.is_empty() {
        for r in &reasons {
            match *r {
                "unsafe" => recdb_obs::count("serve.admit.unsafe", 1),
                _ => recdb_obs::count("serve.admit.diverges", 1),
            }
        }
        return AdmitOutcome::Rejected {
            reasons,
            diagnostics_json: diags_json(&all_diags(&analysis), source, &spans),
        };
    }
    let plan = match analysis.termination.verdict {
        TerminationVerdict::Terminates { iterations } => {
            recdb_obs::count("serve.admit.exact", 1);
            let bounds = analysis
                .termination
                .loops
                .iter()
                .filter_map(|l| match l.bound {
                    LoopBound::Bounded(b) => Some((l.path.clone(), b)),
                    _ => None,
                })
                .collect();
            Plan::Exact { iterations, bounds }
        }
        _ => {
            recdb_obs::count("serve.admit.fueled", 1);
            Plan::Fueled {
                fuel: requested_fuel
                    .unwrap_or(limits.fuel_default)
                    .min(limits.fuel_max),
            }
        }
    };
    let cache_fixed = match (&analysis.genericity.verdict, &analysis.termination.verdict) {
        (
            recdb_analyze::GenericityVerdict::Generic { fixed },
            TerminationVerdict::Terminates { .. },
        ) if analysis.safety.verdict == Verdict::Safe => Some(fixed.clone()),
        _ => None,
    };
    AdmitOutcome::Admitted(Box::new(Admission {
        prog,
        spans,
        plan,
        cache_fixed,
        analysis,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: AdmitLimits = AdmitLimits {
        fuel_default: 10_000,
        fuel_max: 1_000_000,
    };

    fn schema() -> Schema {
        Schema::new([2])
    }

    fn admit_ql(src: &str) -> AdmitOutcome {
        admit(src, &schema(), Dialect::Ql, None, &LIMITS)
    }

    #[test]
    fn straight_line_programs_get_exact_plans() {
        match admit_ql("Y1 := R1;") {
            AdmitOutcome::Admitted(a) => {
                assert!(matches!(a.plan, Plan::Exact { iterations: 0, .. }));
                assert!(a.cache_fixed.is_some(), "generic + terminating + safe");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_reject_with_line_col() {
        match admit_ql("Y1 := ;") {
            AdmitOutcome::Rejected {
                reasons,
                diagnostics_json,
            } => {
                assert_eq!(reasons, vec!["parse-error"]);
                assert!(
                    diagnostics_json.contains("\"line\":1"),
                    "{diagnostics_json}"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn provable_divergence_rejects() {
        // Guard variable is never written in the body: provably
        // divergent.
        match admit_ql("while empty(Y2) { Y3 := E; }") {
            AdmitOutcome::Rejected { reasons, .. } => assert!(reasons.contains(&"diverges")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dialect_violations_reject_as_unsafe() {
        match admit_ql("while single(Y1) { Y1 := E; }") {
            AdmitOutcome::Rejected {
                reasons,
                diagnostics_json,
            } => {
                assert!(reasons.contains(&"unsafe"));
                assert!(diagnostics_json.contains("E0003"), "{diagnostics_json}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_termination_runs_under_fuel() {
        // The loop flips its own guard via a relation value the
        // analysis cannot bound.
        match admit(
            "while empty(Y2) { Y2 := R1; }",
            &schema(),
            Dialect::Ql,
            Some(12_345),
            &LIMITS,
        ) {
            AdmitOutcome::Admitted(a) => {
                assert!(
                    matches!(a.plan, Plan::Fueled { fuel: 12_345 }),
                    "{:?}",
                    a.plan
                );
                assert!(a.cache_fixed.is_none(), "unproved termination ⇒ no cache");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn requested_fuel_is_clamped() {
        match admit(
            "while empty(Y2) { Y2 := R1; }",
            &schema(),
            Dialect::Ql,
            Some(u64::MAX),
            &LIMITS,
        ) {
            AdmitOutcome::Admitted(a) => {
                assert!(matches!(a.plan, Plan::Fueled { fuel } if fuel == LIMITS.fuel_max));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn constants_shrink_but_keep_cacheability() {
        // The output mixes a constant with input data, so the verdict
        // is `Generic {fixed: {3}}` (an exactly-constant output would
        // be NonGeneric, with a transposition witness).
        match admit_ql("Y1 := C3 & down(R1);") {
            AdmitOutcome::Admitted(a) => {
                let fixed = a.cache_fixed.expect("generic fixing {3}");
                assert!(fixed.contains(&3));
            }
            other => panic!("{other:?}"),
        }
    }
}
