//! A hand-rolled JSON layer for the wire protocol — parser and
//! deterministic writer, zero dependencies.
//!
//! The protocol only ever carries **non-negative integers** (domain
//! elements, arities, fuel budgets), strings, booleans, arrays, and
//! objects, so the value type stores numbers as `u64` and the parser
//! rejects fractions, exponents, and negative numbers outright. That
//! restriction is what makes the writer *deterministic*: there is no
//! float formatting to drift, and objects render with sorted keys, so
//! the same value always serializes to the same bytes — the property
//! the `SERVE-DIFF` byte-match differential and the cache-hit
//! verification lean on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts; deeper input is rejected
/// as malformed (stack safety on untrusted bodies).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value (integers only; see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` so re-rendering is key-sorted and
    /// deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value deterministically (sorted object keys, no
    /// whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&esc(s));
                out.push('"');
            }
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&esc(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes a string per RFC 8259 (same rules as the conformance and
/// metrics writers).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'0'..=b'9') => self.number(),
            Some(b'-') => Err(self.err("negative numbers are not part of the protocol")),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("fractions/exponents are not part of the protocol"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        if text.len() > 1 && text.starts_with('0') {
            return Err(self.err("leading zeros are not valid JSON"));
        }
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|_| self.err("integer does not fit in u64"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not part of the
                            // protocol; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    if let Some(c) = s.chars().next() {
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(xs));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shapes() {
        let src = r#"{"db":{"kind":"finite","universe":[0,1,2]},"program":"Y1 := R1;"}"#;
        let v = parse(src).unwrap();
        assert_eq!(
            v.get("db")
                .and_then(|d| d.get("kind"))
                .and_then(Json::as_str),
            Some("finite")
        );
        // Deterministic re-render: parse(render(v)) == v.
        let r = v.render();
        assert_eq!(parse(&r).unwrap(), v);
        assert_eq!(parse(&r).unwrap().render(), r);
    }

    #[test]
    fn rejects_non_protocol_numbers() {
        for bad in ["-1", "1.5", "1e3", "01"] {
            assert!(parse(bad).is_err(), "{bad} should be rejected");
        }
        assert_eq!(parse("18446744073709551615").unwrap(), Json::Num(u64::MAX));
        assert!(parse("18446744073709551616").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "{} x", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let r = v.render();
        assert_eq!(parse(&r).unwrap(), v);
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn object_keys_sort_on_render() {
        let v = parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(v.render(), r#"{"a":2,"b":1}"#);
    }
}
