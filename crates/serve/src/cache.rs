//! The cross-tenant result cache, keyed on canonical ≅_B-class
//! fingerprints — `Generic {fixed}` verdicts put to work.
//!
//! ## Soundness argument (DESIGN.md §9 has the prose version)
//!
//! A cache entry is created only for programs the analyzer **proved**
//! (1) safe, (2) terminating, and (3) C-generic fixing `fixed`. For a
//! finite slice `B`, canonicalization finds a permutation `π` fixing
//! `fixed` pointwise with `π(B) = K`, where `K` is the
//! lexicographically least relabeling of `B` over a fixed slot
//! alphabet — so every slice in `B`'s ≅-orbit (under permutations
//! fixing `fixed`) maps to the *same* `K`. The entry stores
//! `q(K) = q(π(B)) = π(q(B))` (the middle step is exactly Def 2.5
//! genericity), computed without ever evaluating on `K`: the server
//! runs `q` on `B` and stores `π(q(B))`. A later request for `B'` in
//! the same orbit recovers `q(B') = π'⁻¹(q(K))`. Legs (1) and (2) make
//! the stored value independent of scheduling: a proved-terminating,
//! proved-safe program completes with the same `Y₁` on every
//! successful run, so which tenant happened to fill the entry cannot
//! be observed. Errors and preempted runs are never cached.
//!
//! The orbit search is exact but exponential in the number of
//! non-fixed universe elements, so slices with more than
//! [`MAX_CANON_FREE`] free elements bypass the cache (counted, never
//! silent). Infinite-db slices (`family`/`cells`/`fcf`) are keyed by
//! their canonical descriptor with identity transport — their wire
//! form is already a canonical name, not an element listing.

use recdb_core::{Elem, FiniteStructure, Tuple};
use recdb_qlhs::{FcfVal, Permutation, Val};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

/// Largest number of non-fixed universe elements the canonicalizer
/// will search over (`6! = 720` candidate relabelings).
pub const MAX_CANON_FREE: usize = 6;

/// A canonicalized finite slice: the cache key component and the
/// permutation `π` (fixing `fixed`) with `π(B) = K`.
#[derive(Clone, Debug)]
pub struct CanonicalSlice {
    /// Serialized canonical structure — equal for every slice in the
    /// ≅-orbit.
    pub key: String,
    /// `π : B → K`.
    pub to_canon: Permutation,
}

/// Canonicalizes a finite structure under permutations fixing `fixed`
/// pointwise. `None` when the slice has more than [`MAX_CANON_FREE`]
/// free elements (cache bypass).
pub fn canonicalize_finite(st: &FiniteStructure, fixed: &BTreeSet<u64>) -> Option<CanonicalSlice> {
    let universe: Vec<u64> = st.universe().iter().map(|e| e.value()).collect();
    let (fixed_in, free): (Vec<u64>, Vec<u64>) = universe.iter().partition(|e| fixed.contains(e));
    if free.len() > MAX_CANON_FREE {
        return None;
    }
    // Slot alphabet: the smallest naturals not claimed by any fixed
    // constant (fixed elements keep their own names, and a slot
    // colliding with a fixed id would break injectivity).
    let mut slots = Vec::with_capacity(free.len());
    let mut next = 0u64;
    while slots.len() < free.len() {
        if !fixed.contains(&next) {
            slots.push(next);
        }
        next += 1;
    }
    // Search all bijections free → slots for the lexicographically
    // least relabeled relation list.
    let k = free.len();
    let mut idx: Vec<usize> = (0..k).collect();
    let mut best: Option<(Vec<Vec<Tuple>>, Vec<usize>)> = None;
    permute_indices(&mut idx, 0, &mut |assign| {
        let relabel = |e: Elem| -> Elem {
            match free.iter().position(|&f| f == e.value()) {
                Some(i) => Elem(slots[assign[i]]),
                None => e,
            }
        };
        let mut rels = Vec::with_capacity(st.schema().len());
        for i in 0..st.schema().len() {
            let mut ts: Vec<Tuple> = st.relation(i).iter().map(|t| t.map(relabel)).collect();
            ts.sort_unstable();
            rels.push(ts);
        }
        if best.as_ref().is_none_or(|(b, _)| rels < *b) {
            best = Some((rels, assign.to_vec()));
        }
    });
    let (rels, assign) = best?;
    // Serialize K.
    let mut canon_universe: Vec<u64> = fixed_in
        .iter()
        .copied()
        .chain(slots.iter().copied())
        .collect();
    canon_universe.sort_unstable();
    let mut key = format!("a{:?};u{:?};", st.schema().arities(), canon_universe);
    for ts in &rels {
        key.push('r');
        for t in ts {
            key.push('(');
            for (i, e) in t.elems().iter().enumerate() {
                if i > 0 {
                    key.push(',');
                }
                key.push_str(&e.value().to_string());
            }
            key.push(')');
        }
        key.push(';');
    }
    // Build π as a full permutation of 0..window: fixed pointwise,
    // free[i] → slots[assign[i]], remaining ids completed greedily.
    let window = universe
        .iter()
        .chain(slots.iter())
        .chain(fixed.iter())
        .copied()
        .max()
        .unwrap_or(0)
        + 1;
    let mut forward: Vec<Option<u64>> = vec![None; window as usize];
    let mut used: Vec<bool> = vec![false; window as usize];
    for &f in fixed {
        if f < window {
            forward[f as usize] = Some(f);
            used[f as usize] = true;
        }
    }
    for (i, &u) in free.iter().enumerate() {
        let s = slots[assign[i]];
        forward[u as usize] = Some(s);
        used[s as usize] = true;
    }
    let mut spare: Vec<u64> = (0..window).filter(|&x| !used[x as usize]).collect();
    spare.reverse();
    let forward: Vec<u64> = forward
        .into_iter()
        .map(|slot| match slot {
            Some(s) => s,
            // `spare` has exactly one id per unassigned slot.
            None => spare.pop().unwrap_or(0),
        })
        .collect();
    Some(CanonicalSlice {
        key,
        to_canon: Permutation::from_forward(forward),
    })
}

fn permute_indices(idx: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == idx.len() {
        f(idx);
        return;
    }
    for i in k..idx.len() {
        idx.swap(k, i);
        permute_indices(idx, k + 1, f);
        idx.swap(k, i);
    }
}

/// A cached answer, stored in canonical (`q(K)`) coordinates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CachedResult {
    /// A finite-relation value (`FinInterp`/`HsInterp` backends).
    Rel(Val),
    /// An fcf value (`FcfInterp` backend).
    Fcf(FcfVal),
}

/// The sharded cross-tenant result cache. Reads and writes take one
/// shard mutex each; entries are immutable `Arc`s, so a hit clones a
/// pointer, not a value.
pub struct ResultCache {
    shards: Vec<Mutex<HashMap<String, Arc<CachedResult>>>>,
}

impl ResultCache {
    /// A cache with `shards` independently locked shards.
    pub fn new(shards: usize) -> Self {
        ResultCache {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, Arc<CachedResult>>> {
        let h = recdb_core::fnv1a(key) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<Arc<CachedResult>> {
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    /// Stores `value` under `key` (last writer wins; all writers hold
    /// byte-identical values by the soundness argument).
    pub fn put(&self, key: &str, value: CachedResult) {
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key.to_string(), Arc::new(value));
    }

    /// Removes `key` (hit-verification failure path).
    pub fn evict(&self, key: &str) {
        self.shard(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key);
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_core::SplitMix64;

    fn line(u: &[u64], edges: &[(u64, u64)]) -> FiniteStructure {
        FiniteStructure::graph(u.iter().copied(), edges.iter().copied())
    }

    #[test]
    fn isomorphic_slices_share_a_key() {
        let a = line(&[0, 1, 2], &[(0, 1), (1, 2)]);
        // Same path, relabeled 0↦2, 1↦0, 2↦1.
        let b = line(&[0, 1, 2], &[(2, 0), (0, 1)]);
        let none = BTreeSet::new();
        let ca = canonicalize_finite(&a, &none).unwrap();
        let cb = canonicalize_finite(&b, &none).unwrap();
        assert_eq!(ca.key, cb.key);
        // And the transports really map both slices onto the *same* K.
        let image = |st: &FiniteStructure, c: &CanonicalSlice| -> BTreeSet<Tuple> {
            st.relation(0)
                .iter()
                .map(|t| c.to_canon.apply_tuple(t))
                .collect()
        };
        assert_eq!(image(&a, &ca), image(&b, &cb));
    }

    #[test]
    fn value_relabelings_of_the_same_graph_agree_under_transport() {
        // q(B) computed on B then transported = q computed on the
        // canonical form — probed via a random relabeling.
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..20 {
            let base = line(&[0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
            let p = Permutation::random(&mut rng, 4);
            let relabeled = FiniteStructure::graph(
                (0..4).map(|e| p.apply(Elem(e)).value()),
                base.relation(0)
                    .iter()
                    .map(|t| (p.apply(t.elems()[0]).value(), p.apply(t.elems()[1]).value())),
            );
            let none = BTreeSet::new();
            let ca = canonicalize_finite(&base, &none).unwrap();
            let cb = canonicalize_finite(&relabeled, &none).unwrap();
            assert_eq!(ca.key, cb.key);
        }
    }

    #[test]
    fn fixed_elements_keep_their_names() {
        let fixed: BTreeSet<u64> = [5].into_iter().collect();
        let st = line(&[0, 5, 7], &[(0, 5), (5, 7)]);
        let c = canonicalize_finite(&st, &fixed).unwrap();
        assert_eq!(c.to_canon.apply(Elem(5)), Elem(5));
        assert!(c.key.contains('5'), "{}", c.key);
        // Non-fixed slices relabel away from 5: slots are 0,1 here.
        assert!(c.to_canon.apply(Elem(7)) != Elem(7) || c.to_canon.apply(Elem(0)) == Elem(0));
    }

    #[test]
    fn distinct_structures_get_distinct_keys() {
        let none = BTreeSet::new();
        let path = line(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let tri = line(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        assert_ne!(
            canonicalize_finite(&path, &none).unwrap().key,
            canonicalize_finite(&tri, &none).unwrap().key
        );
    }

    #[test]
    fn oversized_orbits_bypass() {
        let st = line(&(0..10).collect::<Vec<_>>(), &[(0, 1)]);
        assert!(canonicalize_finite(&st, &BTreeSet::new()).is_none());
    }

    #[test]
    fn cache_round_trips_and_evicts() {
        let cache = ResultCache::new(4);
        assert!(cache.is_empty());
        let v = CachedResult::Rel(Val {
            rank: 2,
            tuples: BTreeSet::new(),
        });
        cache.put("k1", v.clone());
        assert_eq!(cache.get("k1").as_deref(), Some(&v));
        assert!(cache.get("k2").is_none());
        cache.evict("k1");
        assert!(cache.is_empty());
    }
}
