//! The `loadgen` binary: a deterministic, seeded load generator for
//! the query service.
//!
//! By default it self-hosts a [`Server`] in-process, drives `--requests`
//! seeded requests from `--concurrency` client threads (each request a
//! fresh `Connection: close` round-trip, as a real multi-tenant swarm
//! would look), checks every response against its request class's
//! expected status, counts admission-soundness violations (which must
//! be zero), and emits latency percentiles into `BENCH_SERVE.json` in
//! the line format `xtask bench-ratchet` consumes.
//!
//! ```text
//! loadgen [--requests 10000] [--concurrency 128] [--seed 0x5ecdeb0a]
//!         [--workers 8] [--addr HOST:PORT] [--out BENCH_SERVE.json]
//!         [--metrics-out PATH] [--verify-hits] [--quiet]
//! ```

use recdb_core::SplitMix64;
use recdb_qlhs::Permutation;
use recdb_serve::client::post_once;
use recdb_serve::{ServeConfig, Server};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One seeded request class: a body generator plus the status the
/// admission pipeline must produce for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    /// Cacheable exact query over a randomly relabeled copy of one
    /// fixed graph — every request is in the same ≅-orbit, so all but
    /// the first hit the cross-tenant cache.
    ExactOrbit,
    /// Cacheable exact query over a fresh random graph (mostly misses).
    ExactFresh,
    /// Fuel-mode program that completes quickly.
    FuelOk,
    /// Provably divergent — rejected at admission.
    RejectDiverge,
    /// Dialect-unsafe — rejected at admission.
    RejectUnsafe,
    /// Exact query against a catalog family (QLhs backend).
    Family,
    /// Exact query against an fcf database (QLf+ backend).
    Fcf,
    /// Fuel-mode program that exhausts its budget — preempted.
    FuelExhaust,
    /// Fuel-mode program given a large budget — the heavy class the
    /// latency ratchet compares against admission-only requests.
    Heavy,
    /// Relational-algebra query on `/v1/ra`: compiled server-side to
    /// a cacheable straight-line program (constant selection ⇒ all
    /// requests share one `Generic {fixed}` orbit).
    RaExact,
    /// Unsafe relational algebra (bare complement) — rejected by the
    /// RA validator with `RA05` before compilation.
    RaReject,
}

const CLASSES: [(Class, u32); 11] = [
    (Class::ExactOrbit, 25),
    (Class::ExactFresh, 15),
    (Class::FuelOk, 15),
    (Class::RejectDiverge, 10),
    (Class::RejectUnsafe, 5),
    (Class::Family, 10),
    (Class::Fcf, 5),
    (Class::FuelExhaust, 10),
    (Class::Heavy, 5),
    (Class::RaExact, 7),
    (Class::RaReject, 3),
];

impl Class {
    fn pick(rng: &mut SplitMix64) -> Class {
        let total: u32 = CLASSES.iter().map(|(_, w)| w).sum();
        let mut roll = rng.gen_usize(total as usize) as u32;
        for &(c, w) in &CLASSES {
            if roll < w {
                return c;
            }
            roll -= w;
        }
        Class::ExactOrbit
    }

    /// The endpoint this class posts to.
    fn path(self) -> &'static str {
        match self {
            Class::RaExact | Class::RaReject => "/v1/ra",
            _ => "/v1/query",
        }
    }

    fn expected_status(self) -> u16 {
        match self {
            Class::RejectDiverge | Class::RejectUnsafe | Class::RaReject => 422,
            // Heavy burns a large fuel budget to completion of the
            // budget, not the program — preempted by design.
            Class::FuelExhaust | Class::Heavy => 408,
            _ => 200,
        }
    }

    fn bench_tag(self) -> &'static str {
        match self {
            Class::ExactOrbit => "exact_orbit",
            Class::ExactFresh => "exact_fresh",
            Class::FuelOk => "fuel_ok",
            Class::RejectDiverge | Class::RejectUnsafe => "admit_reject",
            Class::Family => "family",
            Class::Fcf => "fcf",
            Class::FuelExhaust => "fuel_exhaust",
            Class::Heavy => "heavy",
            Class::RaExact => "ra_exact",
            Class::RaReject => "ra_reject",
        }
    }

    fn body(self, rng: &mut SplitMix64) -> String {
        match self {
            Class::ExactOrbit => {
                // One fixed 5-path, randomly relabeled: same ≅-orbit.
                let p = Permutation::random(rng, 5);
                let edges: Vec<String> = (0..4u64)
                    .map(|i| {
                        format!(
                            "[{},{}]",
                            p.apply(recdb_core::Elem(i)).value(),
                            p.apply(recdb_core::Elem(i + 1)).value()
                        )
                    })
                    .collect();
                finite_query("Y1 := R1;", &edges.join(","), None)
            }
            Class::ExactFresh => {
                let mut edges = Vec::new();
                for a in 0..5u64 {
                    for b in 0..5u64 {
                        if a != b && rng.gen_bool() && rng.gen_bool() {
                            edges.push(format!("[{a},{b}]"));
                        }
                    }
                }
                finite_query("Y1 := R1;", &edges.join(","), None)
            }
            Class::FuelOk => finite_query(
                "Y2 := R1; while empty(Y3) { Y3 := Y2; }",
                "[0,1],[1,2],[2,3]",
                Some(10_000),
            ),
            // `while empty(Y3) { Y3 := R2; }` with R2 *empty at
            // runtime*: statically Unknown (relation contents are not
            // visible to the analyzer), dynamically divergent — the
            // fuel budget is the only thing that stops it.
            Class::FuelExhaust => {
                finite_two_rel_query("while empty(Y3) { Y3 := R2; }", "[0,1],[1,2]", Some(300))
            }
            Class::Heavy => finite_two_rel_query(
                "while empty(Y3) { Y3 := R2; }",
                "[0,1],[1,2],[2,3],[3,4]",
                Some(60_000),
            ),
            Class::RejectDiverge => finite_query("while empty(Y2) { Y3 := E; }", "[0,1]", None),
            Class::RejectUnsafe => finite_query("while single(Y1) { Y1 := E; }", "[0,1]", None),
            Class::Family => {
                r#"{"program":"Y1 := R1;","db":{"kind":"family","name":"clique"}}"#.to_string()
            }
            Class::Fcf => {
                let k = rng.gen_usize(5);
                format!(
                    r#"{{"program":"Y1 := R1;","db":{{"kind":"fcf","relations":[{{"cofinite":{{"arity":1,"exceptions":[[{k}]]}}}}]}}}}"#
                )
            }
            Class::RaExact => {
                // One fixed 4-path, randomly relabeled by a
                // permutation fixing the selected constant 0: every
                // request stays in the `Generic {fixed:{0}}` orbit.
                let p = Permutation::random(rng, 4);
                let shift = |v: u64| p.apply(recdb_core::Elem(v)).value() + 1;
                let edges: Vec<String> = (0..3u64)
                    .map(|i| format!("[{},{}]", shift(i), shift(i + 1)))
                    .collect();
                ra_body(
                    "select #x = 0 (E union rename #x -> #y, #y -> #x (E))",
                    &edges.join(","),
                )
            }
            Class::RaReject => ra_body("E union not (E)", "[0,1]"),
        }
    }
}

/// An `/v1/ra` body over the graph schema `E(x, y)`.
fn ra_body(query: &str, edges: &str) -> String {
    format!(
        r#"{{"query":"{query}","schema":"E(x, y)","db":{{"kind":"finite","universe":[0,1,2,3,4],"relations":[{{"arity":2,"tuples":[{edges}]}}]}}}}"#
    )
}

fn finite_query(program: &str, edges: &str, fuel: Option<u64>) -> String {
    finite_body(
        program,
        &format!(r#"[{{"arity":2,"tuples":[{edges}]}}]"#),
        fuel,
    )
}

/// Like [`finite_query`], plus an *empty* second relation `R2` — the
/// statically-opaque guard feed the fuel classes rely on.
fn finite_two_rel_query(program: &str, edges: &str, fuel: Option<u64>) -> String {
    finite_body(
        program,
        &format!(r#"[{{"arity":2,"tuples":[{edges}]}},{{"arity":2,"tuples":[]}}]"#),
        fuel,
    )
}

fn finite_body(program: &str, relations: &str, fuel: Option<u64>) -> String {
    let fuel_part = match fuel {
        Some(f) => format!(",\"fuel\":{f}"),
        None => String::new(),
    };
    format!(
        r#"{{"program":"{program}","db":{{"kind":"finite","universe":[0,1,2,3,4],"relations":{relations}}}{fuel_part}}}"#
    )
}

struct Args {
    requests: usize,
    concurrency: usize,
    seed: u64,
    workers: usize,
    addr: Option<SocketAddr>,
    out: String,
    metrics_out: Option<String>,
    verify_hits: bool,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        requests: 10_000,
        concurrency: 128,
        seed: 0x5ecd_eb0a,
        workers: 8,
        addr: None,
        out: "BENCH_SERVE.json".to_string(),
        metrics_out: None,
        verify_hits: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--requests" => a.requests = parse(&take("--requests"), "--requests"),
            "--concurrency" => a.concurrency = parse(&take("--concurrency"), "--concurrency"),
            "--seed" => {
                let raw = take("--seed");
                let raw = raw.trim();
                a.seed = match raw.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16).unwrap_or_else(|_| {
                        eprintln!("--seed: cannot parse {raw:?}");
                        std::process::exit(2);
                    }),
                    None => parse(raw, "--seed"),
                };
            }
            "--workers" => a.workers = parse(&take("--workers"), "--workers"),
            "--addr" => a.addr = Some(parse(&take("--addr"), "--addr")),
            "--out" => a.out = take("--out"),
            "--metrics-out" => a.metrics_out = Some(take("--metrics-out")),
            "--verify-hits" => a.verify_hits = true,
            "--quiet" => a.quiet = true,
            "--help" | "-h" => {
                println!(
                    "loadgen — deterministic seeded load generator\n\
                     options: --requests N --concurrency N --seed S --workers N\n\
                     \x20        --addr HOST:PORT --out PATH --metrics-out PATH --verify-hits --quiet"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    a
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{what}: cannot parse {s:?}");
        std::process::exit(2);
    })
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() * p / 100).min(sorted.len() - 1);
    sorted[idx]
}

fn main() {
    let args = parse_args();
    let recorder = args.metrics_out.as_ref().map(|_| {
        let r = recdb_obs::InMemoryRecorder::shared();
        recdb_obs::install(r.clone());
        r
    });
    let server = match args.addr {
        Some(_) => None,
        None => {
            let cfg = ServeConfig {
                workers: args.workers,
                verify_hits: args.verify_hits,
                ..ServeConfig::default()
            };
            match Server::start(cfg) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("self-host bind failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    let addr = match (&server, args.addr) {
        (_, Some(a)) => a,
        (Some(s), None) => s.addr(),
        (None, None) => unreachable!(),
    };

    let violations = Arc::new(AtomicU64::new(0));
    let mismatches = Arc::new(AtomicU64::new(0));
    let io_failures = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut handles = Vec::new();
    let threads = args.concurrency.max(1);
    for tid in 0..threads {
        let n = args.requests / threads + usize::from(tid < args.requests % threads);
        let violations = Arc::clone(&violations);
        let mismatches = Arc::clone(&mismatches);
        let io_failures = Arc::clone(&io_failures);
        let seed = args.seed ^ (tid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::seed_from_u64(seed);
            // (class tag, latency ns) per completed request.
            let mut samples: Vec<(&'static str, u64)> = Vec::with_capacity(n);
            for _ in 0..n {
                let class = Class::pick(&mut rng);
                let body = class.body(&mut rng);
                let t0 = Instant::now();
                match post_once(addr, class.path(), &body) {
                    Ok(resp) => {
                        let ns = t0.elapsed().as_nanos() as u64;
                        if resp.body.contains("\"violation\"") {
                            violations.fetch_add(1, Ordering::Relaxed);
                        }
                        if resp.status != class.expected_status() {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                            eprintln!(
                                "class {class:?}: expected {}, got {} — {}",
                                class.expected_status(),
                                resp.status,
                                resp.body
                            );
                        }
                        samples.push((class.bench_tag(), ns));
                    }
                    Err(_) => {
                        io_failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            samples
        }));
    }
    let mut samples: Vec<(&'static str, u64)> = Vec::with_capacity(args.requests);
    for h in handles {
        if let Ok(s) = h.join() {
            samples.extend(s);
        }
    }
    let wall = started.elapsed();
    if let Some(server) = server {
        server.shutdown();
    }

    let mut all: Vec<u64> = samples.iter().map(|&(_, ns)| ns).collect();
    all.sort_unstable();
    let p50 = percentile(&all, 50);
    let p99 = percentile(&all, 99);

    // BENCH_SERVE.json: one bench-ratchet-style row per line.
    let size = args.requests;
    let mut rows = vec![
        bench_row("serve/latency", "overall_p50", size, p50),
        bench_row("serve/latency", "overall_p99", size, p99),
    ];
    let mut tags: Vec<&'static str> = samples.iter().map(|&(t, _)| t).collect();
    tags.sort_unstable();
    tags.dedup();
    for tag in tags {
        let mut v: Vec<u64> = samples
            .iter()
            .filter(|&&(t, _)| t == tag)
            .map(|&(_, ns)| ns)
            .collect();
        v.sort_unstable();
        rows.push(bench_row("serve/latency", tag, size, percentile(&v, 50)));
    }
    let doc = format!("[\n{}\n]\n", rows.join(",\n"));
    if let Err(e) = std::fs::write(&args.out, &doc) {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    }

    if let (Some(path), Some(r)) = (&args.metrics_out, &recorder) {
        if let Err(e) = r.snapshot().write_json(path) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }

    // Cost-admission soundness gate: when self-hosting with a
    // recorder, the server's static work bounds must never have been
    // overrun by actual execution (DESIGN.md §11).
    let overruns = recorder
        .as_ref()
        .map_or(0, |r| r.counter_value("serve.cost.overrun"));
    if overruns > 0 {
        eprintln!("serve.cost.overrun = {overruns}: static work bound exceeded at runtime");
    }

    let v = violations.load(Ordering::Relaxed);
    let m = mismatches.load(Ordering::Relaxed);
    let io = io_failures.load(Ordering::Relaxed);
    if !args.quiet {
        println!(
            "{} requests in {:.2}s ({:.0} req/s), p50 {}µs, p99 {}µs",
            samples.len(),
            wall.as_secs_f64(),
            samples.len() as f64 / wall.as_secs_f64(),
            p50 / 1_000,
            p99 / 1_000,
        );
        println!("admission-soundness violations: {v}, status mismatches: {m}, io failures: {io}");
        println!("wrote {}", args.out);
    }
    if v > 0 || m > 0 || overruns > 0 || io > samples.len() as u64 / 100 {
        std::process::exit(1);
    }
}

fn bench_row(group: &str, bench: &str, size: usize, median_ns: u64) -> String {
    // Key-colon-space shape matches BENCH_refine.json so `xtask
    // bench-ratchet` can consume both artifacts with one line parser.
    format!(
        r#"  {{"group": "{group}", "bench": "{bench}", "size": {size}, "median_ns": {median_ns}}}"#
    )
}
