//! The `serve` binary: starts the analyzer-gated query service and
//! runs until killed.
//!
//! ```text
//! serve [--addr 127.0.0.1:7171] [--workers N] [--fuel-default N]
//!       [--fuel-max N] [--no-cache] [--no-vm] [--verify-hits]
//! ```

use recdb_serve::{ServeConfig, Server};

fn main() {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7171".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--addr" => cfg.addr = take("--addr"),
            "--workers" => cfg.workers = parse(&take("--workers"), "--workers"),
            "--fuel-default" => cfg.fuel_default = parse(&take("--fuel-default"), "--fuel-default"),
            "--fuel-max" => cfg.fuel_max = parse(&take("--fuel-max"), "--fuel-max"),
            "--no-cache" => cfg.cache = false,
            "--no-vm" => cfg.vm = false,
            "--verify-hits" => cfg.verify_hits = true,
            "--help" | "-h" => {
                println!(
                    "serve — analyzer-gated query service\n\
                     options: --addr A --workers N --fuel-default N --fuel-max N --no-cache --no-vm --verify-hits"
                );
                return;
            }
            other => {
                eprintln!("unknown option {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    match Server::start(cfg) {
        Ok(server) => {
            println!("listening on {}", server.addr());
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{what}: cannot parse {s:?}");
        std::process::exit(2);
    })
}
