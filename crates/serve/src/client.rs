//! A minimal HTTP/1.1 client for the wire protocol — what the load
//! generator, the protocol test suite, and the conformance ledger use
//! to talk to a [`Server`](crate::server::Server).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One parsed response.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The body, as text (the server only speaks JSON).
    pub body: String,
}

/// Why a round-trip failed.
#[derive(Debug)]
pub enum ClientError {
    /// A transport error.
    Io(std::io::Error),
    /// The server's bytes are not a well-formed response.
    Malformed(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Malformed(why) => write!(f, "malformed response: {why}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A keep-alive connection.
pub struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    /// Connects.
    pub fn connect(addr: SocketAddr) -> Result<Conn, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Conn {
            writer: stream,
            reader,
        })
    }

    /// Sends one request and reads the response. `close` asks the
    /// server to close the connection afterwards.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        close: bool,
    ) -> Result<Response, ClientError> {
        let conn = if close { "connection: close\r\n" } else { "" };
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n{conn}\r\n{body}",
            body.len(),
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `POST` with a JSON body (keep-alive).
    pub fn post(&mut self, path: &str, body: &str) -> Result<Response, ClientError> {
        self.request("POST", path, body, false)
    }

    /// `GET` (keep-alive).
    pub fn get(&mut self, path: &str) -> Result<Response, ClientError> {
        self.request("GET", path, "", false)
    }

    /// Writes raw bytes without reading a response — for tests that
    /// drop the connection mid-request.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one response off the wire (used after [`Conn::send_raw`]).
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let status_line = self.read_line()?;
        let mut parts = status_line.split(' ');
        let status: u16 = match (parts.next(), parts.next()) {
            (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
                .parse()
                .map_err(|_| ClientError::Malformed("bad status code"))?,
            _ => return Err(ClientError::Malformed("bad status line")),
        };
        let mut content_length: usize = 0;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| ClientError::Malformed("bad content-length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Response {
            status,
            body: String::from_utf8(body).map_err(|_| ClientError::Malformed("non-utf8 body"))?,
        })
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut raw = Vec::new();
        self.reader.read_until(b'\n', &mut raw)?;
        if raw.last() == Some(&b'\n') {
            raw.pop();
            if raw.last() == Some(&b'\r') {
                raw.pop();
            }
        } else if raw.is_empty() {
            return Err(ClientError::Malformed("connection closed mid-response"));
        }
        String::from_utf8(raw).map_err(|_| ClientError::Malformed("non-utf8 response head"))
    }
}

/// One-shot `POST` over a fresh `Connection: close` connection — the
/// load generator's request shape.
pub fn post_once(addr: SocketAddr, path: &str, body: &str) -> Result<Response, ClientError> {
    Conn::connect(addr)?.request("POST", path, body, true)
}
