//! `recdb-serve` — an analyzer-gated concurrent query service for the
//! QL family.
//!
//! The server accepts QL/QLhs/QLf+ programs and L⁻ formulas over a
//! minimal HTTP/1.1 + JSON wire protocol (both hand-rolled; the crate
//! is dependency-free beyond the workspace). Every query passes
//! [`recdb_analyze::analyze_full`] at admission, and the analyzer's
//! verdicts *are* the scheduling policy:
//!
//! * proved `Terminates {iterations}` → run under an **exact**
//!   iteration budget (the proved figure, plus per-loop bounds) —
//!   exceeding it at runtime is an admission-soundness violation,
//!   counted and surfaced, never absorbed;
//! * termination `Unknown` → run under **fuel** with cooperative
//!   preemption at loop heads;
//! * `Diverges` / `Unsafe` → **rejected**, with the analyzer's span
//!   diagnostics serialized into the error response;
//! * `Generic {fixed}` (+ proved safety and termination) → the result
//!   is **cacheable** across tenants, keyed by the canonical
//!   ≅_B-class fingerprint of the database slice
//!   ([`cache::canonicalize_finite`]).
//!
//! Module map: [`json`] (parser/renderer) → [`http`] (wire framing) →
//! [`proto`] (typed requests, validation, deterministic result
//! rendering) → [`admit`] (analysis → plan) → [`exec`] (the counted,
//! preemptible statement executor) → [`cache`] (canonicalization +
//! sharded result cache) → [`server`] (accept loop, worker pool,
//! routing) → [`client`] (the test/loadgen client).

#![warn(missing_docs)]

pub mod admit;
pub mod cache;
pub mod client;
pub mod exec;
pub mod http;
pub mod json;
pub mod proto;
pub mod server;

pub use client::{post_once, ClientError, Conn, Response};
pub use server::{ServeConfig, Server};
