//! The concurrent server: accept loop, worker pool, routing, and the
//! admission-gated execution path.
//!
//! Threading model: one accept thread pushes connections onto an mpsc
//! channel; `workers` threads pull connections and drive them to
//! completion (keep-alive requests run back-to-back on one worker).
//! Each worker owns a private shard of `HsInterp` instances — the
//! interpreter's canonical-representative caches are per-worker, so
//! the hot read path takes no locks at all. The only shared mutable
//! state is the sharded cross-tenant [`ResultCache`].

use crate::admit::{admit, Admission, AdmitLimits, AdmitOutcome, Plan};
use crate::cache::{canonicalize_finite, CachedResult, ResultCache};
use crate::exec::{run_scheduled, Budget, ExecEnd, GuardEval};
use crate::http::{read_request, write_response, HttpError, ReadOutcome, Request};
use crate::json::{esc, parse, Json};
use crate::proto::{
    build_hs, fcf_result_json, result_json, DbSpec, FormulaRequest, QueryRequest, RaRequest,
};
use recdb_analyze::{analyze_formula, CostEnv, Diagnostic};
use recdb_core::{Elem, QueryOutcome};
use recdb_hsdb::HsDatabase;
use recdb_logic::{finite_as_db, LMinusQuery};
use recdb_qlhs::{Dialect, FcfInterp, FcfVal, FinInterp, HsInterp, Permutation, Val};
use recdb_vm::{compile, exec_scheduled, verify, LowerOpts, VmBackend, VmBudget, VmEnd, VmProg};
use std::collections::{BTreeMap, HashMap};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Worker thread count.
    pub workers: usize,
    /// Head (request line + headers) size limit, bytes.
    pub max_head: usize,
    /// Body size limit, bytes.
    pub max_body: usize,
    /// Fuel granted to fuel-mode requests that do not ask for a budget.
    pub fuel_default: u64,
    /// Hard ceiling on any fuel budget (also the term-evaluation fuel
    /// for exact-mode runs).
    pub fuel_max: u64,
    /// Enable the cross-tenant result cache.
    pub cache: bool,
    /// Differentially verify every cache hit against a fresh
    /// evaluation (the soak suite and ledger run with this on).
    pub verify_hits: bool,
    /// Socket read timeout in milliseconds (bounds how long an idle
    /// keep-alive connection can pin a worker; `0` disables).
    pub read_timeout_ms: u64,
    /// Execute verifier-accepted programs on the register VM
    /// (`recdb-vm`). Any compile obstruction or verifier rejection
    /// falls back to the tree-walkers with byte-identical behavior, so
    /// this flag only trades speed, never answers.
    pub vm: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_head: 16 * 1024,
            max_body: 1 << 20,
            fuel_default: 100_000,
            fuel_max: 10_000_000,
            cache: true,
            verify_hits: false,
            read_timeout_ms: 1_000,
            vm: true,
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    cache: ResultCache,
    /// Raised on shutdown: executors stop at the next loop head.
    preempt: AtomicBool,
}

/// A running server. Dropping it shuts it down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the accept/worker threads.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: ResultCache::new(cfg.workers.max(1) * 4),
            preempt: AtomicBool::new(false),
            cfg,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::new();
        for _ in 0..shared.cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&rx, &shared)));
        }
        {
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || {
                accept_loop(&listener, &tx, &stop, &shared);
            }));
        }
        Ok(Server {
            addr,
            shared,
            stop,
            threads,
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Entries currently in the result cache.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Stops accepting, preempts running programs at the next loop
    /// head, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.preempt.store(true, Ordering::SeqCst);
        // Wake the accept thread out of `accept()`.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, tx: &Sender<TcpStream>, stop: &AtomicBool, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    return; // tx drops here; workers drain and exit
                }
                recdb_obs::count("serve.connections", 1);
                if shared.cfg.read_timeout_ms > 0 {
                    let _ = stream
                        .set_read_timeout(Some(Duration::from_millis(shared.cfg.read_timeout_ms)));
                }
                if tx.send(stream).is_err() {
                    return;
                }
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Per-worker interpreter shard: `HsInterp` canonical caches persist
/// across requests, keyed by the database descriptor, with lock-free
/// access (the worker owns them outright).
struct WorkerState {
    hs: HashMap<String, HsInterp<'static>>,
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, shared: &Arc<Shared>) {
    let mut ws = WorkerState { hs: HashMap::new() };
    loop {
        let stream = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            guard.recv()
        };
        match stream {
            Ok(s) => handle_connection(s, shared, &mut ws),
            Err(_) => return, // sender dropped: shutting down
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared, ws: &mut WorkerState) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let req = match read_request(&mut reader, shared.cfg.max_head, shared.cfg.max_body) {
            Ok(ReadOutcome::Request(r)) => r,
            Ok(ReadOutcome::Closed) => return,
            Err(HttpError::Disconnected) => {
                recdb_obs::count("serve.conn_drops", 1);
                return;
            }
            Err(HttpError::Malformed(why)) => {
                recdb_obs::count("serve.http_errors", 1);
                let body = format!("{{\"error\":\"{}\",\"status\":\"error\"}}", esc(why));
                let _ = write_response(&mut writer, 400, &body, false);
                return;
            }
            Err(HttpError::TooLarge { limit }) => {
                recdb_obs::count("serve.http_errors", 1);
                let body = format!(
                    "{{\"error\":\"request exceeds the {limit}-byte limit\",\"status\":\"error\"}}"
                );
                let _ = write_response(&mut writer, 413, &body, false);
                return;
            }
            Err(HttpError::Io(_)) => return,
        };
        let keep = !req.wants_close();
        let _t = recdb_obs::span("serve.request.ns");
        recdb_obs::count("serve.requests", 1);
        let (status, body) = match catch_unwind(AssertUnwindSafe(|| route(&req, shared, ws))) {
            Ok(ok) => ok,
            Err(_) => {
                recdb_obs::count("serve.panics", 1);
                (
                    500,
                    "{\"error\":\"internal panic\",\"status\":\"error\"}".to_string(),
                )
            }
        };
        drop(_t);
        if write_response(&mut writer, status, &body, keep).is_err() || !keep {
            return;
        }
    }
}

fn route(req: &Request, shared: &Shared, ws: &mut WorkerState) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/health") => (200, "{\"status\":\"ok\"}".to_string()),
        ("POST", "/v1/query") => handle_query(&req.body, shared, ws),
        ("POST", "/v1/ra") => handle_ra(&req.body, shared, ws),
        ("POST", "/v1/formula") => handle_formula(&req.body),
        ("GET", "/v1/query")
        | ("GET", "/v1/ra")
        | ("GET", "/v1/formula")
        | ("POST", "/v1/health") => (
            405,
            "{\"error\":\"method not allowed\",\"status\":\"error\"}".to_string(),
        ),
        _ => (
            404,
            "{\"error\":\"no such endpoint\",\"status\":\"error\"}".to_string(),
        ),
    }
}

fn bad_request(msg: &str) -> (u16, String) {
    recdb_obs::count("serve.bad_requests", 1);
    (
        400,
        format!("{{\"error\":\"{}\",\"status\":\"error\"}}", esc(msg)),
    )
}

fn decode_body(body: &[u8]) -> Result<Json, (u16, String)> {
    let text = std::str::from_utf8(body).map_err(|_| bad_request("body is not UTF-8"))?;
    parse(text).map_err(|e| bad_request(&format!("invalid JSON at byte {}: {}", e.at, e.msg)))
}

/// How the cache participates in one request.
enum CacheMode<'a> {
    /// Caching off (disabled, opted out, or not provably cacheable).
    Off,
    /// Cacheable but the slice exceeds the canonicalization limit.
    Bypass,
    /// Keyed: `transport` maps this slice onto the canonical form
    /// (`None` = identity, for descriptor-keyed infinite slices).
    Keyed {
        key: String,
        transport: Option<&'a Permutation>,
    },
}

impl CacheMode<'_> {
    fn label(&self, hit: bool) -> &'static str {
        match self {
            CacheMode::Off => "off",
            CacheMode::Bypass => "bypass",
            CacheMode::Keyed { .. } if hit => "hit",
            CacheMode::Keyed { .. } => "miss",
        }
    }
}

fn ok_body(cache: &str, iterations: u64, mode: &str, result: &str) -> String {
    format!(
        "{{\"cache\":\"{cache}\",\"iterations\":{iterations},\"mode\":\"{mode}\",\"result\":{result},\"status\":\"ok\"}}"
    )
}

fn handle_query(body: &[u8], shared: &Shared, ws: &mut WorkerState) -> (u16, String) {
    let json = match decode_body(body) {
        Ok(j) => j,
        Err(resp) => return resp,
    };
    let req = match QueryRequest::decode(&json) {
        Ok(r) => r,
        Err(e) => return bad_request(&e.0),
    };
    execute_query(&req, shared, ws)
}

/// Admission, cache participation, and execution for one decoded
/// query — shared by `/v1/query` and (after RA compilation) `/v1/ra`.
fn execute_query(req: &QueryRequest, shared: &Shared, ws: &mut WorkerState) -> (u16, String) {
    let dialect = req.db.dialect();
    let schema = match req.db.schema() {
        Ok(s) => s,
        Err(e) => return bad_request(&e.0),
    };
    let limits = AdmitLimits {
        fuel_default: shared.cfg.fuel_default,
        fuel_max: shared.cfg.fuel_max,
    };
    let admission = {
        let _t = recdb_obs::span("serve.stage.admit.ns");
        admit(&req.program, &schema, dialect, req.fuel, &limits)
    };
    let adm = match admission {
        AdmitOutcome::Admitted(a) => a,
        AdmitOutcome::Rejected {
            reasons,
            diagnostics_json,
        } => {
            let tags: Vec<String> = reasons.iter().map(|r| format!("\"{r}\"")).collect();
            return (
                422,
                format!(
                    "{{\"diagnostics\":{diagnostics_json},\"reasons\":[{}],\"status\":\"rejected\"}}",
                    tags.join(",")
                ),
            );
        }
    };

    // Decide how the cache participates. A slice is keyed either by
    // its canonical ≅-form (finite) or its literal descriptor
    // (family/cells/fcf, whose wire form is already canonical).
    let canon = match (&adm.cache_fixed, &req.db) {
        (Some(fixed), DbSpec::Finite(st)) if shared.cfg.cache && !req.no_cache => {
            Some(canonicalize_finite(st, fixed))
        }
        _ => None,
    };
    let mode = match (&adm.cache_fixed, &req.db) {
        _ if !shared.cfg.cache || req.no_cache => CacheMode::Off,
        (None, _) => CacheMode::Off,
        (Some(_), DbSpec::Finite(_)) => match &canon {
            Some(Some(c)) => CacheMode::Keyed {
                key: cache_key(dialect, &adm, &c.key),
                transport: Some(&c.to_canon),
            },
            _ => {
                recdb_obs::count("serve.cache.bypass", 1);
                CacheMode::Bypass
            }
        },
        (Some(_), db) => CacheMode::Keyed {
            key: cache_key(dialect, &adm, &db.descriptor()),
            transport: None,
        },
    };

    let work_cap = predicted_work(&adm, &req.db);

    // Compile + verify for the register VM. The compiler is untrusted;
    // only verifier-accepted bytecode runs, and any obstruction or
    // rejection falls back to the tree-walkers (the `VM-DIFF` ledger
    // check proves the two paths byte-identical, so the fallback is
    // unobservable from outside).
    let vm_prog = if shared.cfg.vm {
        let _t = recdb_obs::span("serve.stage.vm.ns");
        compile(
            &adm.prog,
            &schema,
            dialect,
            &adm.analysis.termination,
            &LowerOpts::default(),
        )
        .ok()
        .filter(|vm| {
            verify(
                vm,
                &adm.prog,
                &schema,
                dialect,
                &adm.analysis.termination,
                Some(&adm.analysis.cost.verdict),
            )
            .is_ok()
        })
    } else {
        None
    };
    if shared.cfg.vm && vm_prog.is_none() {
        recdb_obs::count("serve.vm.fallbacks", 1);
    }
    let vm_prog = vm_prog.as_ref();

    let _t = recdb_obs::span("serve.stage.execute.ns");
    match &req.db {
        DbSpec::Finite(st) => {
            let mut interp = FinInterp::new(st);
            interp.set_seminaive(true);
            serve_rel(&mut interp, dialect, &adm, vm_prog, shared, &mode, work_cap)
        }
        DbSpec::Family(_) | DbSpec::Cells(_) => match worker_hs_interp(ws, &req.db) {
            Some(descr) => match ws.hs.get_mut(&descr) {
                Some(interp) => serve_rel(interp, dialect, &adm, vm_prog, shared, &mode, work_cap),
                None => internal("worker shard lookup failed"),
            },
            None => {
                // Registry full: build a throwaway database.
                match build_hs(&req.db) {
                    Some(hs) => {
                        let mut interp = HsInterp::new(&hs);
                        interp.set_seminaive(true);
                        serve_rel(&mut interp, dialect, &adm, vm_prog, shared, &mode, work_cap)
                    }
                    None => internal("family resolution failed after admission"),
                }
            }
        },
        DbSpec::Fcf(db) => {
            let mut interp = FcfInterp::new(db);
            interp.set_seminaive(true);
            serve_fcf(&mut interp, dialect, &adm, vm_prog, shared, &mode, work_cap)
        }
    }
}

/// A 422 rejection in the `/v1/query` shape, with the RA diagnostic
/// resolved to a line/col through the RA parser's span table.
fn ra_rejection(
    e: &recdb_ra::RaError,
    source: &str,
    spans: &recdb_qlhs::SpanTable,
) -> (u16, String) {
    recdb_obs::count("serve.ra.rejections", 1);
    let mut d = format!(
        "{{\"code\":\"{}\",\"severity\":\"error\",\"message\":\"{}\"",
        e.code,
        esc(&e.message)
    );
    if let Some(span) = spans.enclosing(&e.path) {
        let (line, col) = span.line_col(source);
        d.push_str(&format!(",\"line\":{line},\"col\":{col}"));
    }
    d.push('}');
    let reason = if e.code == "RA05" {
        "ra-unsafe"
    } else {
        "ra-type"
    };
    (
        422,
        format!("{{\"diagnostics\":[{d}],\"reasons\":[\"{reason}\"],\"status\":\"rejected\"}}"),
    )
}

fn handle_ra(body: &[u8], shared: &Shared, ws: &mut WorkerState) -> (u16, String) {
    let json = match decode_body(body) {
        Ok(j) => j,
        Err(resp) => return resp,
    };
    let req = match RaRequest::decode(&json) {
        Ok(r) => r,
        Err(e) => return bad_request(&e.0),
    };
    let schema = match recdb_ra::RaSchema::parse(&req.schema) {
        Ok(s) => s,
        Err(e) => return bad_request(&format!("bad schema: {e}")),
    };
    // The slice must have the schema's shape before anything runs.
    let want: Vec<usize> = (0..schema.rels().len())
        .map(|i| schema.attrs(i).len())
        .collect();
    let got: Vec<usize> = (0..req.db.schema().len())
        .map(|i| req.db.schema().arity(i))
        .collect();
    if want != got {
        return bad_request(&format!(
            "schema/slice arity mismatch: schema {want:?}, slice {got:?}"
        ));
    }
    let (prog, spans) = match recdb_ra::parse_ra_with_spans(&req.query) {
        Ok(ok) => ok,
        Err(e) => {
            recdb_obs::count("serve.ra.rejections", 1);
            let (line, col) = recdb_qlhs::Span {
                start: e.at,
                end: e.at + 1,
            }
            .line_col(&req.query);
            return (
                422,
                format!(
                    "{{\"diagnostics\":[{{\"code\":\"PARSE\",\"severity\":\"error\",\
                     \"message\":\"{}\",\"line\":{line},\"col\":{col}}}],\
                     \"reasons\":[\"parse-error\"],\"status\":\"rejected\"}}",
                    esc(&e.msg)
                ),
            );
        }
    };
    // Typecheck + safety first, then the cost-guided rewriter: the
    // plan that actually runs is the cost-minimal equivalent one
    // (`RA-REWRITE-DIFF` proves the equivalence over the seeded
    // corpus).
    let compiled = match recdb_ra::typecheck(&prog, &schema)
        .and_then(|_| recdb_ra::validate(&prog, &schema))
        .and_then(|()| recdb_ra::optimize_program(&prog, &schema))
        .and_then(|opt| {
            if opt.changed {
                recdb_obs::count("serve.ra.optimized", 1);
            }
            recdb_ra::compile_program(&opt.program, &schema)
        }) {
        Ok(c) => c,
        Err(e) => return ra_rejection(&e, &req.query, &spans),
    };
    recdb_obs::count("serve.ra.queries", 1);
    // From here the request is an ordinary straight-line QLhs query:
    // render the compiled program and reuse the `/v1/query` path
    // (admission, cache, execution) unchanged.
    let qreq = QueryRequest {
        tenant: req.tenant.clone(),
        program: compiled.prog.to_string(),
        db: DbSpec::Finite(req.db),
        fuel: req.fuel,
        no_cache: req.no_cache,
    };
    let (status, body) = execute_query(&qreq, shared, ws);
    if status == 200 {
        let attrs: Vec<String> = compiled
            .attrs
            .iter()
            .map(|a| format!("\"{}\"", esc(a)))
            .collect();
        (
            200,
            format!("{{\"attrs\":[{}],{}", attrs.join(","), &body[1..]),
        )
    } else {
        (status, body)
    }
}

fn internal(msg: &str) -> (u16, String) {
    (
        500,
        format!("{{\"error\":\"{}\",\"status\":\"error\"}}", esc(msg)),
    )
}

fn cache_key(dialect: Dialect, adm: &Admission, db_key: &str) -> String {
    let fixed: Vec<String> = adm
        .cache_fixed
        .iter()
        .flatten()
        .map(|c| c.to_string())
        .collect();
    format!(
        "{}|{}|f{}|{}",
        dialect.name(),
        adm.prog,
        fixed.join(","),
        db_key
    )
}

fn budget_for<'a>(plan: &'a Plan, fuel_max: u64, work_cap: Option<u64>) -> Budget<'a> {
    static NO_BOUNDS: BTreeMap<Vec<u32>, u64> = BTreeMap::new();
    match plan {
        Plan::Exact { iterations, bounds } => Budget {
            bounds,
            total_cap: *iterations,
            fuel: fuel_max,
            work_cap,
        },
        Plan::Fueled { fuel } => Budget {
            bounds: &NO_BOUNDS,
            total_cap: u64::MAX,
            fuel: *fuel,
            work_cap,
        },
    }
}

/// Instantiates the admission's symbolic work bound at the request's
/// actual database, yielding a hard per-request work cap (DESIGN.md
/// §11): `n` maps to the backend's base-set size and `rᵢ` to relation
/// `i`'s stored size.
///
/// Only backends with a sound finite base size participate — finite
/// structures (`n` = |universe|) and fcf slices (`n` = |Df|: the
/// interpreter materializes `E` as the diagonal over Df and `↑` as a
/// product with Df, so Df's size is exactly what the polynomial's `n`
/// counts). Family/cells slices have no finite `n` and run unmetered.
fn predicted_work(adm: &Admission, db: &DbSpec) -> Option<u64> {
    let work = adm.analysis.cost.work()?;
    let env = match db {
        DbSpec::Finite(st) => CostEnv::new(
            st.universe().len() as u64,
            (0..st.schema().len())
                .map(|i| st.relation(i).len() as u64)
                .collect(),
        ),
        DbSpec::Fcf(fcf) => CostEnv::new(
            fcf.df().len() as u64,
            fcf.relations()
                .iter()
                .map(|r| r.finite_part().len() as u64)
                .collect(),
        ),
        DbSpec::Family(_) | DbSpec::Cells(_) => return None,
    };
    let w = work.eval(&env);
    recdb_obs::observe("serve.cost.predicted_work", w);
    Some(w)
}

/// Runs an admitted program: on the register VM when a
/// verifier-accepted compilation is in hand, on the tree-walking
/// counted executor otherwise. The two paths are event-for-event
/// equivalent (same guards, same fuel ticks, same scheduling ends), so
/// callers never observe which one ran.
fn run_admitted<B>(
    b: &mut B,
    dialect: Dialect,
    adm: &Admission,
    vm: Option<&VmProg>,
    budget: &Budget<'_>,
    preempt: &AtomicBool,
) -> crate::exec::ExecResult<<B as GuardEval>::V>
where
    B: GuardEval + VmBackend<V = <B as GuardEval>::V>,
{
    let Some(prog) = vm else {
        return run_scheduled(b, dialect, &adm.prog, budget, preempt);
    };
    recdb_obs::count("serve.vm.runs", 1);
    let vb = VmBudget {
        bounds: budget.bounds,
        total_cap: budget.total_cap,
        fuel: budget.fuel,
        work_cap: budget.work_cap,
    };
    let r = exec_scheduled(b, prog, &vb, preempt);
    let end = match r.end {
        VmEnd::Done(v) => ExecEnd::Done(v),
        VmEnd::Errored(e) => ExecEnd::Errored(e),
        VmEnd::OutOfFuel => ExecEnd::OutOfFuel,
        VmEnd::Preempted => ExecEnd::Preempted,
        VmEnd::BoundExceeded { path, bound } => ExecEnd::BoundExceeded { path, bound },
        VmEnd::TotalExceeded { cap } => ExecEnd::TotalExceeded { cap },
        VmEnd::WorkExceeded { cap } => ExecEnd::WorkExceeded { cap },
    };
    crate::exec::ExecResult {
        end,
        iterations: r.iterations,
        work: r.work,
    }
}

/// Transports a relation value through `π` (forward) or `π⁻¹`.
fn transport_val(v: &Val, p: &Permutation, forward: bool) -> Val {
    Val {
        rank: v.rank,
        tuples: v
            .tuples
            .iter()
            .map(|t| t.map(|e: Elem| if forward { p.apply(e) } else { p.apply_inv(e) }))
            .collect(),
    }
}

/// The shared post-execution path for relation-valued backends
/// (`FinInterp`/`HsInterp`): cache lookup, execution, cache fill, and
/// response rendering.
fn serve_rel<B: GuardEval<V = Val> + VmBackend<V = Val>>(
    b: &mut B,
    dialect: Dialect,
    adm: &Admission,
    vm: Option<&VmProg>,
    shared: &Shared,
    mode: &CacheMode<'_>,
    work_cap: Option<u64>,
) -> (u16, String) {
    if let CacheMode::Keyed { key, transport } = mode {
        if let Some(entry) = shared.cache.get(key) {
            if let CachedResult::Rel(qk) = &*entry {
                recdb_obs::count("serve.cache.hits", 1);
                let answer = match transport {
                    Some(p) => transport_val(qk, p, false),
                    None => qk.clone(),
                };
                let rendered = result_json(&answer);
                if shared.cfg.verify_hits {
                    let budget = budget_for(&adm.plan, shared.cfg.fuel_max, work_cap);
                    let fresh = run_admitted(b, dialect, adm, vm, &budget, &shared.preempt);
                    match fresh.end {
                        ExecEnd::Done(v) if result_json(&v) == rendered => {
                            recdb_obs::count("serve.cache.verified", 1);
                        }
                        _ => {
                            recdb_obs::count("serve.soundness_violations", 1);
                            shared.cache.evict(key);
                            return (
                                500,
                                "{\"error\":\"cache hit failed differential verification\",\
                                 \"status\":\"error\",\"violation\":\"cache-differential\"}"
                                    .to_string(),
                            );
                        }
                    }
                }
                return (200, ok_body("hit", 0, adm.plan.mode(), &rendered));
            }
        }
        recdb_obs::count("serve.cache.misses", 1);
    }
    let budget = budget_for(&adm.plan, shared.cfg.fuel_max, work_cap);
    let r = run_admitted(b, dialect, adm, vm, &budget, &shared.preempt);
    match r.end {
        ExecEnd::Done(v) => {
            recdb_obs::observe("serve.iterations", r.iterations);
            if let CacheMode::Keyed { key, transport } = mode {
                let canonical = match transport {
                    Some(p) => transport_val(&v, p, true),
                    None => v.clone(),
                };
                shared.cache.put(key, CachedResult::Rel(canonical));
            }
            (
                200,
                ok_body(
                    mode.label(false),
                    r.iterations,
                    adm.plan.mode(),
                    &result_json(&v),
                ),
            )
        }
        end => error_response(&end, r.iterations, &adm.plan),
    }
}

/// The fcf twin of [`serve_rel`] (identity transport only — fcf slices
/// are descriptor-keyed).
fn serve_fcf(
    b: &mut FcfInterp<'_>,
    dialect: Dialect,
    adm: &Admission,
    vm: Option<&VmProg>,
    shared: &Shared,
    mode: &CacheMode<'_>,
    work_cap: Option<u64>,
) -> (u16, String) {
    if let CacheMode::Keyed { key, .. } = mode {
        if let Some(entry) = shared.cache.get(key) {
            if let CachedResult::Fcf(qk) = &*entry {
                recdb_obs::count("serve.cache.hits", 1);
                let rendered = fcf_result_json(qk);
                if shared.cfg.verify_hits {
                    let budget = budget_for(&adm.plan, shared.cfg.fuel_max, work_cap);
                    let fresh = run_admitted(b, dialect, adm, vm, &budget, &shared.preempt);
                    match fresh.end {
                        ExecEnd::Done(v) if fcf_result_json(&v) == rendered => {
                            recdb_obs::count("serve.cache.verified", 1);
                        }
                        _ => {
                            recdb_obs::count("serve.soundness_violations", 1);
                            shared.cache.evict(key);
                            return (
                                500,
                                "{\"error\":\"cache hit failed differential verification\",\
                                 \"status\":\"error\",\"violation\":\"cache-differential\"}"
                                    .to_string(),
                            );
                        }
                    }
                }
                return (200, ok_body("hit", 0, adm.plan.mode(), &rendered));
            }
        }
        recdb_obs::count("serve.cache.misses", 1);
    }
    let budget = budget_for(&adm.plan, shared.cfg.fuel_max, work_cap);
    let r = run_admitted(b, dialect, adm, vm, &budget, &shared.preempt);
    match r.end {
        ExecEnd::Done(v) => {
            recdb_obs::observe("serve.iterations", r.iterations);
            if let CacheMode::Keyed { key, .. } = mode {
                shared.cache.put(key, CachedResult::Fcf(v.clone()));
            }
            (
                200,
                ok_body(
                    mode.label(false),
                    r.iterations,
                    adm.plan.mode(),
                    &fcf_result_json(&v),
                ),
            )
        }
        end => error_response::<FcfVal>(&end, r.iterations, &adm.plan),
    }
}

fn error_response<V>(end: &ExecEnd<V>, iterations: u64, plan: &Plan) -> (u16, String) {
    match end {
        ExecEnd::Done(_) => internal("unreachable: Done in error path"),
        ExecEnd::OutOfFuel => {
            recdb_obs::count("serve.preempted", 1);
            let fuel = match plan {
                Plan::Fueled { fuel } => *fuel,
                Plan::Exact { .. } => 0,
            };
            (
                408,
                format!(
                    "{{\"fuel\":{fuel},\"iterations\":{iterations},\"reason\":\"fuel-exhausted\",\"status\":\"preempted\"}}"
                ),
            )
        }
        ExecEnd::Preempted => {
            recdb_obs::count("serve.preempted", 1);
            (
                408,
                format!(
                    "{{\"iterations\":{iterations},\"reason\":\"shutdown\",\"status\":\"preempted\"}}"
                ),
            )
        }
        ExecEnd::Errored(e) => {
            recdb_obs::count("serve.exec_errors", 1);
            (
                422,
                format!(
                    "{{\"error\":\"{}\",\"status\":\"error\"}}",
                    esc(&e.to_string())
                ),
            )
        }
        ExecEnd::BoundExceeded { path, bound } => {
            recdb_obs::count("serve.soundness_violations", 1);
            let path_s: Vec<String> = path.iter().map(|p| p.to_string()).collect();
            (
                500,
                format!(
                    "{{\"bound\":{bound},\"error\":\"proved loop bound exceeded at path [{}]\",\
                     \"status\":\"error\",\"violation\":\"bound-exceeded\"}}",
                    path_s.join(",")
                ),
            )
        }
        ExecEnd::TotalExceeded { cap } => {
            recdb_obs::count("serve.soundness_violations", 1);
            (
                500,
                format!(
                    "{{\"cap\":{cap},\"error\":\"proved whole-program budget exceeded\",\
                     \"status\":\"error\",\"violation\":\"total-exceeded\"}}"
                ),
            )
        }
        ExecEnd::WorkExceeded { cap } => {
            recdb_obs::count("serve.soundness_violations", 1);
            recdb_obs::count("serve.cost.overrun", 1);
            (
                500,
                format!(
                    "{{\"cap\":{cap},\"error\":\"predicted work bound exceeded\",\
                     \"status\":\"error\",\"violation\":\"work-exceeded\"}}"
                ),
            )
        }
    }
}

// --- per-worker HsInterp shards over a process-global leaked registry ---

/// Cap on distinct `HsDatabase` slices the process will pin for the
/// lifetime-erased worker shards. Beyond it, requests fall back to a
/// per-request database (correct, just cold).
const HS_REGISTRY_CAP: usize = 64;

fn hs_registry() -> &'static Mutex<HashMap<String, &'static HsDatabase>> {
    static REG: OnceLock<Mutex<HashMap<String, &'static HsDatabase>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Ensures the worker has a persistent `HsInterp` shard for this
/// slice, returning its descriptor key, or `None` when the registry is
/// full and the caller should build a throwaway database.
fn worker_hs_interp(ws: &mut WorkerState, db: &DbSpec) -> Option<String> {
    let descr = db.descriptor();
    if ws.hs.contains_key(&descr) {
        return Some(descr);
    }
    let leaked: Option<&'static HsDatabase> = {
        let mut reg = match hs_registry().lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        match reg.get(&descr) {
            Some(&hs) => Some(hs),
            None if reg.len() < HS_REGISTRY_CAP => {
                let hs = build_hs(db)?;
                let leaked: &'static HsDatabase = Box::leak(Box::new(hs));
                reg.insert(descr.clone(), leaked);
                Some(leaked)
            }
            None => None,
        }
    };
    let hs = leaked?;
    let mut interp = HsInterp::new(hs);
    interp.set_seminaive(true);
    ws.hs.insert(descr.clone(), interp);
    Some(descr)
}

// --- /v1/formula ---

fn handle_formula(body: &[u8]) -> (u16, String) {
    recdb_obs::count("serve.formula.requests", 1);
    let json = match decode_body(body) {
        Ok(j) => j,
        Err(resp) => return resp,
    };
    let req = match FormulaRequest::decode(&json) {
        Ok(r) => r,
        Err(e) => return bad_request(&e.0),
    };
    let schema = req.db.schema().clone();
    let q = match LMinusQuery::parse(&req.formula, &schema) {
        Ok(q) => q,
        Err(e) => {
            return (
                422,
                format!(
                    "{{\"error\":\"formula parse error: {}\",\"status\":\"rejected\"}}",
                    esc(&e.to_string())
                ),
            )
        }
    };
    // Undefined queries ("undefined" literal) have no body to analyze.
    if let Some(f) = q.body() {
        let report = analyze_formula(f, &schema, q.rank(), true);
        if !report.is_clean() {
            let msgs: Vec<String> = report.diagnostics.iter().map(formula_diag_json).collect();
            return (
                422,
                format!(
                    "{{\"diagnostics\":[{}],\"status\":\"rejected\"}}",
                    msgs.join(",")
                ),
            );
        }
    }
    let db = finite_as_db(&req.db);
    let mut outcomes = Vec::with_capacity(req.tuples.len());
    for t in &req.tuples {
        outcomes.push(match q.eval(&db, t) {
            QueryOutcome::Defined(true) => "\"true\"",
            QueryOutcome::Defined(false) => "\"false\"",
            QueryOutcome::Undefined => "\"undefined\"",
        });
    }
    (
        200,
        format!(
            "{{\"outcomes\":[{}],\"status\":\"ok\"}}",
            outcomes.join(",")
        ),
    )
}

/// Formula diagnostics carry empty tree paths (no statement spans), so
/// they serialize without `line`/`col`.
fn formula_diag_json(d: &Diagnostic) -> String {
    let mut s = format!(
        "{{\"code\":\"{}\",\"message\":\"{}\",\"severity\":\"{}\"",
        d.code,
        esc(&d.message),
        d.severity()
    );
    if let Some(note) = &d.note {
        s.push_str(&format!(",\"note\":\"{}\"", esc(note)));
    }
    s.push('}');
    s
}
