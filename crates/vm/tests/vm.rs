//! Differential and adversarial tests for the compile → verify → exec
//! pipeline. The semantic oracle is always the tree-walking
//! interpreter with semi-naive evaluation off (the VM recomputes from
//! scratch, as `exec_scheduled`'s serve callers do), compared across a
//! full fuel sweep so fuel accounting must agree at every budget, not
//! just at generous ones.

use recdb_analyze::{
    analyze_full, LoopBound, LoopInfo, LoopKind, TerminationAnalysis, TerminationVerdict,
};
use recdb_core::{CoFiniteRelation, FiniteRelation};
use recdb_core::{Elem, FiniteStructure, Fuel, Tuple};
use recdb_hsdb::{FcfDatabase, FcfRel, FnEquiv, FnTree, HsDatabase};
use recdb_logic::finite_as_db;
use recdb_qlhs::{Dialect, FcfInterp, FinInterp, HsInterp, Prog, Term};
use recdb_vm::{
    compile, exec_plain, exec_scheduled, verify, Inst, LowerOpts, ObstructionKind, VmBudget, VmEnd,
    VmProg,
};
use std::collections::BTreeMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn and(a: Term, b: Term) -> Term {
    Term::And(Box::new(a), Box::new(b))
}
fn not(e: Term) -> Term {
    Term::Not(Box::new(e))
}
fn up(e: Term) -> Term {
    Term::Up(Box::new(e))
}
fn down(e: Term) -> Term {
    Term::Down(Box::new(e))
}
fn swap(e: Term) -> Term {
    Term::Swap(Box::new(e))
}

fn graph() -> FiniteStructure {
    FiniteStructure::graph([0, 1, 2, 3], [(0, 1), (1, 2), (2, 3), (3, 0), (1, 1)])
}

fn discrete_hs(st: &FiniteStructure) -> HsDatabase {
    let universe: Vec<Elem> = st.universe().to_vec();
    let tree = FnTree::new(move |_| universe.clone());
    let equiv = FnEquiv::new(|u: &Tuple, v: &Tuple| u == v);
    HsDatabase::with_computed_reps(finite_as_db(st), Arc::new(tree), Arc::new(equiv))
}

fn fcf() -> FcfDatabase {
    FcfDatabase::new(
        "vm-test",
        vec![
            FcfRel::Finite(FiniteRelation::new(
                2,
                [Tuple::from_values([1, 2]), Tuple::from_values([2, 3])],
            )),
            FcfRel::CoFinite(CoFiniteRelation::new(1, [Tuple::from_values([7])])),
        ],
    )
}

/// Compiles under the program's own full analysis and demands the
/// verifier accept, cost claim included.
fn compiled(p: &Prog, schema: &recdb_core::Schema, dialect: Dialect) -> VmProg {
    let full = analyze_full(p, schema, dialect);
    let vm = compile(p, schema, dialect, &full.termination, &LowerOpts::default())
        .unwrap_or_else(|o| panic!("obstructed: {o}\n{p}"));
    verify(
        &vm,
        p,
        schema,
        dialect,
        &full.termination,
        Some(&full.cost.verdict),
    )
    .unwrap_or_else(|r| panic!("rejected: {r}\n{p}\n{vm}"));
    vm
}

/// A straight-line program exercising every operator plus a dead
/// store (`Y3` is never read).
fn straight() -> Prog {
    Prog::Seq(vec![
        Prog::Assign(0, down(and(Term::E, Term::Rel(0)))),
        Prog::Assign(1, up(Term::Var(0))),
        Prog::Assign(0, and(Term::Var(1), swap(Term::Rel(0)))),
        Prog::Assign(2, Term::E),
        Prog::Assign(0, not(down(Term::Var(0)))),
    ])
}

/// `while |Y2|=0 { Y2 := ↓↓R1 }` — exits after one iteration on a
/// structure with edges, and the body keeps `Y2` at rank 0, so the
/// backedge form's rank-stability fixpoint goes through.
fn one_shot_loop() -> Prog {
    Prog::Seq(vec![
        Prog::Assign(0, Term::E),
        Prog::WhileEmpty(1, Box::new(Prog::Assign(1, down(down(Term::Rel(0)))))),
        Prog::Assign(0, and(up(up(Term::Var(1))), Term::Rel(0))),
    ])
}

/// Fuel-sweep equality: at every budget `0..=cap` the VM and the
/// from-scratch tree-walker agree on the exact `Result`, including
/// which fuel level flips from `Fuel` error to success.
fn sweep_fin(p: &Prog, vm: &VmProg, st: &FiniteStructure, cap: u64) {
    let mut flips = 0;
    let mut last_ok = None;
    for f in 0..=cap {
        let mut tree = FinInterp::new(st);
        tree.set_seminaive(false);
        let want = tree.run(p, &mut Fuel::new(f));
        let got = exec_plain(&mut FinInterp::new(st), vm, &mut Fuel::new(f));
        assert_eq!(got, want, "fuel {f}\n{p}\n{vm}");
        let ok = want.is_ok();
        if last_ok == Some(false) && ok {
            flips += 1;
        }
        last_ok = Some(ok);
    }
    assert_eq!(flips, 1, "the sweep must cross the success threshold once");
}

#[test]
fn fin_plain_matches_tree_walk_at_every_fuel_level() {
    let st = graph();
    for p in [straight(), one_shot_loop()] {
        let vm = compiled(&p, st.schema(), Dialect::Ql);
        sweep_fin(&p, &vm, &st, 300);
    }
}

#[test]
fn hs_plain_matches_tree_walk_at_every_fuel_level() {
    let st = graph();
    let hs = discrete_hs(&st);
    let p = Prog::Seq(vec![
        Prog::Assign(0, down(and(Term::E, Term::Rel(0)))),
        Prog::Assign(1, swap(up(Term::Var(0)))),
        Prog::WhileSingleton(
            0,
            Box::new(Prog::Assign(0, and(Term::Var(0), down(Term::Var(1))))),
        ),
        Prog::Assign(0, not(Term::Var(1))),
    ]);
    let vm = compiled(&p, hs.schema(), Dialect::Qlhs);
    for f in 0..=400 {
        let mut tree = HsInterp::new(&hs);
        tree.set_seminaive(false);
        let want = tree.run(&p, &mut Fuel::new(f));
        let got = exec_plain(&mut HsInterp::new(&hs), &vm, &mut Fuel::new(f));
        assert_eq!(got, want, "fuel {f}\n{p}\n{vm}");
    }
}

#[test]
fn fcf_plain_matches_tree_walk_at_every_fuel_level() {
    let db = fcf();
    let schema = db.schema();
    let p = Prog::Seq(vec![
        Prog::Assign(0, down(down(not(Term::E)))),
        Prog::Assign(1, up(and(Term::E, Term::E))),
        Prog::Assign(0, and(not(up(Term::Var(0))), not(Term::Rel(1)))),
        Prog::WhileFinite(0, Box::new(Prog::Assign(0, not(Term::Var(0))))),
    ]);
    let vm = compiled(&p, &schema, Dialect::QlfPlus);
    for f in 0..=300 {
        let mut tree = FcfInterp::new(&db);
        tree.set_seminaive(false);
        let want = tree.run(&p, &mut Fuel::new(f));
        let got = exec_plain(&mut FcfInterp::new(&db), &vm, &mut Fuel::new(f));
        assert_eq!(got, want, "fuel {f}\n{p}\n{vm}");
    }
}

#[test]
fn proved_bounds_unroll_and_stay_exact() {
    let st = graph();
    let p = one_shot_loop();
    // Hand the compiler a (true) certificate so the loop peels.
    let term = TerminationAnalysis {
        verdict: TerminationVerdict::Terminates { iterations: 2 },
        loops: vec![LoopInfo {
            path: vec![1],
            guard: 1,
            kind: LoopKind::Empty,
            bound: LoopBound::Bounded(2),
            on_spine: true,
        }],
        diagnostics: Vec::new(),
    };
    let vm = compile(&p, st.schema(), Dialect::Ql, &term, &LowerOpts::default())
        .expect("bounded loop compiles");
    assert!(
        vm.loops.iter().any(|l| l.peeled == Some(2)),
        "expected an unrolled loop\n{vm}"
    );
    verify(&vm, &p, st.schema(), Dialect::Ql, &term, None).expect("peeled form verifies");
    sweep_fin(&p, &vm, &st, 300);
}

#[test]
fn dead_store_elision_is_verified_and_invisible() {
    let st = graph();
    let p = straight();
    let full = analyze_full(&p, st.schema(), Dialect::Ql);
    let on = compile(
        &p,
        st.schema(),
        Dialect::Ql,
        &full.termination,
        &LowerOpts::default(),
    )
    .unwrap();
    let off = compile(
        &p,
        st.schema(),
        Dialect::Ql,
        &full.termination,
        &LowerOpts {
            dse: false,
            ..LowerOpts::default()
        },
    )
    .unwrap();
    assert!(on.code.len() < off.code.len(), "DSE must drop instructions");
    let r_on = verify(&on, &p, st.schema(), Dialect::Ql, &full.termination, None).unwrap();
    let r_off = verify(&off, &p, st.schema(), Dialect::Ql, &full.termination, None).unwrap();
    assert_eq!(r_on.elided_stores, 1);
    assert_eq!(r_off.elided_stores, 0);
    sweep_fin(&p, &on, &st, 300);
    sweep_fin(&p, &off, &st, 300);
}

#[test]
fn obstructions_carry_stable_codes() {
    let st = graph();
    let full = |p: &Prog, d| analyze_full(p, st.schema(), d).termination;
    let opts = LowerOpts::default();

    let p = Prog::Assign(0, Term::Rel(7));
    let o = compile(&p, st.schema(), Dialect::Ql, &full(&p, Dialect::Ql), &opts).unwrap_err();
    assert_eq!(o.kind, ObstructionKind::Error);
    assert_eq!(o.kind.code(), "error");

    let p = Prog::Assign(0, and(Term::E, Term::Const(1)));
    let o = compile(&p, st.schema(), Dialect::Ql, &full(&p, Dialect::Ql), &opts).unwrap_err();
    assert_eq!(o.kind, ObstructionKind::Error);

    let p = Prog::WhileSingleton(0, Box::new(Prog::Assign(0, Term::E)));
    let o = compile(&p, st.schema(), Dialect::Ql, &full(&p, Dialect::Ql), &opts).unwrap_err();
    assert_eq!(o.kind.code(), "dialect");

    let db = fcf();
    let p = Prog::Assign(0, up(Term::Rel(0)));
    let o = compile(
        &p,
        &db.schema(),
        Dialect::QlfPlus,
        &full(&p, Dialect::QlfPlus),
        &opts,
    )
    .unwrap_err();
    assert_eq!(o.kind, ObstructionKind::Unprovable);
    assert_eq!(o.kind.code(), "unprovable");
}

/// Every single-field mutation of every instruction must be rejected
/// — the streams here have no redundancy, so any tweak breaks either
/// correspondence, tick accounting, or a register rule.
#[test]
fn verifier_rejects_single_instruction_mutations() {
    let st = graph();
    let p = straight();
    let full = analyze_full(&p, st.schema(), Dialect::Ql);
    let vm = compiled(&p, st.schema(), Dialect::Ql);
    let mut rejected = 0;
    for (i, inst) in vm.code.iter().enumerate() {
        let mut mutants: Vec<Inst> = Vec::new();
        match inst.clone() {
            Inst::E { dst, ticks } => {
                mutants.push(Inst::E {
                    dst: dst + 1,
                    ticks,
                });
                mutants.push(Inst::E {
                    dst,
                    ticks: ticks + 1,
                });
                mutants.push(Inst::Rel { dst, rel: 0, ticks });
            }
            Inst::Rel { dst, rel, ticks } => {
                mutants.push(Inst::Rel {
                    dst,
                    rel: rel + 1,
                    ticks,
                });
                mutants.push(Inst::E { dst, ticks });
            }
            Inst::And { dst, a, b, ticks } => {
                mutants.push(Inst::And {
                    dst,
                    a: b,
                    b: a,
                    ticks,
                });
                mutants.push(Inst::And {
                    dst: dst + 1,
                    a,
                    b,
                    ticks,
                });
            }
            Inst::Not { dst, src, ticks }
            | Inst::Up { dst, src, ticks }
            | Inst::Down { dst, src, ticks }
            | Inst::Swap { dst, src, ticks } => {
                mutants.push(Inst::Down {
                    dst,
                    src: src + 1,
                    ticks,
                });
                mutants.push(Inst::Nop { ticks });
            }
            Inst::Commit { src } => {
                mutants.push(Inst::Commit { src: src + 1 });
                mutants.push(Inst::Nop { ticks: 0 });
            }
            Inst::Halt { ticks } => {
                mutants.push(Inst::Halt { ticks: ticks + 1 });
                mutants.push(Inst::Nop { ticks });
            }
            _ => {}
        }
        for m in mutants {
            let mut bad = vm.clone();
            bad.code[i] = m.clone();
            assert!(
                verify(
                    &bad,
                    &p,
                    st.schema(),
                    Dialect::Ql,
                    &full.termination,
                    Some(&full.cost.verdict),
                )
                .is_err(),
                "mutation at {i}: `{}` → `{m}` was accepted\n{vm}",
                vm.code[i]
            );
            rejected += 1;
        }
    }
    assert!(rejected >= 20, "only {rejected} mutants exercised");
}

#[test]
fn verifier_rejects_forged_cost_claims() {
    use recdb_analyze::{CostVerdict, Poly};
    let st = graph();
    let p = straight();
    let full = analyze_full(&p, st.schema(), Dialect::Ql);
    let vm = compiled(&p, st.schema(), Dialect::Ql);
    // A claim of zero work/cardinality cannot dominate the derived
    // bounds of a program that materializes anything.
    let forged = CostVerdict::Bounded {
        cardinality: Poly::zero(),
        work: Poly::zero(),
    };
    let r = verify(
        &vm,
        &p,
        st.schema(),
        Dialect::Ql,
        &full.termination,
        Some(&forged),
    )
    .unwrap_err();
    assert!(r.reason.contains("dominate"), "{r}");
}

#[test]
fn scheduled_run_reports_the_counted_executor_events() {
    let st = graph();
    let p = one_shot_loop();
    let vm = compiled(&p, st.schema(), Dialect::Ql);
    let quiet = AtomicBool::new(false);
    let no_bounds = BTreeMap::new();

    // Done, with iteration and work accounting.
    let budget = VmBudget {
        bounds: &no_bounds,
        total_cap: 100,
        fuel: 10_000,
        work_cap: None,
    };
    let r = exec_scheduled(&mut FinInterp::new(&st), &vm, &budget, &quiet);
    let mut tree = FinInterp::new(&st);
    tree.set_seminaive(false);
    let want = tree.run(&p, &mut Fuel::new(10_000)).unwrap();
    match r.end {
        VmEnd::Done(v) => assert_eq!(v, want),
        other => panic!("expected Done, got {other:?}"),
    }
    assert_eq!(r.iterations, 1);
    assert!(r.work > 0);

    // A proved per-loop bound of 0 trips first.
    let bounds: BTreeMap<Vec<u32>, u64> = [(vec![1u32], 0u64)].into_iter().collect();
    let budget = VmBudget {
        bounds: &bounds,
        total_cap: 100,
        fuel: 10_000,
        work_cap: None,
    };
    match exec_scheduled(&mut FinInterp::new(&st), &vm, &budget, &quiet).end {
        VmEnd::BoundExceeded { path, bound } => {
            assert_eq!(path, vec![1]);
            assert_eq!(bound, 0);
        }
        other => panic!("expected BoundExceeded, got {other:?}"),
    }

    // Then the total cap, the work cap, preemption, and fuel.
    let budget = VmBudget {
        bounds: &no_bounds,
        total_cap: 0,
        fuel: 10_000,
        work_cap: None,
    };
    match exec_scheduled(&mut FinInterp::new(&st), &vm, &budget, &quiet).end {
        VmEnd::TotalExceeded { cap: 0 } => {}
        other => panic!("expected TotalExceeded, got {other:?}"),
    }
    let budget = VmBudget {
        bounds: &no_bounds,
        total_cap: 100,
        fuel: 10_000,
        work_cap: Some(0),
    };
    match exec_scheduled(&mut FinInterp::new(&st), &vm, &budget, &quiet).end {
        VmEnd::WorkExceeded { cap: 0 } => {}
        other => panic!("expected WorkExceeded, got {other:?}"),
    }
    let stop = AtomicBool::new(true);
    let budget = VmBudget {
        bounds: &no_bounds,
        total_cap: 100,
        fuel: 10_000,
        work_cap: None,
    };
    match exec_scheduled(&mut FinInterp::new(&st), &vm, &budget, &stop).end {
        VmEnd::Preempted => {}
        other => panic!("expected Preempted, got {other:?}"),
    }
    let budget = VmBudget {
        bounds: &no_bounds,
        total_cap: 100,
        fuel: 1,
        work_cap: None,
    };
    match exec_scheduled(&mut FinInterp::new(&st), &vm, &budget, &quiet).end {
        VmEnd::OutOfFuel => {}
        other => panic!("expected OutOfFuel, got {other:?}"),
    }
}

#[test]
fn dump_round_trips_through_the_parser() {
    let st = graph();
    for p in [straight(), one_shot_loop()] {
        let vm = compiled(&p, st.schema(), Dialect::Ql);
        let dump = vm.dump();
        let back = recdb_vm::VmProg::parse_dump(&dump).expect("dump parses");
        assert_eq!(back, vm, "round trip\n{dump}");
    }
}
