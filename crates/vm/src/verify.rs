//! The bytecode verifier: an independent abstract interpreter over the
//! instruction stream.
//!
//! Trust is split deliberately. The compiler ([`crate::lower`]) is a
//! large optimizing pass — register allocation, loop unrolling,
//! dead-store elimination — and is *not* trusted. The verifier is the
//! trusted component: it re-walks the source AST with its own abstract
//! domains while driving a cursor over the instruction stream, and a
//! program executes on the VM only if every instruction is exactly the
//! one the verifier's own derivation demands. Concretely it re-proves:
//!
//! * **rank/arity agreement** — its own rank lattice re-derives every
//!   subterm's rank (loop heads re-fixpointed from scratch) and rejects
//!   any `∩` whose operand ranks could differ, any read of a variable
//!   whose rank is not provable at that point, and any out-of-schema
//!   relation;
//! * **dialect legality** — `Dialect::check` on the AST *and* a
//!   per-guard re-check that `single`/`finite` guards appear only in
//!   their dialects;
//! * **register safety** — every register operand is in frame bounds;
//!   temporaries are written before read and never clobber a value
//!   still held as a pending operand; interior destinations stay out
//!   of the variables' home slots; each assignment root lands exactly
//!   in its variable's home register, followed by its `commit`;
//! * **fuel agreement** — the verifier counts the tree-walkers' entry
//!   ticks itself and checks every instruction's `ticks` field against
//!   its own pending counter;
//! * **loop certificates** — an unrolled loop must peel exactly the
//!   termination prover's `Bounded(b)` certificate (`b` guarded body
//!   copies, a final guard, a trap); a backedge loop must have
//!   verifier-re-derived rank-stable heads, a `back` to its own guard,
//!   and a guard exit one past the backedge;
//! * **the §11 cost obligation** — a per-assignment mirror of the cost
//!   pass's transfer function accumulates a derived work bound; a
//!   claimed [`CostVerdict::Bounded`] is accepted only if the claimed
//!   polynomials coefficient-wise dominate the derived ones.
//!
//! The only analysis shared with the compiler is `recdb_analyze`'s
//! liveness pass, used to re-derive which dead stores *may* be elided
//! (DESIGN.md §12 records it as a shared trusted pass). Elision is
//! then checked structurally: the verifier first tries to match the
//! materialized instruction sequence and falls back to the elided form
//! (no instructions, ticks folded into the next one) only when the
//! store is provably dead, tick-free, and error-free.

use crate::bytecode::{GuardKind, Inst, VmProg};
use recdb_analyze::TerminationAnalysis;
use recdb_analyze::{analyze_dataflow, Bound, CostEnv, CostVerdict, LoopBound, Poly};
use recdb_core::Schema;
use recdb_qlhs::{Dialect, NodePath, Prog, Term};
use std::collections::BTreeSet;
use std::fmt;

/// Why the verifier refused a program. A rejected program is not
/// executable on the VM; callers fall back to the tree-walking
/// interpreters (which agree with the VM by construction, so the
/// fallback is behaviorally invisible).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// Instruction index the cursor had reached when the check failed.
    pub at: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rejected at pc {}: {}", self.at, self.reason)
    }
}

/// What an accepted program proved — the CI artifact payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Instruction count.
    pub instructions: usize,
    /// Frame size (home slots + temporaries).
    pub frame: usize,
    /// Loop-metadata entries (unroll copies included).
    pub loops: usize,
    /// Dead stores the verifier confirmed elided.
    pub elided_stores: usize,
    /// The verifier's own total-work bound, if derivable.
    pub derived_work: Option<String>,
    /// The verifier's own `Y1` cardinality bound, if derivable.
    pub derived_cardinality: Option<String>,
    /// Whether a `Bounded` cost claim was checked for dominance.
    pub claim_checked: bool,
}

/// Surely-finite lattice (the verifier's own copy — deliberately not
/// shared with the compiler).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fin3 {
    Finite,
    Infinite,
    Unknown,
}

impl Fin3 {
    fn join(self, other: Fin3) -> Fin3 {
        if self == other {
            self
        } else {
            Fin3::Unknown
        }
    }
}

/// Per-variable rank/finiteness state.
#[derive(Clone, Debug, PartialEq, Eq)]
struct VState {
    rank: Option<usize>,
    fin: Fin3,
}

impl VState {
    fn unset() -> VState {
        VState {
            rank: Some(0),
            fin: Fin3::Finite,
        }
    }

    fn join(&self, other: &VState) -> VState {
        VState {
            rank: match (self.rank, other.rank) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
            fin: self.fin.join(other.fin),
        }
    }
}

fn join_vars(a: &[VState], b: &[VState]) -> Vec<VState> {
    a.iter().zip(b).map(|(x, y)| x.join(y)).collect()
}

/// Mirror of the cost pass's abstract value (`AbsRank::Top` ↦ `None`;
/// `Bot` cannot arise from the transfer function's outputs).
#[derive(Clone, Debug, PartialEq, Eq)]
struct CAbs {
    rank: Option<usize>,
    bound: Bound,
    finite: bool,
}

impl CAbs {
    fn unset() -> CAbs {
        CAbs {
            rank: Some(0),
            bound: Bound::zero(),
            finite: true,
        }
    }

    fn top() -> CAbs {
        CAbs {
            rank: None,
            bound: Bound::Top,
            finite: false,
        }
    }

    fn join(&self, other: &CAbs) -> CAbs {
        CAbs {
            rank: match (self.rank, other.rank) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
            bound: self.bound.join(&other.bound),
            finite: self.finite && other.finite,
        }
    }
}

fn join_cost(a: &[CAbs], b: &[CAbs]) -> Vec<CAbs> {
    a.iter().zip(b).map(|(x, y)| x.join(y)).collect()
}

fn term_nodes(t: &Term) -> u32 {
    match t {
        Term::E | Term::Rel(_) | Term::Var(_) | Term::Const(_) => 1,
        Term::And(a, b) => 1 + term_nodes(a) + term_nodes(b),
        Term::Not(e) | Term::Up(e) | Term::Down(e) | Term::Swap(e) => 1 + term_nodes(e),
    }
}

/// Of two individually-sound bounds, the nominally smaller (tie-break
/// left) — the cost pass's `∩` rule, mirrored.
fn smaller(a: &Bound, b: &Bound, schema: &Schema) -> Bound {
    match (a, b) {
        (Bound::Top, x) | (x, Bound::Top) => x.clone(),
        (Bound::Poly(pa), Bound::Poly(pb)) => {
            let nominal = CostEnv::nominal(schema);
            if pb.eval(&nominal) < pa.eval(&nominal) {
                b.clone()
            } else {
                a.clone()
            }
        }
    }
}

struct Snapshot {
    pc: usize,
    pending: u32,
    vars: Vec<VState>,
    cost: Vec<CAbs>,
    work: Bound,
    written: Vec<bool>,
    next_loop: usize,
    elided: usize,
}

struct Verify<'a> {
    prog: &'a VmProg,
    schema: &'a Schema,
    dialect: Dialect,
    termination: &'a TerminationAnalysis,
    dead: BTreeSet<NodePath>,
    pc: usize,
    pending: u32,
    vars: Vec<VState>,
    cost: Vec<CAbs>,
    work: Bound,
    written: Vec<bool>,
    next_loop: usize,
    elided: usize,
}

impl Verify<'_> {
    fn snap(&self) -> Snapshot {
        Snapshot {
            pc: self.pc,
            pending: self.pending,
            vars: self.vars.clone(),
            cost: self.cost.clone(),
            work: self.work.clone(),
            written: self.written.clone(),
            next_loop: self.next_loop,
            elided: self.elided,
        }
    }

    fn restore(&mut self, s: Snapshot) {
        self.pc = s.pc;
        self.pending = s.pending;
        self.vars = s.vars;
        self.cost = s.cost;
        self.work = s.work;
        self.written = s.written;
        self.next_loop = s.next_loop;
        self.elided = s.elided;
    }

    fn fetch(&mut self) -> Result<Inst, String> {
        let i = self
            .prog
            .code
            .get(self.pc)
            .cloned()
            .ok_or_else(|| "instruction stream ends mid-program".to_string())?;
        self.pc += 1;
        Ok(i)
    }

    fn ticks(&mut self, got: u32) -> Result<(), String> {
        if got != self.pending {
            return Err(format!(
                "ticks {got} disagree with the verifier's count {}",
                self.pending
            ));
        }
        self.pending = 0;
        Ok(())
    }

    /// Validates a destination register: an assignment root must land
    /// exactly in the home slot, an interior destination must be a
    /// frame temporary that clobbers no held operand.
    fn dst_ok(&mut self, d: usize, root: Option<usize>, held: &[usize]) -> Result<(), String> {
        match root {
            Some(h) => {
                if d != h {
                    return Err(format!("root must write home register r{h}, writes r{d}"));
                }
            }
            None => {
                if d < self.prog.nvars || d >= self.prog.frame {
                    return Err(format!(
                        "interior destination r{d} outside the temporary window {}..{}",
                        self.prog.nvars, self.prog.frame
                    ));
                }
                if held.contains(&d) {
                    return Err(format!("r{d} clobbers a value still held as an operand"));
                }
            }
        }
        if d < self.written.len() {
            self.written[d] = true;
        }
        Ok(())
    }

    /// An operand must be in frame bounds, and a temporary must have
    /// been written on some path before it is read.
    fn src_ok(&self, r: usize) -> Result<(), String> {
        if r >= self.prog.frame {
            return Err(format!("operand r{r} outside the frame"));
        }
        if r >= self.prog.nvars && !self.written[r] {
            return Err(format!("temporary r{r} read before any write"));
        }
        Ok(())
    }

    /// The verifier's own total rank/finiteness transfer (loop
    /// fixpoints and dead-store legality).
    fn abs_term(&self, t: &Term, vars: &[VState]) -> VState {
        let fcf = self.dialect == Dialect::QlfPlus;
        match t {
            Term::E => VState {
                rank: Some(2),
                fin: Fin3::Finite,
            },
            Term::Const(_) => VState {
                rank: Some(1),
                fin: Fin3::Finite,
            },
            Term::Rel(i) => {
                if *i < self.schema.len() {
                    VState {
                        rank: Some(self.schema.arity(*i)),
                        fin: if fcf { Fin3::Unknown } else { Fin3::Finite },
                    }
                } else {
                    VState {
                        rank: None,
                        fin: Fin3::Unknown,
                    }
                }
            }
            Term::Var(v) => vars.get(*v).cloned().unwrap_or_else(VState::unset),
            Term::And(a, b) => {
                let (xa, xb) = (self.abs_term(a, vars), self.abs_term(b, vars));
                VState {
                    rank: match (xa.rank, xb.rank) {
                        (Some(x), Some(y)) if x == y => Some(x),
                        _ => None,
                    },
                    fin: match (xa.fin, xb.fin) {
                        (Fin3::Finite, _) | (_, Fin3::Finite) => Fin3::Finite,
                        (Fin3::Infinite, Fin3::Infinite) => Fin3::Infinite,
                        _ => Fin3::Unknown,
                    },
                }
            }
            Term::Not(e) => {
                let x = self.abs_term(e, vars);
                VState {
                    rank: x.rank,
                    fin: if fcf {
                        match x.fin {
                            Fin3::Finite => Fin3::Infinite,
                            Fin3::Infinite => Fin3::Finite,
                            Fin3::Unknown => Fin3::Unknown,
                        }
                    } else {
                        Fin3::Finite
                    },
                }
            }
            Term::Up(e) => VState {
                rank: self.abs_term(e, vars).rank.map(|k| k + 1),
                fin: Fin3::Finite,
            },
            Term::Down(e) => {
                let x = self.abs_term(e, vars);
                VState {
                    rank: x.rank.map(|k| k.saturating_sub(1)),
                    fin: match x.fin {
                        Fin3::Finite => Fin3::Finite,
                        Fin3::Infinite => match x.rank {
                            Some(k) if k <= 1 => Fin3::Finite,
                            Some(_) => Fin3::Infinite,
                            None => Fin3::Unknown,
                        },
                        Fin3::Unknown => match x.rank {
                            Some(0) | Some(1) => Fin3::Finite,
                            _ => Fin3::Unknown,
                        },
                    },
                }
            }
            Term::Swap(e) => self.abs_term(e, vars),
        }
    }

    fn abs_prog(&self, p: &Prog, vars: &mut Vec<VState>) {
        match p {
            Prog::Assign(v, t) => {
                let s = self.abs_term(t, vars);
                if *v < vars.len() {
                    vars[*v] = s;
                }
            }
            Prog::Seq(ps) => {
                for q in ps {
                    self.abs_prog(q, vars);
                }
            }
            Prog::WhileEmpty(_, body)
            | Prog::WhileSingleton(_, body)
            | Prog::WhileFinite(_, body) => {
                let mut head = vars.clone();
                loop {
                    let mut s = head.clone();
                    self.abs_prog(body, &mut s);
                    let next = join_vars(&head, &s);
                    if next == head {
                        break;
                    }
                    head = next;
                }
                *vars = head;
            }
        }
    }

    /// Data-dependent fuel freedom under the dialect (the dead-store
    /// side condition, re-derived).
    fn tick_free(&self, t: &Term) -> bool {
        let op_ok = match t {
            Term::Not(_) => self.dialect != Dialect::Ql,
            Term::Up(_) => false,
            Term::Down(_) | Term::Swap(_) => self.dialect != Dialect::Qlhs,
            _ => true,
        };
        op_ok
            && match t {
                Term::E | Term::Rel(_) | Term::Var(_) | Term::Const(_) => true,
                Term::And(a, b) => self.tick_free(a) && self.tick_free(b),
                Term::Not(e) | Term::Up(e) | Term::Down(e) | Term::Swap(e) => self.tick_free(e),
            }
    }

    /// The cost pass's transfer function, mirrored over the verifier's
    /// own cost environment (DESIGN.md §11 case table).
    fn cterm(&self, t: &Term) -> CAbs {
        let fcf = self.dialect == Dialect::QlfPlus;
        match t {
            Term::E => CAbs {
                rank: Some(2),
                bound: Bound::of(Poly::base()),
                finite: true,
            },
            Term::Const(_) => CAbs {
                rank: Some(1),
                bound: Bound::of(Poly::constant(1)),
                finite: true,
            },
            Term::Rel(i) => {
                if *i < self.schema.len() {
                    CAbs {
                        rank: Some(self.schema.arity(*i)),
                        bound: Bound::of(Poly::rel(*i)),
                        finite: !fcf,
                    }
                } else {
                    CAbs::top()
                }
            }
            Term::Var(v) => self.cost.get(*v).cloned().unwrap_or_else(CAbs::unset),
            Term::And(a, b) => {
                let (xa, xb) = (self.cterm(a), self.cterm(b));
                let rank = match (xa.rank, xb.rank) {
                    (Some(x), Some(y)) if x == y => Some(x),
                    _ => None,
                };
                let bound = if fcf {
                    if xa.finite {
                        xa.bound.clone()
                    } else if xb.finite {
                        xb.bound.clone()
                    } else {
                        xa.bound.add(&xb.bound)
                    }
                } else {
                    smaller(&xa.bound, &xb.bound, self.schema)
                };
                CAbs {
                    rank,
                    bound,
                    finite: xa.finite || xb.finite,
                }
            }
            Term::Not(e) => {
                let x = self.cterm(e);
                if fcf {
                    CAbs {
                        rank: x.rank,
                        bound: x.bound,
                        finite: false,
                    }
                } else {
                    let bound = match x.rank {
                        Some(k) => {
                            let mut p = Poly::constant(1);
                            for _ in 0..k {
                                p = p.mul(&Poly::base());
                            }
                            Bound::of(p)
                        }
                        None => Bound::Top,
                    };
                    CAbs {
                        rank: x.rank,
                        bound,
                        finite: true,
                    }
                }
            }
            Term::Up(e) => {
                let x = self.cterm(e);
                CAbs {
                    rank: x.rank.map(|k| k + 1),
                    bound: x.bound.mul(&Bound::of(Poly::base())),
                    finite: true,
                }
            }
            Term::Down(e) => {
                let x = self.cterm(e);
                let rank = x.rank.map(|k| k.saturating_sub(1));
                let bound = if rank == Some(0) {
                    Bound::of(Poly::constant(1))
                } else {
                    x.bound
                };
                CAbs {
                    rank,
                    bound,
                    finite: x.finite,
                }
            }
            Term::Swap(e) => self.cterm(e),
        }
    }

    /// Walks a term in post-order, demanding the exact instruction the
    /// verifier's own derivation calls for at each emitting node.
    fn walk_term(
        &mut self,
        t: &Term,
        dst: Option<usize>,
        held: &mut Vec<usize>,
    ) -> Result<(usize, VState), String> {
        self.pending += 1;
        let fcf = self.dialect == Dialect::QlfPlus;
        match t {
            Term::Var(v) => {
                let s = self.vars[*v].clone();
                if s.rank.is_none() {
                    return Err(format!("Y{} has no provable rank here", v + 1));
                }
                match dst {
                    None => Ok((*v, s)),
                    Some(d) => match self.fetch()? {
                        Inst::Copy {
                            dst: id,
                            src,
                            ticks,
                        } => {
                            self.ticks(ticks)?;
                            if src != *v {
                                return Err(format!("copy reads r{src}, expected home r{v}"));
                            }
                            self.src_ok(src)?;
                            self.dst_ok(id, Some(d), held)?;
                            Ok((id, s))
                        }
                        other => Err(format!("expected copy for Y{} root, got `{other}`", v + 1)),
                    },
                }
            }
            Term::E => match self.fetch()? {
                Inst::E { dst: id, ticks } => {
                    self.ticks(ticks)?;
                    self.dst_ok(id, dst, held)?;
                    Ok((
                        id,
                        VState {
                            rank: Some(2),
                            fin: Fin3::Finite,
                        },
                    ))
                }
                other => Err(format!("expected e, got `{other}`")),
            },
            Term::Const(c) => match self.fetch()? {
                Inst::Const {
                    dst: id,
                    val,
                    ticks,
                } => {
                    self.ticks(ticks)?;
                    if val != *c {
                        return Err(format!("const ={val}, expected ={c}"));
                    }
                    self.dst_ok(id, dst, held)?;
                    Ok((
                        id,
                        VState {
                            rank: Some(1),
                            fin: Fin3::Finite,
                        },
                    ))
                }
                other => Err(format!("expected const, got `{other}`")),
            },
            Term::Rel(i) => {
                if *i >= self.schema.len() {
                    return Err(format!("R{} is outside the schema", i + 1));
                }
                match self.fetch()? {
                    Inst::Rel {
                        dst: id,
                        rel,
                        ticks,
                    } => {
                        self.ticks(ticks)?;
                        if rel != *i {
                            return Err(format!("rel #{rel}, expected #{i}"));
                        }
                        self.dst_ok(id, dst, held)?;
                        Ok((
                            id,
                            VState {
                                rank: Some(self.schema.arity(*i)),
                                fin: if fcf { Fin3::Unknown } else { Fin3::Finite },
                            },
                        ))
                    }
                    other => Err(format!("expected rel, got `{other}`")),
                }
            }
            Term::And(a, b) => {
                let (ra, sa) = self.walk_term(a, None, held)?;
                held.push(ra);
                let rbsb = self.walk_term(b, None, held);
                held.pop();
                let (rb, sb) = rbsb?;
                let (ka, kb) = (sa.rank.unwrap_or(0), sb.rank.unwrap_or(0));
                if ka != kb {
                    return Err(format!("∩ of rank {ka} with rank {kb} always errors"));
                }
                match self.fetch()? {
                    Inst::And {
                        dst: id,
                        a: ia,
                        b: ib,
                        ticks,
                    } => {
                        self.ticks(ticks)?;
                        if ia != ra || ib != rb {
                            return Err(format!("and reads r{ia} r{ib}, expected r{ra} r{rb}"));
                        }
                        self.src_ok(ia)?;
                        self.src_ok(ib)?;
                        self.dst_ok(id, dst, held)?;
                        let fin = match (sa.fin, sb.fin) {
                            (Fin3::Finite, _) | (_, Fin3::Finite) => Fin3::Finite,
                            (Fin3::Infinite, Fin3::Infinite) => Fin3::Infinite,
                            _ => Fin3::Unknown,
                        };
                        Ok((
                            id,
                            VState {
                                rank: Some(ka),
                                fin,
                            },
                        ))
                    }
                    other => Err(format!("expected and, got `{other}`")),
                }
            }
            Term::Not(e) => {
                let (rx, sx) = self.walk_term(e, None, held)?;
                let k = sx.rank.unwrap_or(0);
                match self.fetch()? {
                    Inst::Not {
                        dst: id,
                        src,
                        ticks,
                    } => {
                        self.ticks(ticks)?;
                        if src != rx {
                            return Err(format!("not reads r{src}, expected r{rx}"));
                        }
                        self.src_ok(src)?;
                        self.dst_ok(id, dst, held)?;
                        let fin = if fcf {
                            match sx.fin {
                                Fin3::Finite => Fin3::Infinite,
                                Fin3::Infinite => Fin3::Finite,
                                Fin3::Unknown => Fin3::Unknown,
                            }
                        } else {
                            Fin3::Finite
                        };
                        Ok((id, VState { rank: Some(k), fin }))
                    }
                    other => Err(format!("expected not, got `{other}`")),
                }
            }
            Term::Up(e) => {
                let (rx, sx) = self.walk_term(e, None, held)?;
                if fcf {
                    match sx.fin {
                        Fin3::Finite => {}
                        Fin3::Infinite => {
                            return Err("↑ of a surely co-finite value always errors".into())
                        }
                        Fin3::Unknown => return Err("cannot prove the ↑ operand finite".into()),
                    }
                }
                let k = sx.rank.unwrap_or(0) + 1;
                match self.fetch()? {
                    Inst::Up {
                        dst: id,
                        src,
                        ticks,
                    } => {
                        self.ticks(ticks)?;
                        if src != rx {
                            return Err(format!("up reads r{src}, expected r{rx}"));
                        }
                        self.src_ok(src)?;
                        self.dst_ok(id, dst, held)?;
                        Ok((
                            id,
                            VState {
                                rank: Some(k),
                                fin: Fin3::Finite,
                            },
                        ))
                    }
                    other => Err(format!("expected up, got `{other}`")),
                }
            }
            Term::Down(e) => {
                let (rx, sx) = self.walk_term(e, None, held)?;
                let k0 = sx.rank.unwrap_or(0);
                let k = k0.saturating_sub(1);
                match self.fetch()? {
                    Inst::Down {
                        dst: id,
                        src,
                        ticks,
                    } => {
                        self.ticks(ticks)?;
                        if src != rx {
                            return Err(format!("down reads r{src}, expected r{rx}"));
                        }
                        self.src_ok(src)?;
                        self.dst_ok(id, dst, held)?;
                        let fin = match sx.fin {
                            Fin3::Finite => Fin3::Finite,
                            Fin3::Infinite if k0 <= 1 => Fin3::Finite,
                            Fin3::Infinite => Fin3::Infinite,
                            Fin3::Unknown if k0 <= 1 => Fin3::Finite,
                            Fin3::Unknown => Fin3::Unknown,
                        };
                        Ok((id, VState { rank: Some(k), fin }))
                    }
                    other => Err(format!("expected down, got `{other}`")),
                }
            }
            Term::Swap(e) => {
                let (rx, sx) = self.walk_term(e, None, held)?;
                match self.fetch()? {
                    Inst::Swap {
                        dst: id,
                        src,
                        ticks,
                    } => {
                        self.ticks(ticks)?;
                        if src != rx {
                            return Err(format!("swap reads r{src}, expected r{rx}"));
                        }
                        self.src_ok(src)?;
                        self.dst_ok(id, dst, held)?;
                        Ok((id, sx))
                    }
                    other => Err(format!("expected swap, got `{other}`")),
                }
            }
        }
    }

    /// The materialized form of an assignment: the lowered term ending
    /// in the home register, then its `commit`.
    fn walk_assign(&mut self, v: usize, t: &Term) -> Result<(), String> {
        let ca = self.cterm(t);
        let (_, s) = self.walk_term(t, Some(v), &mut Vec::new())?;
        match self.fetch()? {
            Inst::Commit { src } => {
                if src != v {
                    return Err(format!("commit r{src}, expected home r{v}"));
                }
            }
            other => {
                return Err(format!(
                    "expected commit after Y{} root, got `{other}`",
                    v + 1
                ))
            }
        }
        self.vars[v] = s;
        self.work = self.work.add(&ca.bound);
        self.cost[v] = ca;
        Ok(())
    }

    fn walk_prog(&mut self, p: &Prog, path: &mut NodePath) -> Result<(), String> {
        self.pending += 1; // the statement node's entry tick
        match p {
            Prog::Assign(v, t) => {
                let elidable = self.dead.contains(path.as_slice())
                    && self.tick_free(t)
                    && self.abs_term(t, &self.vars).rank.is_some();
                if !elidable {
                    return self.walk_assign(*v, t);
                }
                // The store may be elided. Try the materialized shape
                // first; the first instruction's ticks (or kind)
                // disambiguate, so a failure here is contained to this
                // assignment and we fall back to the elided shape.
                let snap = self.snap();
                match self.walk_assign(*v, t) {
                    Ok(()) => Ok(()),
                    Err(_) => {
                        self.restore(snap);
                        self.pending += term_nodes(t);
                        let s = self.abs_term(t, &self.vars);
                        let ca = self.cterm(t);
                        self.vars[*v] = s;
                        self.cost[*v] = ca;
                        self.elided += 1;
                        Ok(())
                    }
                }
            }
            Prog::Seq(ps) => {
                for (i, q) in ps.iter().enumerate() {
                    path.push(i as u32);
                    let r = self.walk_prog(q, path);
                    path.pop();
                    r?;
                }
                Ok(())
            }
            Prog::WhileEmpty(v, body)
            | Prog::WhileSingleton(v, body)
            | Prog::WhileFinite(v, body) => {
                let kind = match p {
                    Prog::WhileEmpty(..) => GuardKind::Empty,
                    Prog::WhileSingleton(..) => GuardKind::Single,
                    _ => GuardKind::Finite,
                };
                match (kind, self.dialect) {
                    (GuardKind::Empty, _)
                    | (GuardKind::Single, Dialect::Qlhs)
                    | (GuardKind::Finite, Dialect::QlfPlus) => {}
                    _ => return Err(format!("{kind:?} guard is illegal in {:?}", self.dialect)),
                }
                let loop_id = self.next_loop;
                match self.fetch()? {
                    Inst::Enter { loop_id: id, ticks } => {
                        self.ticks(ticks)?;
                        if id != loop_id {
                            return Err(format!("enter L{id}, expected L{loop_id}"));
                        }
                    }
                    other => return Err(format!("expected enter, got `{other}`")),
                }
                let meta = self
                    .prog
                    .loops
                    .get(loop_id)
                    .ok_or_else(|| format!("no metadata for L{loop_id}"))?
                    .clone();
                if meta.path != *path {
                    return Err(format!(
                        "L{loop_id} metadata names path {:?}, loop is at {:?}",
                        meta.path, path
                    ));
                }
                self.next_loop += 1;
                let bound = self
                    .termination
                    .bound_at(path)
                    .map(|l| l.bound)
                    .unwrap_or(LoopBound::Unknown);
                match meta.peeled {
                    Some(b) => {
                        if bound != LoopBound::Bounded(b) {
                            return Err(format!(
                                "peel count {b} is not the prover's certificate ({bound:?})"
                            ));
                        }
                        self.walk_peeled(*v, kind, body, b, loop_id, path)
                    }
                    None => self.walk_backedge(*v, kind, body, loop_id, path),
                }
            }
        }
    }

    fn expect_guard(&mut self, loop_id: usize, v: usize, kind: GuardKind) -> Result<usize, String> {
        match self.fetch()? {
            Inst::Guard {
                loop_id: id,
                var,
                kind: k,
                exit,
            } => {
                if self.pending != 0 {
                    return Err(format!(
                        "{} ticks pending at a guard (guards are fuel-free)",
                        self.pending
                    ));
                }
                if id != loop_id {
                    return Err(format!("guard L{id}, expected L{loop_id}"));
                }
                if var != v {
                    return Err(format!("guard reads r{var}, expected home r{v}"));
                }
                if k != kind {
                    return Err(format!("guard kind {k:?}, expected {kind:?}"));
                }
                Ok(exit)
            }
            other => Err(format!("expected guard, got `{other}`")),
        }
    }

    /// The unrolled form: `b` guarded body copies, a final guard, a
    /// trap. The exit state joins "exited after 0..=b iterations" —
    /// the same join the cost pass's unroller computes.
    fn walk_peeled(
        &mut self,
        v: usize,
        kind: GuardKind,
        body: &Prog,
        b: u64,
        loop_id: usize,
        path: &mut NodePath,
    ) -> Result<(), String> {
        let mut exit_vars = self.vars.clone();
        let mut exit_cost = self.cost.clone();
        let mut exits = Vec::new();
        for _ in 0..b {
            exits.push(self.expect_guard(loop_id, v, kind)?);
            self.pending += 1; // the iteration tick
            path.push(0);
            let r = self.walk_prog(body, path);
            path.pop();
            r?;
            if self.pending > 0 {
                match self.fetch()? {
                    Inst::Nop { ticks } => self.ticks(ticks)?,
                    other => {
                        return Err(format!(
                            "expected nop flushing {} ticks, got `{other}`",
                            self.pending
                        ))
                    }
                }
            }
            exit_vars = join_vars(&exit_vars, &self.vars);
            exit_cost = join_cost(&exit_cost, &self.cost);
        }
        exits.push(self.expect_guard(loop_id, v, kind)?);
        match self.fetch()? {
            Inst::Trap { loop_id: id } => {
                if id != loop_id {
                    return Err(format!("trap L{id}, expected L{loop_id}"));
                }
            }
            other => return Err(format!("expected trap, got `{other}`")),
        }
        let end = self.pc;
        for e in exits {
            if e != end {
                return Err(format!("guard exits to {e}, loop ends at {end}"));
            }
        }
        self.vars = exit_vars;
        self.cost = exit_cost;
        Ok(())
    }

    /// The guard/backedge form. The body is verified once, under the
    /// verifier's *own* fixpoint of its abstract transfer — rank
    /// stability is re-proved, not taken from the compiler. No cost
    /// bound is derivable for an uncertified loop, so the cost
    /// environment is poisoned; a `Bounded` claim then fails the
    /// dominance check (the cost pass cannot certify such a program
    /// either, so this never rejects a legitimate claim).
    fn walk_backedge(
        &mut self,
        v: usize,
        kind: GuardKind,
        body: &Prog,
        loop_id: usize,
        path: &mut NodePath,
    ) -> Result<(), String> {
        let mut head = self.vars.clone();
        loop {
            let mut s = head.clone();
            self.abs_prog(body, &mut s);
            let next = join_vars(&head, &s);
            if next == head {
                break;
            }
            head = next;
        }
        self.vars = head.clone();
        for c in self.cost.iter_mut() {
            *c = CAbs::top();
        }
        self.work = Bound::Top;
        let guard_at = self.pc;
        let exit = self.expect_guard(loop_id, v, kind)?;
        self.pending += 1; // the iteration tick
        path.push(0);
        let r = self.walk_prog(body, path);
        path.pop();
        r?;
        match self.fetch()? {
            Inst::Back { to, ticks } => {
                self.ticks(ticks)?;
                if to != guard_at {
                    return Err(format!("back @{to}, expected the guard @{guard_at}"));
                }
            }
            other => return Err(format!("expected back, got `{other}`")),
        }
        if exit != self.pc {
            return Err(format!("guard exits to {exit}, loop ends at {}", self.pc));
        }
        self.vars = head;
        Ok(())
    }
}

fn verify_inner(
    prog: &VmProg,
    ast: &Prog,
    schema: &Schema,
    dialect: Dialect,
    termination: &TerminationAnalysis,
    claim: Option<&CostVerdict>,
) -> Result<VerifyReport, (usize, String)> {
    if let Err(v) = dialect.check(ast) {
        return Err((0, format!("dialect: {}", v.message())));
    }
    let nvars = ast.max_var().map_or(1, |m| m + 1).max(1);
    if prog.nvars != nvars {
        return Err((0, format!("nvars {} ≠ program's {nvars}", prog.nvars)));
    }
    if prog.frame < nvars {
        return Err((0, format!("frame {} < nvars {nvars}", prog.frame)));
    }
    let mut w = Verify {
        prog,
        schema,
        dialect,
        termination,
        dead: analyze_dataflow(ast).dead_stores,
        pc: 0,
        pending: 0,
        vars: vec![VState::unset(); nvars],
        cost: vec![CAbs::unset(); nvars],
        work: Bound::zero(),
        written: vec![false; prog.frame],
        next_loop: 0,
        elided: 0,
    };
    w.walk_prog(ast, &mut Vec::new()).map_err(|e| (w.pc, e))?;
    match w.fetch().map_err(|e| (w.pc, e))? {
        Inst::Halt { ticks } => w.ticks(ticks).map_err(|e| (w.pc, e))?,
        other => return Err((w.pc, format!("expected halt, got `{other}`"))),
    }
    if w.pc != prog.code.len() {
        return Err((w.pc, "instructions after halt".into()));
    }
    if w.next_loop != prog.loops.len() {
        return Err((
            w.pc,
            format!(
                "{} loop-metadata entries, only {} loops verified",
                prog.loops.len(),
                w.next_loop
            ),
        ));
    }
    let mut claim_checked = false;
    if let Some(CostVerdict::Bounded { cardinality, work }) = claim {
        claim_checked = true;
        let dw = w
            .work
            .poly()
            .ok_or((w.pc, "work claimed bounded but derived ⊤".to_string()))?;
        if !work.dominates(dw) {
            return Err((
                w.pc,
                format!("claimed work {work} does not dominate derived {dw}"),
            ));
        }
        let dc = w.cost[0].bound.poly().ok_or((
            w.pc,
            "cardinality claimed bounded but derived ⊤".to_string(),
        ))?;
        if !cardinality.dominates(dc) {
            return Err((
                w.pc,
                format!("claimed cardinality {cardinality} does not dominate derived {dc}"),
            ));
        }
    }
    Ok(VerifyReport {
        instructions: prog.code.len(),
        frame: prog.frame,
        loops: prog.loops.len(),
        elided_stores: w.elided,
        derived_work: w.work.poly().map(|p| p.to_string()),
        derived_cardinality: w.cost[0].bound.poly().map(|p| p.to_string()),
        claim_checked,
    })
}

/// Verifies `prog` against the source AST it claims to implement, the
/// schema/dialect it will run under, the termination prover's loop
/// certificates, and (optionally) the cost pass's verdict. Nothing may
/// execute a [`VmProg`] that this function has not accepted.
pub fn verify(
    prog: &VmProg,
    ast: &Prog,
    schema: &Schema,
    dialect: Dialect,
    termination: &TerminationAnalysis,
    claim: Option<&CostVerdict>,
) -> Result<VerifyReport, Rejection> {
    match verify_inner(prog, ast, schema, dialect, termination, claim) {
        Ok(r) => Ok(r),
        Err((at, reason)) => {
            recdb_obs::count("vm.verifier.rejections", 1);
            Err(Rejection { at, reason })
        }
    }
}
