//! The flat register bytecode (DESIGN.md §12).
//!
//! One instruction per QL term operator, plus the loop-control and
//! accounting instructions the scheduled executor needs. Every value
//! instruction carries a `ticks` field: the statically-counted fuel
//! (term- and statement-entry ticks of the tree-walking interpreters)
//! consumed *before* the operation runs, so a VM run drains fuel at
//! exactly the tree-walkers' observable positions — data-dependent
//! fuel (`¬` inserts, `↑` extensions) is still charged inside the
//! backend ops themselves.
//!
//! Fields are public on purpose: the conformance ledger's `VM-VERIFY`
//! check mutates instruction streams directly and demands that the
//! verifier reject (or prove harmless) every single-instruction
//! mutation.

use recdb_qlhs::NodePath;
use std::fmt;

/// A loop guard predicate, mirroring the three `while` forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardKind {
    /// `while |Y| = 0` (all dialects).
    Empty,
    /// `while |Y| = 1` (QLhs only).
    Single,
    /// `while |Y| < ∞` (QLf⁺ only).
    Finite,
}

impl GuardKind {
    fn name(self) -> &'static str {
        match self {
            GuardKind::Empty => "empty",
            GuardKind::Single => "single",
            GuardKind::Finite => "finite",
        }
    }
}

/// One bytecode instruction. `dst`/`src`/`a`/`b` are frame registers;
/// registers `0..nvars` are the program variables' home slots
/// (`reg 0` = `Y1`, the result), the rest are rank-typed temporaries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inst {
    /// `dst ← E` (the diagonal).
    E {
        /// Destination register.
        dst: usize,
        /// Static fuel consumed before the op.
        ticks: u32,
    },
    /// `dst ← Rᵢ` (0-based schema index).
    Rel {
        /// Destination register.
        dst: usize,
        /// 0-based schema relation index.
        rel: usize,
        /// Static fuel consumed before the op.
        ticks: u32,
    },
    /// `dst ← {(c)}`.
    Const {
        /// Destination register.
        dst: usize,
        /// The constant element.
        val: u64,
        /// Static fuel consumed before the op.
        ticks: u32,
    },
    /// `dst ← src` (a `Yᵥ := Yw` assignment root).
    Copy {
        /// Destination register.
        dst: usize,
        /// Source register.
        src: usize,
        /// Static fuel consumed before the op.
        ticks: u32,
    },
    /// `dst ← a ∩ b`.
    And {
        /// Destination register.
        dst: usize,
        /// Left operand register.
        a: usize,
        /// Right operand register.
        b: usize,
        /// Static fuel consumed before the op.
        ticks: u32,
    },
    /// `dst ← ¬src`.
    Not {
        /// Destination register.
        dst: usize,
        /// Operand register.
        src: usize,
        /// Static fuel consumed before the op.
        ticks: u32,
    },
    /// `dst ← ↑src`.
    Up {
        /// Destination register.
        dst: usize,
        /// Operand register.
        src: usize,
        /// Static fuel consumed before the op.
        ticks: u32,
    },
    /// `dst ← ↓src`.
    Down {
        /// Destination register.
        dst: usize,
        /// Operand register.
        src: usize,
        /// Static fuel consumed before the op.
        ticks: u32,
    },
    /// `dst ← swap(src)`.
    Swap {
        /// Destination register.
        dst: usize,
        /// Operand register.
        src: usize,
        /// Static fuel consumed before the op.
        ticks: u32,
    },
    /// Work accounting for the just-completed assignment whose value
    /// landed in `src` — the scheduled executor adds the stored size
    /// to the observed work and enforces the work cap; a no-op in
    /// plain (fuel-only) mode.
    Commit {
        /// Register holding the just-assigned value.
        src: usize,
    },
    /// Consume `ticks` fuel and fall through. Emitted to flush
    /// trailing static ticks (empty loop bodies, eliminated dead
    /// stores) at block boundaries.
    Nop {
        /// Static fuel consumed.
        ticks: u32,
    },
    /// Loop entry: zero the loop's per-entry iteration counter.
    Enter {
        /// Index into [`VmProg::loops`].
        loop_id: usize,
        /// Static fuel consumed (the `while` node's entry tick plus
        /// any pending ticks).
        ticks: u32,
    },
    /// Loop head: evaluate the guard on `var`'s home register
    /// (fuel-free, as in the tree-walkers); jump to `exit` when the
    /// guard says stop. In scheduled mode the fall-through path also
    /// checks preemption, the proved per-loop bound, and the total
    /// iteration budget — in exactly the counted executor's order.
    Guard {
        /// Index into [`VmProg::loops`].
        loop_id: usize,
        /// The guard variable's home register.
        var: usize,
        /// Which predicate to evaluate.
        kind: GuardKind,
        /// Jump target when the guard stops the loop.
        exit: usize,
    },
    /// Unconditional backedge to the loop's `Guard`, consuming the
    /// body's trailing static ticks first.
    Back {
        /// Jump target (the `Guard` instruction's index).
        to: usize,
        /// Static fuel consumed before the jump.
        ticks: u32,
    },
    /// Reached only if a loop iterates past its statically proved
    /// bound — a prover-soundness violation surfaced as an internal
    /// error (scheduled mode reports `BoundExceeded` at the preceding
    /// `Guard` first whenever the bound is in the budget).
    Trap {
        /// Index into [`VmProg::loops`].
        loop_id: usize,
    },
    /// Program end: consume trailing static ticks and return `r0`.
    Halt {
        /// Static fuel consumed.
        ticks: u32,
    },
}

/// Static metadata for one lowered loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopMeta {
    /// The `while` node's tree path — the key the scheduled budget's
    /// per-loop bounds are looked up under.
    pub path: NodePath,
    /// `Some(b)` when the loop was unrolled against a proved bound of
    /// `b` iterations (`b + 1` guards, then a trap); `None` for a
    /// guard/backedge loop.
    pub peeled: Option<u64>,
}

/// A compiled program: a flat instruction stream over a frame whose
/// size is a compile-time constant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmProg {
    /// The instruction stream; entry is index 0.
    pub code: Vec<Inst>,
    /// Home registers `0..nvars` (`max_var + 1`, min 1 — the counted
    /// executor's env sizing).
    pub nvars: usize,
    /// Total frame size: homes plus rank-typed temporaries.
    pub frame: usize,
    /// Loop table, indexed by the `loop_id` fields.
    pub loops: Vec<LoopMeta>,
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::E { dst, ticks } => write!(f, "e r{dst} t{ticks}"),
            Inst::Rel { dst, rel, ticks } => write!(f, "rel r{dst} #{rel} t{ticks}"),
            Inst::Const { dst, val, ticks } => write!(f, "const r{dst} ={val} t{ticks}"),
            Inst::Copy { dst, src, ticks } => write!(f, "copy r{dst} r{src} t{ticks}"),
            Inst::And { dst, a, b, ticks } => write!(f, "and r{dst} r{a} r{b} t{ticks}"),
            Inst::Not { dst, src, ticks } => write!(f, "not r{dst} r{src} t{ticks}"),
            Inst::Up { dst, src, ticks } => write!(f, "up r{dst} r{src} t{ticks}"),
            Inst::Down { dst, src, ticks } => write!(f, "down r{dst} r{src} t{ticks}"),
            Inst::Swap { dst, src, ticks } => write!(f, "swap r{dst} r{src} t{ticks}"),
            Inst::Commit { src } => write!(f, "commit r{src}"),
            Inst::Nop { ticks } => write!(f, "nop t{ticks}"),
            Inst::Enter { loop_id, ticks } => write!(f, "enter L{loop_id} t{ticks}"),
            Inst::Guard {
                loop_id,
                var,
                kind,
                exit,
            } => write!(f, "guard L{loop_id} r{var} {} @{exit}", kind.name()),
            Inst::Back { to, ticks } => write!(f, "back @{to} t{ticks}"),
            Inst::Trap { loop_id } => write!(f, "trap L{loop_id}"),
            Inst::Halt { ticks } => write!(f, "halt t{ticks}"),
        }
    }
}

impl fmt::Display for VmProg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "recdb-vm/v1")?;
        writeln!(f, "nvars {}", self.nvars)?;
        writeln!(f, "frame {}", self.frame)?;
        for (i, l) in self.loops.iter().enumerate() {
            let path = if l.path.is_empty() {
                "-".to_string()
            } else {
                l.path
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(".")
            };
            match l.peeled {
                Some(b) => writeln!(f, "loop L{i} path {path} peeled {b}")?,
                None => writeln!(f, "loop L{i} path {path} peeled -")?,
            }
        }
        for (i, inst) in self.code.iter().enumerate() {
            writeln!(f, "{i:4}: {inst}")?;
        }
        Ok(())
    }
}

impl VmProg {
    /// The textual dump — the disassembly, which [`VmProg::parse_dump`]
    /// round-trips.
    pub fn dump(&self) -> String {
        self.to_string()
    }

    /// Parses a [`VmProg::dump`]. Syntactic only: a parsed program
    /// still has to pass the verifier before anything executes it.
    pub fn parse_dump(text: &str) -> Result<VmProg, String> {
        let mut nvars = None;
        let mut frame = None;
        let mut loops = Vec::new();
        let mut code = Vec::new();
        let mut saw_magic = false;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |m: &str| format!("line {}: {m}", ln + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !saw_magic {
                if line != "recdb-vm/v1" {
                    return Err(err("expected header `recdb-vm/v1`"));
                }
                saw_magic = true;
                continue;
            }
            let words: Vec<&str> = line.split_whitespace().collect();
            match words.as_slice() {
                ["nvars", n] => nvars = Some(n.parse().map_err(|_| err("bad nvars"))?),
                ["frame", n] => frame = Some(n.parse().map_err(|_| err("bad frame"))?),
                ["loop", l, "path", p, "peeled", b] => {
                    if strip(l, "L").and_then(|s| s.parse::<usize>().ok()) != Some(loops.len()) {
                        return Err(err("loop ids must be dense and in order"));
                    }
                    let path = if *p == "-" {
                        Vec::new()
                    } else {
                        p.split('.')
                            .map(|s| s.parse::<u32>().map_err(|_| err("bad loop path")))
                            .collect::<Result<_, _>>()?
                    };
                    let peeled = if *b == "-" {
                        None
                    } else {
                        Some(b.parse().map_err(|_| err("bad peel count"))?)
                    };
                    loops.push(LoopMeta { path, peeled });
                }
                [idx, rest @ ..] if idx.ends_with(':') => {
                    let i: usize = idx[..idx.len() - 1]
                        .parse()
                        .map_err(|_| err("bad instruction index"))?;
                    if i != code.len() {
                        return Err(err("instruction indices must be dense and in order"));
                    }
                    code.push(parse_inst(rest).map_err(|m| err(&m))?);
                }
                _ => return Err(err("unrecognized line")),
            }
        }
        Ok(VmProg {
            code,
            nvars: nvars.ok_or("missing nvars")?,
            frame: frame.ok_or("missing frame")?,
            loops,
        })
    }
}

fn strip<'a>(w: &'a str, prefix: &str) -> Option<&'a str> {
    w.strip_prefix(prefix)
}

fn num<T: std::str::FromStr>(w: &str, prefix: &str, what: &str) -> Result<T, String> {
    strip(w, prefix)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("expected {what}, got `{w}`"))
}

fn parse_inst(words: &[&str]) -> Result<Inst, String> {
    let reg = |w| num::<usize>(w, "r", "a register `rN`");
    let ticks = |w| num::<u32>(w, "t", "a tick count `tN`");
    let lid = |w| num::<usize>(w, "L", "a loop id `LN`");
    let tgt = |w| num::<usize>(w, "@", "a jump target `@N`");
    Ok(match words {
        ["e", d, t] => Inst::E {
            dst: reg(d)?,
            ticks: ticks(t)?,
        },
        ["rel", d, r, t] => Inst::Rel {
            dst: reg(d)?,
            rel: num::<usize>(r, "#", "a relation `#N`")?,
            ticks: ticks(t)?,
        },
        ["const", d, v, t] => Inst::Const {
            dst: reg(d)?,
            val: num::<u64>(v, "=", "a constant `=N`")?,
            ticks: ticks(t)?,
        },
        ["copy", d, s, t] => Inst::Copy {
            dst: reg(d)?,
            src: reg(s)?,
            ticks: ticks(t)?,
        },
        ["and", d, a, b, t] => Inst::And {
            dst: reg(d)?,
            a: reg(a)?,
            b: reg(b)?,
            ticks: ticks(t)?,
        },
        ["not", d, s, t] => Inst::Not {
            dst: reg(d)?,
            src: reg(s)?,
            ticks: ticks(t)?,
        },
        ["up", d, s, t] => Inst::Up {
            dst: reg(d)?,
            src: reg(s)?,
            ticks: ticks(t)?,
        },
        ["down", d, s, t] => Inst::Down {
            dst: reg(d)?,
            src: reg(s)?,
            ticks: ticks(t)?,
        },
        ["swap", d, s, t] => Inst::Swap {
            dst: reg(d)?,
            src: reg(s)?,
            ticks: ticks(t)?,
        },
        ["commit", s] => Inst::Commit { src: reg(s)? },
        ["nop", t] => Inst::Nop { ticks: ticks(t)? },
        ["enter", l, t] => Inst::Enter {
            loop_id: lid(l)?,
            ticks: ticks(t)?,
        },
        ["guard", l, v, k, x] => Inst::Guard {
            loop_id: lid(l)?,
            var: reg(v)?,
            kind: match *k {
                "empty" => GuardKind::Empty,
                "single" => GuardKind::Single,
                "finite" => GuardKind::Finite,
                other => return Err(format!("unknown guard kind `{other}`")),
            },
            exit: tgt(x)?,
        },
        ["back", to, t] => Inst::Back {
            to: tgt(to)?,
            ticks: ticks(t)?,
        },
        ["trap", l] => Inst::Trap { loop_id: lid(l)? },
        ["halt", t] => Inst::Halt { ticks: ticks(t)? },
        other => return Err(format!("unrecognized instruction `{}`", other.join(" "))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_round_trips() {
        let prog = VmProg {
            code: vec![
                Inst::Enter {
                    loop_id: 0,
                    ticks: 2,
                },
                Inst::Guard {
                    loop_id: 0,
                    var: 1,
                    kind: GuardKind::Empty,
                    exit: 4,
                },
                Inst::E { dst: 0, ticks: 3 },
                Inst::Back { to: 1, ticks: 0 },
                Inst::Rel {
                    dst: 2,
                    rel: 1,
                    ticks: 1,
                },
                Inst::And {
                    dst: 0,
                    a: 0,
                    b: 2,
                    ticks: 0,
                },
                Inst::Commit { src: 0 },
                Inst::Halt { ticks: 0 },
            ],
            nvars: 2,
            frame: 3,
            loops: vec![LoopMeta {
                path: vec![1, 0],
                peeled: None,
            }],
        };
        let text = prog.dump();
        assert_eq!(VmProg::parse_dump(&text).unwrap(), prog);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(VmProg::parse_dump("not a dump").is_err());
        let bad = "recdb-vm/v1\nnvars 1\nframe 1\n0: warp r0 t0\n";
        assert!(VmProg::parse_dump(bad).unwrap_err().contains("line 4"));
        let sparse = "recdb-vm/v1\nnvars 1\nframe 1\n1: halt t0\n";
        assert!(VmProg::parse_dump(sparse).is_err());
    }
}
