//! `qlvm` — the bytecode compiler/verifier CLI.
//!
//! ```text
//! qlvm [OPTIONS] FILE|-
//!
//! OPTIONS
//!   --dialect ql|qlhs|qlf+   dialect to compile under (default: the
//!                            smallest dialect admitting the program's
//!                            tests)
//!   --schema A1,A2,...       relation arities (default: 2)
//!   --emit-bytecode          print the verified program's disassembly
//!                            (the default action)
//!   --verify                 print a QLVM-VERIFY/v1 JSON report
//!                            instead of the disassembly
//! ```
//!
//! The compile → verify pipeline always runs in full: the disassembly
//! is only printed for programs the verifier accepted. Exit status: 0
//! accepted, 1 obstructed or rejected, 2 on usage/parse failures.

use recdb_analyze::analyze_full;
use recdb_core::Schema;
use recdb_qlhs::{classify, parse_program, Dialect};
use recdb_vm::{compile, verify, LowerOpts};
use std::io::Read;
use std::process::ExitCode;

struct Opts {
    file: String,
    dialect: Option<Dialect>,
    schema: Schema,
    verify: bool,
}

fn usage() -> String {
    "usage: qlvm [--dialect ql|qlhs|qlf+] [--schema A1,A2,...] [--emit-bytecode | --verify] FILE|-"
        .to_string()
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        file: String::new(),
        dialect: None,
        schema: Schema::new(vec![2]),
        verify: false,
    };
    let mut file = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--emit-bytecode" => opts.verify = false,
            "--verify" => opts.verify = true,
            "--dialect" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--dialect needs a value".to_string())?;
                opts.dialect = Some(match v.to_ascii_lowercase().as_str() {
                    "ql" => Dialect::Ql,
                    "qlhs" => Dialect::Qlhs,
                    "qlf+" | "qlf" | "qlfplus" => Dialect::QlfPlus,
                    other => return Err(format!("unknown dialect `{other}`")),
                });
            }
            "--schema" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--schema needs a value".to_string())?;
                let arities: Result<Vec<usize>, _> =
                    v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                opts.schema = Schema::new(arities.map_err(|e| format!("bad --schema `{v}`: {e}"))?);
            }
            "--help" | "-h" => return Err(usage()),
            other if file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    opts.file = file.ok_or_else(usage)?;
    Ok(opts)
}

fn read_input(file: &str) -> Result<String, String> {
    if file == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn run(opts: &Opts) -> Result<bool, String> {
    let src = read_input(&opts.file)?;
    let name = if opts.file == "-" {
        "<stdin>"
    } else {
        &opts.file
    };
    let prog = parse_program(&src).map_err(|e| format!("{name}: {}", e.msg))?;
    let dialect = opts
        .dialect
        .or_else(|| classify(&prog))
        .unwrap_or(Dialect::Qlhs);
    let full = analyze_full(&prog, &opts.schema, dialect);
    let compiled = compile(
        &prog,
        &opts.schema,
        dialect,
        &full.termination,
        &LowerOpts::default(),
    );
    let vm = match compiled {
        Ok(vm) => vm,
        Err(o) => {
            if opts.verify {
                println!(
                    "{{\"format\": \"QLVM-VERIFY/v1\", \"file\": \"{}\", \"accepted\": false, \
                     \"stage\": \"compile\", \"obstruction\": \"{}\", \"detail\": \"{}\"}}",
                    json_escape(name),
                    o.kind.code(),
                    json_escape(&o.detail)
                );
            } else {
                eprintln!("{name}: obstructed: {o}");
            }
            return Ok(false);
        }
    };
    let verdict = verify(
        &vm,
        &prog,
        &opts.schema,
        dialect,
        &full.termination,
        Some(&full.cost.verdict),
    );
    match verdict {
        Ok(report) => {
            if opts.verify {
                println!(
                    "{{\"format\": \"QLVM-VERIFY/v1\", \"file\": \"{}\", \"accepted\": true, \
                     \"instructions\": {}, \"frame\": {}, \"loops\": {}, \"elided_stores\": {}, \
                     \"derived_work\": {}, \"derived_cardinality\": {}, \"claim_checked\": {}}}",
                    json_escape(name),
                    report.instructions,
                    report.frame,
                    report.loops,
                    report.elided_stores,
                    report
                        .derived_work
                        .as_deref()
                        .map_or("null".into(), |p| format!("\"{}\"", json_escape(p))),
                    report
                        .derived_cardinality
                        .as_deref()
                        .map_or("null".into(), |p| format!("\"{}\"", json_escape(p))),
                    report.claim_checked,
                );
            } else {
                print!("{vm}");
            }
            Ok(true)
        }
        Err(r) => {
            if opts.verify {
                println!(
                    "{{\"format\": \"QLVM-VERIFY/v1\", \"file\": \"{}\", \"accepted\": false, \
                     \"stage\": \"verify\", \"at\": {}, \"reason\": \"{}\"}}",
                    json_escape(name),
                    r.at,
                    json_escape(&r.reason)
                );
            } else {
                eprintln!("{name}: {r}");
            }
            Ok(false)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
