//! Lowering: validated QLhs AST → flat register bytecode.
//!
//! The compiler is *not* trusted — every program it emits must pass
//! the independent verifier before execution — but it is engineered to
//! preserve tree-walker semantics exactly:
//!
//! * **Fuel**: the tree-walkers tick once at every `Prog`-node entry
//!   and every `Term`-node entry, plus once per loop iteration.
//!   Lowering accumulates those statically-known ticks in a `pending`
//!   counter flushed into the next emitted instruction's `ticks`
//!   field. Between a tick and the next data-dependent fuel event or
//!   fallible op the walkers perform no observable action, so bulk
//!   `Fuel::consume` at instruction boundaries drains fuel at the
//!   same observable positions with the same `FuelError`.
//! * **Errors**: lowering *obstructs* (returns [`Obstruction`]) on
//!   anything that could make an instruction fail at runtime other
//!   than fuel — unknown/poisoned ranks, provable rank mismatches,
//!   out-of-schema relations, dialect violations, a QLf⁺ `↑` whose
//!   operand is not surely finite. The caller falls back to the tree
//!   walker, which reproduces the identical runtime error (or
//!   success); accepted programs can only fail with fuel exhaustion.
//! * **Loops**: a loop the termination prover bounded by small `b` is
//!   unrolled into `b` guarded body copies, a final guard, and a
//!   [`Inst::Trap`] that is unreachable unless the prover's bound was
//!   wrong. Other loops lower to a guard/backedge pair, which
//!   requires the variable ranks at the loop head to be stable under
//!   the body's abstract transfer (iterated to a fixpoint, widening
//!   changed ranks to unknown; a body that then *reads* a widened
//!   variable obstructs).
//! * **Dead stores** found by `recdb_analyze::dataflow` are elided
//!   when the stored term is tick-free under the dialect and provably
//!   error-free; the term's static entry ticks survive as pending
//!   ticks, so fuel accounting is unchanged.

use crate::bytecode::{GuardKind, Inst, LoopMeta, VmProg};
use recdb_analyze::dataflow::{analyze_dataflow, RegPool};
use recdb_analyze::{LoopBound, TerminationAnalysis};
use recdb_core::Schema;
use recdb_qlhs::{Dialect, NodePath, Prog, Term};
use std::collections::BTreeSet;
use std::fmt;

/// Why a program could not be lowered. Obstructed programs run on the
/// tree-walking interpreters instead — same results, same errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Obstruction {
    /// Coarse class, stable for tooling (`dialect`/`error`/`unprovable`).
    pub kind: ObstructionKind,
    /// Tree path of the statement that obstructed.
    pub path: NodePath,
    /// Human-readable detail.
    pub detail: String,
}

/// The coarse obstruction classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObstructionKind {
    /// The program fails the dialect check (the tree-walker raises
    /// `DialectViolation`).
    Dialect,
    /// An instruction would provably error at runtime (rank mismatch,
    /// out-of-schema relation, `↑` of a surely-infinite value).
    Error,
    /// A static fact the compiler needs (exact rank, surely-finite,
    /// loop-stable ranks) could not be proved.
    Unprovable,
}

impl ObstructionKind {
    /// Stable lowercase code (`dialect` / `error` / `unprovable`) —
    /// the token the corpus `// VM: reject=<code>` directives pin.
    pub fn code(self) -> &'static str {
        match self {
            ObstructionKind::Dialect => "dialect",
            ObstructionKind::Error => "error",
            ObstructionKind::Unprovable => "unprovable",
        }
    }
}

impl fmt::Display for Obstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] at {:?}: {}",
            self.kind.code(),
            self.path,
            self.detail
        )
    }
}

/// Compiler knobs.
#[derive(Clone, Debug)]
pub struct LowerOpts {
    /// Unroll loops with a proved bound of at most this many
    /// iterations (matches the cost pass's unroll budget by default).
    pub peel_cap: u64,
    /// Eliminate dead stores (liveness-killed assignments of tick-free
    /// terms).
    pub dse: bool,
}

impl Default for LowerOpts {
    fn default() -> LowerOpts {
        LowerOpts {
            peel_cap: 8,
            dse: true,
        }
    }
}

/// Surely-finite lattice for QLf⁺ values (whether the *stored* tuples
/// are the relation itself, not a complement).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fin3 {
    Finite,
    Infinite,
    Unknown,
}

impl Fin3 {
    fn join(self, other: Fin3) -> Fin3 {
        if self == other {
            self
        } else {
            Fin3::Unknown
        }
    }
}

/// Per-variable static state. `rank: None` means unknown/poisoned.
#[derive(Clone, Debug, PartialEq, Eq)]
struct VarState {
    rank: Option<usize>,
    fin: Fin3,
}

impl VarState {
    fn unset() -> VarState {
        VarState {
            rank: Some(0),
            fin: Fin3::Finite,
        }
    }

    fn join(&self, other: &VarState) -> VarState {
        VarState {
            rank: match (self.rank, other.rank) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
            fin: self.fin.join(other.fin),
        }
    }
}

fn join_vars(a: &[VarState], b: &[VarState]) -> Vec<VarState> {
    a.iter().zip(b).map(|(x, y)| x.join(y)).collect()
}

/// Term-node count — the statically-known entry ticks of a term.
fn term_nodes(t: &Term) -> u32 {
    match t {
        Term::E | Term::Rel(_) | Term::Var(_) | Term::Const(_) => 1,
        Term::And(a, b) => 1 + term_nodes(a) + term_nodes(b),
        Term::Not(e) | Term::Up(e) | Term::Down(e) | Term::Swap(e) => 1 + term_nodes(e),
    }
}

struct Lower<'a> {
    schema: &'a Schema,
    dialect: Dialect,
    termination: &'a TerminationAnalysis,
    dead: BTreeSet<NodePath>,
    opts: LowerOpts,
    code: Vec<Inst>,
    loops: Vec<LoopMeta>,
    pool: RegPool,
    pending: u32,
    vars: Vec<VarState>,
    unrolled: u64,
}

impl Lower<'_> {
    fn take_pending(&mut self) -> u32 {
        std::mem::take(&mut self.pending)
    }

    fn obstruct<T>(
        &self,
        kind: ObstructionKind,
        path: &[u32],
        detail: impl Into<String>,
    ) -> Result<T, Obstruction> {
        Err(Obstruction {
            kind,
            path: path.to_vec(),
            detail: detail.into(),
        })
    }

    /// The dialect-aware (rank, finiteness) transfer of a term, total:
    /// un-typable subterms yield `rank: None` and the *concrete*
    /// lowering reports the obstruction. Used for loop fixpoints and
    /// dead-store legality.
    fn abs_term(&self, t: &Term, vars: &[VarState]) -> VarState {
        let fcf = self.dialect == Dialect::QlfPlus;
        match t {
            Term::E => VarState {
                rank: Some(2),
                fin: Fin3::Finite,
            },
            Term::Const(_) => VarState {
                rank: Some(1),
                fin: Fin3::Finite,
            },
            Term::Rel(i) => {
                if *i < self.schema.len() {
                    VarState {
                        rank: Some(self.schema.arity(*i)),
                        // A QLf⁺ schema relation may be stored co-finite
                        // — that is per-database data, not schema.
                        fin: if fcf { Fin3::Unknown } else { Fin3::Finite },
                    }
                } else {
                    VarState {
                        rank: None,
                        fin: Fin3::Unknown,
                    }
                }
            }
            Term::Var(v) => vars.get(*v).cloned().unwrap_or_else(VarState::unset),
            Term::And(a, b) => {
                let (xa, xb) = (self.abs_term(a, vars), self.abs_term(b, vars));
                VarState {
                    rank: match (xa.rank, xb.rank) {
                        (Some(x), Some(y)) if x == y => Some(x),
                        _ => None,
                    },
                    fin: match (xa.fin, xb.fin) {
                        (Fin3::Finite, _) | (_, Fin3::Finite) => Fin3::Finite,
                        (Fin3::Infinite, Fin3::Infinite) => Fin3::Infinite,
                        _ => Fin3::Unknown,
                    },
                }
            }
            Term::Not(e) => {
                let x = self.abs_term(e, vars);
                VarState {
                    rank: x.rank,
                    fin: if fcf {
                        match x.fin {
                            Fin3::Finite => Fin3::Infinite,
                            Fin3::Infinite => Fin3::Finite,
                            Fin3::Unknown => Fin3::Unknown,
                        }
                    } else {
                        Fin3::Finite
                    },
                }
            }
            Term::Up(e) => {
                let x = self.abs_term(e, vars);
                VarState {
                    rank: x.rank.map(|k| k + 1),
                    fin: Fin3::Finite,
                }
            }
            Term::Down(e) => {
                let x = self.abs_term(e, vars);
                let rank = x.rank.map(|k| k.saturating_sub(1));
                VarState {
                    rank,
                    fin: match x.fin {
                        Fin3::Finite => Fin3::Finite,
                        // ↓ of a co-finite value of rank ≤ 1 stores
                        // finitely ({()} or ∅); rank ≥ 2 stays co-finite.
                        Fin3::Infinite => match x.rank {
                            Some(k) if k <= 1 => Fin3::Finite,
                            Some(_) => Fin3::Infinite,
                            None => Fin3::Unknown,
                        },
                        Fin3::Unknown => match x.rank {
                            Some(0) => Fin3::Finite,
                            Some(1) => Fin3::Finite,
                            _ => Fin3::Unknown,
                        },
                    },
                }
            }
            Term::Swap(e) => self.abs_term(e, vars),
        }
    }

    /// Abstract statement transfer (total, no emission): the loop
    /// fixpoint driver. Inner loops are themselves join-fixpointed,
    /// which over-approximates both lowering forms.
    fn abs_prog(&self, p: &Prog, vars: &mut Vec<VarState>) {
        match p {
            Prog::Assign(v, t) => {
                let s = self.abs_term(t, vars);
                if *v < vars.len() {
                    vars[*v] = s;
                }
            }
            Prog::Seq(ps) => {
                for q in ps {
                    self.abs_prog(q, vars);
                }
            }
            Prog::WhileEmpty(_, body)
            | Prog::WhileSingleton(_, body)
            | Prog::WhileFinite(_, body) => {
                let mut head = vars.clone();
                loop {
                    let mut s = head.clone();
                    self.abs_prog(body, &mut s);
                    let next = join_vars(&head, &s);
                    if next == head {
                        break;
                    }
                    head = next;
                }
                *vars = head;
            }
        }
    }

    /// Is `t` free of data-dependent fuel under the dialect? (The
    /// dead-store side condition: elision must not change fuel.)
    fn tick_free(&self, t: &Term) -> bool {
        let op_ok = match t {
            Term::Not(_) => self.dialect != Dialect::Ql,
            Term::Up(_) => false,
            Term::Down(_) | Term::Swap(_) => self.dialect != Dialect::Qlhs,
            _ => true,
        };
        op_ok
            && match t {
                Term::E | Term::Rel(_) | Term::Var(_) | Term::Const(_) => true,
                Term::And(a, b) => self.tick_free(a) && self.tick_free(b),
                Term::Not(e) | Term::Up(e) | Term::Down(e) | Term::Swap(e) => self.tick_free(e),
            }
    }

    /// Lowers a term in post-order. Returns the register holding the
    /// value and its static state. `dst` forces the result register
    /// (the assignment root's home register).
    fn lower_term(
        &mut self,
        t: &Term,
        dst: Option<usize>,
        path: &[u32],
    ) -> Result<(usize, VarState), Obstruction> {
        self.pending += 1; // the term node's entry tick
        let fcf = self.dialect == Dialect::QlfPlus;
        match t {
            Term::Var(v) => {
                let s = self.vars[*v].clone();
                if s.rank.is_none() {
                    return self.obstruct(
                        ObstructionKind::Unprovable,
                        path,
                        format!("Y{} has no provable rank here", v + 1),
                    );
                }
                match dst {
                    // Interior Var: the value already lives in its
                    // home register; no instruction, the entry tick
                    // stays pending.
                    None => Ok((*v, s)),
                    Some(d) => {
                        let ticks = self.take_pending();
                        self.code.push(Inst::Copy {
                            dst: d,
                            src: *v,
                            ticks,
                        });
                        Ok((d, s))
                    }
                }
            }
            Term::E => {
                let s = VarState {
                    rank: Some(2),
                    fin: Fin3::Finite,
                };
                let d = self.place(dst, 2);
                let ticks = self.take_pending();
                self.code.push(Inst::E { dst: d, ticks });
                Ok((d, s))
            }
            Term::Const(c) => {
                let s = VarState {
                    rank: Some(1),
                    fin: Fin3::Finite,
                };
                let d = self.place(dst, 1);
                let ticks = self.take_pending();
                self.code.push(Inst::Const {
                    dst: d,
                    val: *c,
                    ticks,
                });
                Ok((d, s))
            }
            Term::Rel(i) => {
                if *i >= self.schema.len() {
                    return self.obstruct(
                        ObstructionKind::Error,
                        path,
                        format!("R{} is outside the schema", i + 1),
                    );
                }
                let rank = self.schema.arity(*i);
                let s = VarState {
                    rank: Some(rank),
                    fin: if fcf { Fin3::Unknown } else { Fin3::Finite },
                };
                let d = self.place(dst, rank);
                let ticks = self.take_pending();
                self.code.push(Inst::Rel {
                    dst: d,
                    rel: *i,
                    ticks,
                });
                Ok((d, s))
            }
            Term::And(a, b) => {
                let (ra, sa) = self.lower_term(a, None, path)?;
                let (rb, sb) = self.lower_term(b, None, path)?;
                let (ka, kb) = (sa.rank.unwrap_or(0), sb.rank.unwrap_or(0));
                if ka != kb {
                    return self.obstruct(
                        ObstructionKind::Error,
                        path,
                        format!("∩ of rank {ka} with rank {kb} always errors"),
                    );
                }
                self.pool.release(ra);
                self.pool.release(rb);
                let d = self.place(dst, ka);
                let ticks = self.take_pending();
                self.code.push(Inst::And {
                    dst: d,
                    a: ra,
                    b: rb,
                    ticks,
                });
                let fin = match (sa.fin, sb.fin) {
                    (Fin3::Finite, _) | (_, Fin3::Finite) => Fin3::Finite,
                    (Fin3::Infinite, Fin3::Infinite) => Fin3::Infinite,
                    _ => Fin3::Unknown,
                };
                Ok((
                    d,
                    VarState {
                        rank: Some(ka),
                        fin,
                    },
                ))
            }
            Term::Not(e) => {
                let (rx, sx) = self.lower_term(e, None, path)?;
                let k = sx.rank.unwrap_or(0);
                self.pool.release(rx);
                let d = self.place(dst, k);
                let ticks = self.take_pending();
                self.code.push(Inst::Not {
                    dst: d,
                    src: rx,
                    ticks,
                });
                let fin = if fcf {
                    match sx.fin {
                        Fin3::Finite => Fin3::Infinite,
                        Fin3::Infinite => Fin3::Finite,
                        Fin3::Unknown => Fin3::Unknown,
                    }
                } else {
                    Fin3::Finite
                };
                Ok((d, VarState { rank: Some(k), fin }))
            }
            Term::Up(e) => {
                let (rx, sx) = self.lower_term(e, None, path)?;
                if fcf {
                    match sx.fin {
                        Fin3::Finite => {}
                        Fin3::Infinite => {
                            return self.obstruct(
                                ObstructionKind::Error,
                                path,
                                "↑ of a surely co-finite value always errors",
                            )
                        }
                        Fin3::Unknown => {
                            return self.obstruct(
                                ObstructionKind::Unprovable,
                                path,
                                "cannot prove the ↑ operand finite",
                            )
                        }
                    }
                }
                let k = sx.rank.unwrap_or(0) + 1;
                self.pool.release(rx);
                let d = self.place(dst, k);
                let ticks = self.take_pending();
                self.code.push(Inst::Up {
                    dst: d,
                    src: rx,
                    ticks,
                });
                Ok((
                    d,
                    VarState {
                        rank: Some(k),
                        fin: Fin3::Finite,
                    },
                ))
            }
            Term::Down(e) => {
                let (rx, sx) = self.lower_term(e, None, path)?;
                let k0 = sx.rank.unwrap_or(0);
                let k = k0.saturating_sub(1);
                self.pool.release(rx);
                let d = self.place(dst, k);
                let ticks = self.take_pending();
                self.code.push(Inst::Down {
                    dst: d,
                    src: rx,
                    ticks,
                });
                let fin = match sx.fin {
                    Fin3::Finite => Fin3::Finite,
                    Fin3::Infinite if k0 <= 1 => Fin3::Finite,
                    Fin3::Infinite => Fin3::Infinite,
                    Fin3::Unknown if k0 <= 1 => Fin3::Finite,
                    Fin3::Unknown => Fin3::Unknown,
                };
                Ok((d, VarState { rank: Some(k), fin }))
            }
            Term::Swap(e) => {
                let (rx, sx) = self.lower_term(e, None, path)?;
                let k = sx.rank.unwrap_or(0);
                self.pool.release(rx);
                let d = self.place(dst, k);
                let ticks = self.take_pending();
                self.code.push(Inst::Swap {
                    dst: d,
                    src: rx,
                    ticks,
                });
                Ok((d, sx))
            }
        }
    }

    fn place(&mut self, dst: Option<usize>, rank: usize) -> usize {
        match dst {
            Some(d) => d,
            None => self.pool.alloc(rank),
        }
    }

    fn lower_prog(&mut self, p: &Prog, path: &mut NodePath) -> Result<(), Obstruction> {
        self.pending += 1; // the statement node's entry tick
        match p {
            Prog::Assign(v, t) => {
                if self.opts.dse && self.dead.contains(path.as_slice()) && self.tick_free(t) {
                    let s = self.abs_term(t, &self.vars);
                    if s.rank.is_some() {
                        // Elide the store: its statically-counted term
                        // ticks stay pending; no value, no commit.
                        self.pending += term_nodes(t);
                        self.vars[*v] = s;
                        return Ok(());
                    }
                }
                let (_, s) = self.lower_term(t, Some(*v), path)?;
                self.vars[*v] = s;
                self.code.push(Inst::Commit { src: *v });
                Ok(())
            }
            Prog::Seq(ps) => {
                for (i, q) in ps.iter().enumerate() {
                    path.push(i as u32);
                    let r = self.lower_prog(q, path);
                    path.pop();
                    r?;
                }
                Ok(())
            }
            Prog::WhileEmpty(v, body)
            | Prog::WhileSingleton(v, body)
            | Prog::WhileFinite(v, body) => {
                let kind = match p {
                    Prog::WhileEmpty(..) => GuardKind::Empty,
                    Prog::WhileSingleton(..) => GuardKind::Single,
                    _ => GuardKind::Finite,
                };
                let bound = self
                    .termination
                    .bound_at(path)
                    .map(|l| l.bound)
                    .unwrap_or(LoopBound::Unknown);
                match bound {
                    LoopBound::Bounded(b) if b <= self.opts.peel_cap => {
                        self.peel(*v, kind, body, b, path)
                    }
                    _ => self.backedge(*v, kind, body, path),
                }
            }
        }
    }

    /// Unrolled form: `enter (guard body)ᵇ guard trap`. The trap is
    /// unreachable unless the prover's bound was wrong; in scheduled
    /// mode with the bound in the budget, the final guard's counter
    /// check reports `BoundExceeded` first — exactly the counted
    /// executor's behavior.
    fn peel(
        &mut self,
        v: usize,
        kind: GuardKind,
        body: &Prog,
        b: u64,
        path: &mut NodePath,
    ) -> Result<(), Obstruction> {
        let loop_id = self.loops.len();
        self.loops.push(LoopMeta {
            path: path.clone(),
            peeled: Some(b),
        });
        let ticks = self.take_pending();
        self.code.push(Inst::Enter { loop_id, ticks });
        let mut exit_state = self.vars.clone();
        let mut guards = Vec::new();
        for _ in 0..b {
            guards.push(self.code.len());
            self.code.push(Inst::Guard {
                loop_id,
                var: v,
                kind,
                exit: usize::MAX,
            });
            self.pending += 1; // the iteration tick
            path.push(0);
            let r = self.lower_prog(body, path);
            path.pop();
            r?;
            if self.pending > 0 {
                let ticks = self.take_pending();
                self.code.push(Inst::Nop { ticks });
            }
            exit_state = join_vars(&exit_state, &self.vars);
        }
        guards.push(self.code.len());
        self.code.push(Inst::Guard {
            loop_id,
            var: v,
            kind,
            exit: usize::MAX,
        });
        self.code.push(Inst::Trap { loop_id });
        let end = self.code.len();
        for g in guards {
            if let Inst::Guard { exit, .. } = &mut self.code[g] {
                *exit = end;
            }
        }
        self.vars = exit_state;
        self.unrolled += 1;
        Ok(())
    }

    /// Guard/backedge form. The body is lowered once, so the variable
    /// ranks it is typed under must hold on *every* iteration: the
    /// head state is the fixpoint of the body's abstract transfer
    /// (changed ranks widen to unknown; the body reading a widened
    /// variable obstructs inside `lower_term`).
    fn backedge(
        &mut self,
        v: usize,
        kind: GuardKind,
        body: &Prog,
        path: &mut NodePath,
    ) -> Result<(), Obstruction> {
        let loop_id = self.loops.len();
        self.loops.push(LoopMeta {
            path: path.clone(),
            peeled: None,
        });
        let ticks = self.take_pending();
        self.code.push(Inst::Enter { loop_id, ticks });
        let mut head = self.vars.clone();
        loop {
            let mut s = head.clone();
            self.abs_prog(body, &mut s);
            let next = join_vars(&head, &s);
            if next == head {
                break;
            }
            head = next;
        }
        self.vars = head.clone();
        let guard_at = self.code.len();
        self.code.push(Inst::Guard {
            loop_id,
            var: v,
            kind,
            exit: usize::MAX,
        });
        self.pending += 1; // the iteration tick
        path.push(0);
        let r = self.lower_prog(body, path);
        path.pop();
        r?;
        let ticks = self.take_pending();
        self.code.push(Inst::Back {
            to: guard_at,
            ticks,
        });
        let end = self.code.len();
        if let Inst::Guard { exit, .. } = &mut self.code[guard_at] {
            *exit = end;
        }
        // The loop leaves at the guard, i.e. in the head state (the
        // fixpoint guarantees the body's concrete transfer stays
        // within it).
        self.vars = head;
        Ok(())
    }
}

/// Compiles a program against a schema, dialect, and the termination
/// prover's loop bounds. On success the result must still pass
/// [`crate::verify::verify`] before anything executes it.
pub fn compile(
    p: &Prog,
    schema: &Schema,
    dialect: Dialect,
    termination: &TerminationAnalysis,
    opts: &LowerOpts,
) -> Result<VmProg, Obstruction> {
    if let Err(v) = dialect.check(p) {
        return Err(Obstruction {
            kind: ObstructionKind::Dialect,
            path: Vec::new(),
            detail: v.message().to_string(),
        });
    }
    let nvars = p.max_var().map_or(1, |m| m + 1).max(1);
    let dead = if opts.dse {
        analyze_dataflow(p).dead_stores
    } else {
        BTreeSet::new()
    };
    let mut l = Lower {
        schema,
        dialect,
        termination,
        dead,
        opts: opts.clone(),
        code: Vec::new(),
        loops: Vec::new(),
        pool: RegPool::new(nvars),
        pending: 0,
        vars: vec![VarState::unset(); nvars],
        unrolled: 0,
    };
    l.lower_prog(p, &mut Vec::new())?;
    let ticks = l.take_pending();
    l.code.push(Inst::Halt { ticks });
    recdb_obs::count("vm.compiles", 1);
    recdb_obs::count("vm.loops.unrolled", l.unrolled);
    recdb_obs::observe("vm.registers.allocated", l.pool.frame_size() as u64);
    Ok(VmProg {
        code: l.code,
        nvars,
        frame: l.pool.frame_size(),
        loops: l.loops,
    })
}
