//! The register VM: plain (fuel-only) and scheduled executors over a
//! verifier-accepted [`VmProg`].
//!
//! Value semantics are the interpreters' own: [`VmBackend`] is
//! implemented by `FinInterp`/`HsInterp`/`FcfInterp` by delegating to
//! the same `op_*` primitives their `eval_term` drivers dispatch to,
//! so the VM and the tree-walkers share semantics by construction.
//! What the VM removes from the hot loop is everything *around* the
//! ops: per-node recursion, per-node fuel ticks (pre-summed into each
//! instruction's `ticks` field), per-request dialect re-checks, and
//! env option-handling — all discharged statically by the compiler
//! and re-proved by the verifier.
//!
//! [`exec_scheduled`] mirrors the serve counted executor event by
//! event: guard evaluation is fuel-free; on a passing guard the order
//! is preempt check, per-entry counter, total counter, proved-bound
//! check, total-budget check, then the iteration tick (carried by the
//! next instruction); work is committed after each assignment.

use crate::bytecode::{GuardKind, Inst, VmProg};
use recdb_core::Fuel;
use recdb_qlhs::{FcfInterp, FcfVal, FinInterp, HsInterp, RunError, Val};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// One backend's value operations, as the VM needs them. The `op_*`
/// methods must match the tree-walking interpreter's semantics and
/// internal (data-dependent) fuel exactly; entry ticks are the VM's
/// job.
pub trait VmBackend {
    /// The value type the backend computes with.
    type V: Clone;
    /// The value an unassigned variable holds.
    fn unset(&self) -> Self::V;
    /// The diagonal `E` (infallible on every backend).
    fn e(&mut self) -> Self::V;
    /// Schema relation `i` (0-based).
    fn rel(&mut self, i: usize) -> Result<Self::V, RunError>;
    /// The singleton `{(c)}`.
    fn constant(&mut self, c: u64) -> Self::V;
    /// Intersection.
    fn and(&mut self, a: &Self::V, b: &Self::V) -> Result<Self::V, RunError>;
    /// Complement (charges its data-dependent fuel itself).
    fn not(&mut self, x: &Self::V, fuel: &mut Fuel) -> Result<Self::V, RunError>;
    /// Rank raise (charges its data-dependent fuel itself).
    fn up(&mut self, x: &Self::V, fuel: &mut Fuel) -> Result<Self::V, RunError>;
    /// Rank lower (charges its data-dependent fuel itself).
    fn down(&mut self, x: &Self::V, fuel: &mut Fuel) -> Result<Self::V, RunError>;
    /// First-two-coordinate swap (charges its data-dependent fuel
    /// itself).
    fn swap(&mut self, x: &Self::V, fuel: &mut Fuel) -> Result<Self::V, RunError>;
    /// The `while |Y|=0` predicate.
    fn empty(x: &Self::V) -> bool;
    /// The `while |Y|=1` predicate (only compiled for QLhs).
    fn single(x: &Self::V) -> bool;
    /// The `while |Y|<∞` predicate (only compiled for QLf⁺).
    fn finite(x: &Self::V) -> bool;
    /// Stored size — the counted executor's work unit.
    fn size(x: &Self::V) -> u64;
}

impl VmBackend for FinInterp<'_> {
    type V = Val;
    fn unset(&self) -> Val {
        Val::empty(0)
    }
    fn e(&mut self) -> Val {
        self.op_e()
    }
    fn rel(&mut self, i: usize) -> Result<Val, RunError> {
        self.op_rel(i)
    }
    fn constant(&mut self, c: u64) -> Val {
        self.op_const(c)
    }
    fn and(&mut self, a: &Val, b: &Val) -> Result<Val, RunError> {
        FinInterp::op_and(a, b)
    }
    fn not(&mut self, x: &Val, fuel: &mut Fuel) -> Result<Val, RunError> {
        self.op_not(x, fuel)
    }
    fn up(&mut self, x: &Val, fuel: &mut Fuel) -> Result<Val, RunError> {
        self.op_up(x, fuel)
    }
    fn down(&mut self, x: &Val, _fuel: &mut Fuel) -> Result<Val, RunError> {
        FinInterp::op_down(x)
    }
    fn swap(&mut self, x: &Val, _fuel: &mut Fuel) -> Result<Val, RunError> {
        FinInterp::op_swap(x)
    }
    fn empty(x: &Val) -> bool {
        x.is_empty()
    }
    fn single(x: &Val) -> bool {
        x.is_singleton()
    }
    fn finite(_: &Val) -> bool {
        true
    }
    fn size(x: &Val) -> u64 {
        x.len() as u64
    }
}

impl VmBackend for HsInterp<'_> {
    type V = Val;
    fn unset(&self) -> Val {
        Val::empty(0)
    }
    fn e(&mut self) -> Val {
        self.op_e()
    }
    fn rel(&mut self, i: usize) -> Result<Val, RunError> {
        self.op_rel(i)
    }
    fn constant(&mut self, c: u64) -> Val {
        self.op_const(c)
    }
    fn and(&mut self, a: &Val, b: &Val) -> Result<Val, RunError> {
        HsInterp::op_and(a, b)
    }
    fn not(&mut self, x: &Val, _fuel: &mut Fuel) -> Result<Val, RunError> {
        Ok(self.op_not(x))
    }
    fn up(&mut self, x: &Val, fuel: &mut Fuel) -> Result<Val, RunError> {
        self.op_up(x, fuel)
    }
    fn down(&mut self, x: &Val, fuel: &mut Fuel) -> Result<Val, RunError> {
        self.op_down(x, fuel)
    }
    fn swap(&mut self, x: &Val, fuel: &mut Fuel) -> Result<Val, RunError> {
        self.op_swap(x, fuel)
    }
    fn empty(x: &Val) -> bool {
        x.is_empty()
    }
    fn single(x: &Val) -> bool {
        x.is_singleton()
    }
    fn finite(_: &Val) -> bool {
        true
    }
    fn size(x: &Val) -> u64 {
        x.len() as u64
    }
}

impl VmBackend for FcfInterp<'_> {
    type V = FcfVal;
    fn unset(&self) -> FcfVal {
        FcfVal::empty(0)
    }
    fn e(&mut self) -> FcfVal {
        self.op_e()
    }
    fn rel(&mut self, i: usize) -> Result<FcfVal, RunError> {
        self.op_rel(i)
    }
    fn constant(&mut self, c: u64) -> FcfVal {
        self.op_const(c)
    }
    fn and(&mut self, a: &FcfVal, b: &FcfVal) -> Result<FcfVal, RunError> {
        FcfInterp::op_and(a, b)
    }
    fn not(&mut self, x: &FcfVal, _fuel: &mut Fuel) -> Result<FcfVal, RunError> {
        Ok(FcfInterp::op_not(x))
    }
    fn up(&mut self, x: &FcfVal, fuel: &mut Fuel) -> Result<FcfVal, RunError> {
        self.op_up(x, fuel)
    }
    fn down(&mut self, x: &FcfVal, _fuel: &mut Fuel) -> Result<FcfVal, RunError> {
        FcfInterp::op_down(x)
    }
    fn swap(&mut self, x: &FcfVal, _fuel: &mut Fuel) -> Result<FcfVal, RunError> {
        FcfInterp::op_swap(x)
    }
    fn empty(x: &FcfVal) -> bool {
        x.is_empty_relation()
    }
    fn single(_: &FcfVal) -> bool {
        false
    }
    fn finite(x: &FcfVal) -> bool {
        x.finite
    }
    fn size(x: &FcfVal) -> u64 {
        x.tuples.len() as u64
    }
}

const TRAP_MSG: &str = "vm: loop ran past its statically proved bound";
const PC_MSG: &str = "vm: fell off the instruction stream";

fn guard_go<B: VmBackend>(kind: GuardKind, v: &B::V) -> bool {
    match kind {
        GuardKind::Empty => B::empty(v),
        GuardKind::Single => B::single(v),
        GuardKind::Finite => B::finite(v),
    }
}

/// Runs a verifier-accepted program under a plain fuel budget — the
/// VM analogue of the interpreters' from-scratch `run` entry points
/// (semi-naive evaluation off), with identical observable fuel.
pub fn exec_plain<B: VmBackend>(
    b: &mut B,
    prog: &VmProg,
    fuel: &mut Fuel,
) -> Result<B::V, RunError> {
    let mut frame: Vec<B::V> = vec![b.unset(); prog.frame.max(1)];
    let mut pc = 0usize;
    loop {
        let inst = prog.code.get(pc).ok_or(RunError::Internal(PC_MSG))?;
        match inst {
            Inst::E { dst, ticks } => {
                fuel.consume(u64::from(*ticks))?;
                frame[*dst] = b.e();
            }
            Inst::Rel { dst, rel, ticks } => {
                fuel.consume(u64::from(*ticks))?;
                frame[*dst] = b.rel(*rel)?;
            }
            Inst::Const { dst, val, ticks } => {
                fuel.consume(u64::from(*ticks))?;
                frame[*dst] = b.constant(*val);
            }
            Inst::Copy { dst, src, ticks } => {
                fuel.consume(u64::from(*ticks))?;
                frame[*dst] = frame[*src].clone();
            }
            Inst::And {
                dst,
                a,
                b: rb,
                ticks,
            } => {
                fuel.consume(u64::from(*ticks))?;
                frame[*dst] = b.and(&frame[*a], &frame[*rb])?;
            }
            Inst::Not { dst, src, ticks } => {
                fuel.consume(u64::from(*ticks))?;
                let v = b.not(&frame[*src], fuel)?;
                frame[*dst] = v;
            }
            Inst::Up { dst, src, ticks } => {
                fuel.consume(u64::from(*ticks))?;
                let v = b.up(&frame[*src], fuel)?;
                frame[*dst] = v;
            }
            Inst::Down { dst, src, ticks } => {
                fuel.consume(u64::from(*ticks))?;
                let v = b.down(&frame[*src], fuel)?;
                frame[*dst] = v;
            }
            Inst::Swap { dst, src, ticks } => {
                fuel.consume(u64::from(*ticks))?;
                let v = b.swap(&frame[*src], fuel)?;
                frame[*dst] = v;
            }
            Inst::Commit { .. } => {}
            Inst::Nop { ticks } | Inst::Enter { ticks, .. } => {
                fuel.consume(u64::from(*ticks))?;
            }
            Inst::Guard {
                var, kind, exit, ..
            } => {
                if !guard_go::<B>(*kind, &frame[*var]) {
                    pc = *exit;
                    continue;
                }
            }
            Inst::Back { to, ticks } => {
                fuel.consume(u64::from(*ticks))?;
                pc = *to;
                continue;
            }
            Inst::Trap { .. } => return Err(RunError::Internal(TRAP_MSG)),
            Inst::Halt { ticks } => {
                fuel.consume(u64::from(*ticks))?;
                return Ok(frame.swap_remove(0));
            }
        }
        pc += 1;
    }
}

/// The scheduling envelope a VM run executes under — field-for-field
/// the serve counted executor's budget (the crates cannot share the
/// type without inverting the dependency; serve converts).
#[derive(Clone, Debug)]
pub struct VmBudget<'a> {
    /// Proved per-entry bounds by loop tree path (empty in fuel mode).
    pub bounds: &'a BTreeMap<Vec<u32>, u64>,
    /// Whole-program iteration cap.
    pub total_cap: u64,
    /// The fuel budget.
    pub fuel: u64,
    /// Statically predicted total work, when derived.
    pub work_cap: Option<u64>,
}

/// How a scheduled VM run ended — the counted executor's `ExecEnd`,
/// mirrored.
#[derive(Debug)]
pub enum VmEnd<V> {
    /// Completed; the payload is `Y1`.
    Done(V),
    /// A runtime error other than fuel exhaustion.
    Errored(RunError),
    /// Fuel ran out.
    OutOfFuel,
    /// The cooperative-preemption flag was raised at a loop head.
    Preempted,
    /// A proved per-loop bound was exceeded.
    BoundExceeded {
        /// The loop's tree path.
        path: Vec<u32>,
        /// The bound it was proved to respect.
        bound: u64,
    },
    /// The proved whole-program budget was exceeded.
    TotalExceeded {
        /// The proved whole-program budget.
        cap: u64,
    },
    /// The statically predicted work bound was exceeded.
    WorkExceeded {
        /// The predicted work bound.
        cap: u64,
    },
}

/// A scheduled VM outcome plus its accounting.
#[derive(Debug)]
pub struct VmRun<V> {
    /// How the run ended.
    pub end: VmEnd<V>,
    /// Total loop iterations executed.
    pub iterations: u64,
    /// Total tuples materialized by committed assignments.
    pub work: u64,
}

/// Runs a verifier-accepted program under the serve scheduling
/// envelope. The caller is responsible for having dialect-checked the
/// program (compilation obstructs on dialect violations, so a
/// verifier-accepted program is dialect-legal by construction).
pub fn exec_scheduled<B: VmBackend>(
    b: &mut B,
    prog: &VmProg,
    budget: &VmBudget<'_>,
    preempt: &AtomicBool,
) -> VmRun<B::V> {
    let mut fuel = Fuel::new(budget.fuel);
    let mut frame: Vec<B::V> = vec![b.unset(); prog.frame.max(1)];
    let mut here: Vec<u64> = vec![0; prog.loops.len()];
    let mut total = 0u64;
    let mut work = 0u64;
    let mut pc = 0usize;
    macro_rules! done {
        ($end:expr) => {
            return VmRun {
                end: $end,
                iterations: total,
                work,
            }
        };
    }
    macro_rules! burn {
        ($t:expr) => {
            if fuel.consume(u64::from($t)).is_err() {
                done!(VmEnd::OutOfFuel);
            }
        };
    }
    macro_rules! op {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(RunError::Fuel(_)) => done!(VmEnd::OutOfFuel),
                Err(other) => done!(VmEnd::Errored(other)),
            }
        };
    }
    loop {
        let Some(inst) = prog.code.get(pc) else {
            done!(VmEnd::Errored(RunError::Internal(PC_MSG)));
        };
        match inst {
            Inst::E { dst, ticks } => {
                burn!(*ticks);
                frame[*dst] = b.e();
            }
            Inst::Rel { dst, rel, ticks } => {
                burn!(*ticks);
                frame[*dst] = op!(b.rel(*rel));
            }
            Inst::Const { dst, val, ticks } => {
                burn!(*ticks);
                frame[*dst] = b.constant(*val);
            }
            Inst::Copy { dst, src, ticks } => {
                burn!(*ticks);
                frame[*dst] = frame[*src].clone();
            }
            Inst::And {
                dst,
                a,
                b: rb,
                ticks,
            } => {
                burn!(*ticks);
                frame[*dst] = op!(b.and(&frame[*a], &frame[*rb]));
            }
            Inst::Not { dst, src, ticks } => {
                burn!(*ticks);
                let v = op!(b.not(&frame[*src], &mut fuel));
                frame[*dst] = v;
            }
            Inst::Up { dst, src, ticks } => {
                burn!(*ticks);
                let v = op!(b.up(&frame[*src], &mut fuel));
                frame[*dst] = v;
            }
            Inst::Down { dst, src, ticks } => {
                burn!(*ticks);
                let v = op!(b.down(&frame[*src], &mut fuel));
                frame[*dst] = v;
            }
            Inst::Swap { dst, src, ticks } => {
                burn!(*ticks);
                let v = op!(b.swap(&frame[*src], &mut fuel));
                frame[*dst] = v;
            }
            Inst::Commit { src } => {
                work = work.saturating_add(B::size(&frame[*src]));
                if budget.work_cap.is_some_and(|cap| work > cap) {
                    done!(VmEnd::WorkExceeded {
                        cap: budget.work_cap.unwrap_or(0),
                    });
                }
            }
            Inst::Nop { ticks } => burn!(*ticks),
            Inst::Enter { loop_id, ticks } => {
                burn!(*ticks);
                here[*loop_id] = 0;
            }
            Inst::Guard {
                loop_id,
                var,
                kind,
                exit,
            } => {
                if !guard_go::<B>(*kind, &frame[*var]) {
                    pc = *exit;
                    continue;
                }
                if preempt.load(Ordering::Relaxed) {
                    done!(VmEnd::Preempted);
                }
                here[*loop_id] += 1;
                total += 1;
                let path = &prog.loops[*loop_id].path;
                if let Some(&bound) = budget.bounds.get(path.as_slice()) {
                    if here[*loop_id] > bound {
                        done!(VmEnd::BoundExceeded {
                            path: path.clone(),
                            bound,
                        });
                    }
                }
                if total > budget.total_cap {
                    done!(VmEnd::TotalExceeded {
                        cap: budget.total_cap,
                    });
                }
            }
            Inst::Back { to, ticks } => {
                burn!(*ticks);
                pc = *to;
                continue;
            }
            Inst::Trap { .. } => done!(VmEnd::Errored(RunError::Internal(TRAP_MSG))),
            Inst::Halt { ticks } => {
                burn!(*ticks);
                done!(VmEnd::Done(frame.swap_remove(0)));
            }
        }
        pc += 1;
    }
}
