//! recdb-vm: a statically-verified bytecode compiler and register VM
//! for the QL dialect family.
//!
//! The tree-walking interpreters in `recdb-qlhs` are the semantic
//! ground truth; this crate makes the hot path faster without widening
//! the trusted base:
//!
//! 1. [`lower::compile`] flattens a validated AST into register
//!    bytecode ([`bytecode::VmProg`]), driven by `recdb-analyze`'s
//!    liveness/last-use pass, a rank-typed register allocator, loop
//!    unrolling for small proved bounds, and dead-store elimination.
//!    The compiler is **not trusted** — it may be arbitrarily clever.
//! 2. [`verify::verify`] is an independent abstract interpreter over
//!    the instruction stream that re-proves rank/arity agreement,
//!    dialect legality, register init-before-use, fuel-tick placement,
//!    loop certificates, and the §11 cost obligation. Programs execute
//!    only if the verifier accepts.
//! 3. [`exec::exec_plain`] and [`exec::exec_scheduled`] run accepted
//!    programs over any [`exec::VmBackend`] (the three interpreters'
//!    value domains), reproducing the tree-walkers' results, fuel
//!    accounting, and scheduling events exactly — on any obstruction
//!    or rejection the caller falls back to the tree-walker and the
//!    difference is unobservable.

#![warn(missing_docs)]

pub mod bytecode;
pub mod exec;
pub mod lower;
pub mod verify;

pub use bytecode::{GuardKind, Inst, LoopMeta, VmProg};
pub use exec::{exec_plain, exec_scheduled, VmBackend, VmBudget, VmEnd, VmRun};
pub use lower::{compile, LowerOpts, Obstruction, ObstructionKind};
pub use verify::{verify, Rejection, VerifyReport};
