//! Algebraic laws of the §11 cost lattice (ISSUE 9, satellite 3): the
//! polynomial bounds form a join-semilattice with monotone `add`/`mul`
//! composition, `⊤` is absorbing, and evaluation is a semiring
//! homomorphism into saturating `u64`. The whole-program half checks
//! bound *composition*: sequencing adds work, nesting multiplies it by
//! the proved iteration count.

use recdb_analyze::{analyze_full, Bound, CostEnv, CostVerdict, Poly};
use recdb_core::{fnv1a, Schema, SplitMix64};
use recdb_qlhs::{parse_program, Dialect};

/// Fixed ledger seed (`recdb_conformance::DEFAULT_SEED`).
const SEED: u64 = 0x5ecd_eb0a;

/// A small pool of structurally distinct polynomials to quantify the
/// laws over: constants, the base symbol, relation symbols, and seeded
/// sums/products of those.
fn pool(rng: &mut SplitMix64) -> Vec<Poly> {
    let atoms = [
        Poly::zero(),
        Poly::constant(1),
        Poly::constant(7),
        Poly::base(),
        Poly::rel(0),
        Poly::rel(1),
    ];
    let mut out = atoms.to_vec();
    for _ in 0..10 {
        let a = &atoms[rng.gen_usize(atoms.len())];
        let b = &atoms[rng.gen_usize(atoms.len())];
        out.push(if rng.gen_bool() { a.add(b) } else { a.mul(b) });
    }
    out
}

fn envs() -> Vec<CostEnv> {
    vec![
        CostEnv::new(0, vec![0, 0]),
        CostEnv::new(1, vec![1, 1]),
        CostEnv::new(4, vec![2, 9]),
        CostEnv::new(17, vec![0, 5]),
    ]
}

/// `join` is a least upper bound pointwise on every valuation:
/// commutative, idempotent, dominating both arguments.
#[test]
fn join_is_an_upper_bound() {
    let mut rng = SplitMix64::seed_from_u64(fnv1a("join_is_an_upper_bound") ^ SEED);
    let ps = pool(&mut rng);
    for a in &ps {
        for b in &ps {
            let j = a.join(b);
            assert_eq!(j, b.join(a), "join must be commutative: {a} vs {b}");
            assert_eq!(a.join(a), *a, "join must be idempotent: {a}");
            for env in &envs() {
                assert!(
                    j.eval(env) >= a.eval(env) && j.eval(env) >= b.eval(env),
                    "join({a}, {b}) = {j} fell below an argument at {env:?}"
                );
            }
        }
    }
}

/// `add` and `mul` are monotone in each argument through `join` — the
/// property the transfer functions rely on when widening loop bodies.
#[test]
fn composition_is_monotone() {
    let mut rng = SplitMix64::seed_from_u64(fnv1a("composition_is_monotone") ^ SEED);
    let ps = pool(&mut rng);
    for a in &ps {
        for b in &ps {
            let upper = a.join(b);
            for c in &ps {
                for env in &envs() {
                    assert!(
                        upper.add(c).eval(env) >= a.add(c).eval(env),
                        "add not monotone: ({a} ⊔ {b}) + {c} < {a} + {c}"
                    );
                    assert!(
                        upper.mul(c).eval(env) >= a.mul(c).eval(env),
                        "mul not monotone: ({a} ⊔ {b}) · {c} < {a} · {c}"
                    );
                }
            }
        }
    }
}

/// Evaluation is a homomorphism: `eval(a + b) = eval(a) + eval(b)` and
/// `eval(a · b) = eval(a) · eval(b)` (saturating), on every valuation.
#[test]
fn eval_commutes_with_composition() {
    let mut rng = SplitMix64::seed_from_u64(fnv1a("eval_commutes_with_composition") ^ SEED);
    let ps = pool(&mut rng);
    for a in &ps {
        for b in &ps {
            for env in &envs() {
                assert_eq!(
                    a.add(b).eval(env),
                    a.eval(env).saturating_add(b.eval(env)),
                    "add/eval mismatch on {a} + {b}"
                );
                assert_eq!(
                    a.mul(b).eval(env),
                    a.eval(env).saturating_mul(b.eval(env)),
                    "mul/eval mismatch on {a} · {b}"
                );
            }
        }
    }
}

/// `⊤` absorbs through every `Bound` operation and never evaluates.
#[test]
fn top_is_absorbing() {
    let p = Bound::Poly(Poly::base().mul(&Poly::rel(0)));
    for op in [Bound::add, Bound::mul, Bound::join] {
        assert_eq!(op(&Bound::Top, &p), Bound::Top);
        assert_eq!(op(&p, &Bound::Top), Bound::Top);
    }
    assert_eq!(Bound::Top.eval(&CostEnv::new(3, vec![2])), None);
    assert_eq!(Bound::Top.poly(), None);
    // Degenerate non-⊤ sanity: zero is the additive identity.
    assert_eq!(Bound::zero().add(&p), p);
}

fn work_of(src: &str) -> Poly {
    let prog = parse_program(src).expect("test program parses");
    let full = analyze_full(&prog, &Schema::new(vec![2]), Dialect::Ql);
    match &full.cost.verdict {
        CostVerdict::Bounded { work, .. } => work.clone(),
        CostVerdict::Unbounded => panic!("expected a bounded program: {src}"),
    }
}

/// Sequencing two statements adds their work bounds; a loop the
/// terminates-prover bounds at `k` iterations multiplies its body's
/// work by `k` — checked on every valuation rather than on a pinned
/// rendering, so the law survives normalization changes.
#[test]
fn bounds_compose_across_sequence_and_loop() {
    let one = work_of("Y1 := E;");
    let seq = work_of("Y1 := E; Y2 := E;");
    // The loop body runs once per proved iteration: `E` is provably
    // nonempty, so the guard flips on the first pass and the prover
    // pins the trip count at one.
    let looped = work_of("while empty(Y2) { Y2 := E; } Y1 := Y2;");
    for env in &envs() {
        assert_eq!(
            seq.eval(env),
            one.eval(env).saturating_mul(2),
            "sequencing must add statement work"
        );
        assert!(
            looped.eval(env) >= one.eval(env),
            "a proved loop must cost at least its body"
        );
    }
    // And the nested composition: an inner bounded loop inside an
    // outer bounded loop multiplies, never adds.
    let nested = work_of("while empty(Y2) { while empty(Y3) { Y3 := E; } Y2 := E; } Y1 := Y2;");
    for env in &envs() {
        assert!(
            nested.eval(env) >= looped.eval(env),
            "nesting cannot be cheaper than the inner loop alone"
        );
    }
}
