//! Flow-sensitive analysis of QL-family programs: rank/arity
//! inference, dialect checking, lints, and the three-valued safety
//! verdict.
//!
//! ## What the verdict means
//!
//! * [`Verdict::Safe`] — running the program in its dialect's
//!   interpreter can never raise a rank mismatch, a missing-relation
//!   error, or a dialect violation (it may still exhaust fuel). This
//!   is backed by the *exactness* of the rank transfer function
//!   ([`crate::rank::term_rank`]): `Known(k)` means rank `k` on every
//!   execution, so if every `&` node has provably-agreeing operand
//!   ranks, every `Relᵢ` is in schema, and every `while` test is
//!   admitted, no such error exists on any run. Where agreement is
//!   *not provable* (a `Top` operand, e.g. after a control-flow
//!   join), the analyzer emits [`Code::UnprovableRank`], which blocks
//!   `Safe`.
//! * [`Verdict::Unsafe`] — some run is guaranteed to return an error:
//!   either an error-severity finding sits on the must-execute
//!   straight-line spine (every preceding statement either completes
//!   or itself errors, so the run ends `Err` regardless), or the
//!   program uses a `while` test its dialect does not admit (the
//!   interpreters reject that statically in `run`, reachable or not).
//! * [`Verdict::Unknown`] — a potential error was found, but only at
//!   a program point the analysis cannot prove reachable (inside a
//!   loop body) or with unprovable ranks.
//!
//! The emptiness lattice is deliberately second-class: it powers the
//! unreachable-/divergent-loop lints (under a non-empty-domain
//! assumption) and never influences the verdict.
//!
//! Loops are analyzed to a fixpoint with diagnostics muted, then the
//! body is re-walked once at the post-fixpoint environment with
//! diagnostics on — each statement is diagnosed exactly once, against
//! an environment that over-approximates every real iteration.

use crate::diag::{Code, Diagnostic, Severity};
use crate::rank::{term_rank, AbsEmpty, AbsRank, Assigned};
use recdb_core::Schema;
use recdb_qlhs::{Dialect, NodePath, Prog, Term, VarId};

/// The analyzer's overall safety classification of a program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// No rank/arity/dialect error on any possible run.
    Safe,
    /// Every run returns an error.
    Unsafe,
    /// A potential error the analysis can neither prove nor refute.
    Unknown,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Verdict::Safe => "safe",
            Verdict::Unsafe => "unsafe",
            Verdict::Unknown => "unknown",
        })
    }
}

/// The result of [`analyze_prog`].
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The dialect the program was checked against.
    pub dialect: Dialect,
    /// The safety verdict (see [`Verdict`]).
    pub verdict: Verdict,
    /// All findings, in program order of discovery.
    pub diagnostics: Vec<Diagnostic>,
    /// Abstract rank of each variable at program exit — `Known(k)` is
    /// a proof that `Yᵢ` holds a rank-`k` value on every completed
    /// run.
    pub exit_ranks: Vec<AbsRank>,
}

impl Analysis {
    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// Is a specific code present?
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct VarState {
    rank: AbsRank,
    empty: AbsEmpty,
    assigned: Assigned,
}

impl VarState {
    /// The state of a never-assigned variable: reads yield the empty
    /// rank-0 value (a semantic guarantee of all three interpreters,
    /// not an error).
    const UNSET: VarState = VarState {
        rank: AbsRank::Known(0),
        empty: AbsEmpty::Empty,
        assigned: Assigned::No,
    };

    fn join(self, other: VarState) -> VarState {
        VarState {
            rank: self.rank.join(other.rank),
            empty: self.empty.join(other.empty),
            assigned: self.assigned.join(other.assigned),
        }
    }
}

type Env = Vec<VarState>;

fn join_env(a: &Env, b: &Env) -> Env {
    a.iter().zip(b).map(|(x, y)| x.join(*y)).collect()
}

struct Analyzer<'a> {
    schema: &'a Schema,
    dialect: Dialect,
    diags: Vec<Diagnostic>,
    /// True while iterating a loop body to fixpoint — findings are
    /// suppressed (the post-fixpoint reporting pass emits them once).
    mute: bool,
    /// An error-severity finding holds on every run (see module doc).
    definite_error: bool,
    path: NodePath,
}

impl Analyzer<'_> {
    fn emit(&mut self, code: Code, message: String, note: Option<String>, definite: bool) {
        if self.mute {
            return;
        }
        if code.severity() == Severity::Error && definite {
            self.definite_error = true;
        }
        let mut d = Diagnostic::new(code, self.path.clone(), message);
        if let Some(n) = note {
            d = d.with_note(n);
        }
        d.record();
        self.diags.push(d);
    }

    fn var_ranks(&self, env: &Env) -> Vec<AbsRank> {
        env.iter().map(|s| s.rank).collect()
    }

    /// The abstract value of a term, emitting term-level findings.
    /// `must` marks the must-execute spine (for error definiteness).
    fn eval_term(&mut self, t: &Term, env: &Env, must: bool) -> (AbsRank, AbsEmpty) {
        match t {
            Term::E => {
                // E is the diagonal on D (QL/QLhs) — non-empty under
                // the non-empty-domain assumption — but on Df for
                // QLf+, and Df may genuinely be empty.
                let e = if self.dialect == Dialect::QlfPlus {
                    AbsEmpty::Top
                } else {
                    AbsEmpty::NonEmpty
                };
                (AbsRank::Known(2), e)
            }
            Term::Rel(i) => {
                if *i < self.schema.len() {
                    (AbsRank::Known(self.schema.arity(*i)), AbsEmpty::Top)
                } else {
                    self.emit(
                        Code::NoSuchRelation,
                        format!(
                            "`R{}` does not exist: the schema has {} relation(s)",
                            i + 1,
                            self.schema.len()
                        ),
                        None,
                        must,
                    );
                    (AbsRank::Top, AbsEmpty::Top)
                }
            }
            // `Cₐ` is a rank-1 singleton on every backend (the class of
            // `a` over C_B representations) — never empty.
            Term::Const(_) => (AbsRank::Known(1), AbsEmpty::NonEmpty),
            Term::Var(v) => {
                let s = env.get(*v).copied().unwrap_or(VarState::UNSET);
                if s.assigned == Assigned::No {
                    self.emit(
                        Code::UseBeforeAssign,
                        format!("`Y{}` is read before any assignment", v + 1),
                        Some("an unassigned variable evaluates to the empty rank-0 value".into()),
                        must,
                    );
                }
                (s.rank, s.empty)
            }
            Term::And(a, b) => {
                let (ra, ea) = self.eval_term(a, env, must);
                let (rb, eb) = self.eval_term(b, env, must);
                let rank = match (ra, rb) {
                    (AbsRank::Known(x), AbsRank::Known(y)) if x == y => AbsRank::Known(x),
                    (AbsRank::Known(x), AbsRank::Known(y)) => {
                        self.emit(
                            Code::RankMismatch,
                            format!("`&` applied to rank {x} and rank {y}"),
                            Some(format!("in `{t}`: `{a}` has rank {x}, `{b}` has rank {y}")),
                            must,
                        );
                        AbsRank::Top
                    }
                    // Operands with the same simplified form denote
                    // the same value on every run, so their ranks
                    // agree even when neither is individually
                    // provable (`Y & Y` at a control-flow join).
                    _ if self.provably_same_value(a, b, env) => ra.join(rb),
                    _ => {
                        self.emit(
                            Code::UnprovableRank,
                            format!("cannot prove the operands of `&` in `{t}` have equal ranks"),
                            Some(
                                "ranks that disagree across control-flow paths degrade to ⊤".into(),
                            ),
                            must,
                        );
                        AbsRank::Top
                    }
                };
                let empty = if ea == AbsEmpty::Empty || eb == AbsEmpty::Empty {
                    AbsEmpty::Empty
                } else {
                    AbsEmpty::Top
                };
                (rank, empty)
            }
            Term::Not(e) => {
                let (r, em) = self.eval_term(e, env, must);
                // Complement is exact at rank 0 (the full rank-0 value
                // {()} is non-empty over ANY domain); at higher proven
                // ranks, ¬∅ is the full relation — non-empty under the
                // non-empty-domain assumption.
                let empty = match (r, em) {
                    (AbsRank::Known(0), AbsEmpty::Empty) => AbsEmpty::NonEmpty,
                    (AbsRank::Known(0), AbsEmpty::NonEmpty) => AbsEmpty::Empty,
                    (AbsRank::Known(_), AbsEmpty::Empty) => AbsEmpty::NonEmpty,
                    _ => AbsEmpty::Top,
                };
                (r, empty)
            }
            Term::Up(e) => {
                let (r, em) = self.eval_term(e, env, must);
                // e↑ = e × D (or × Df for QLf+, which may be empty).
                let empty = match em {
                    AbsEmpty::Empty => AbsEmpty::Empty,
                    AbsEmpty::NonEmpty if self.dialect != Dialect::QlfPlus => AbsEmpty::NonEmpty,
                    _ => AbsEmpty::Top,
                };
                (r.map(|k| k + 1), empty)
            }
            Term::Down(e) => {
                let (r, em) = self.eval_term(e, env, must);
                match r {
                    AbsRank::Known(0) => {
                        self.emit(
                            Code::DownOnRankZero,
                            format!("`down` on the rank-0 term `{e}`"),
                            Some(
                                "this always yields the empty rank-0 value (the counter \
                                 zero-test idiom); it is not an error"
                                    .into(),
                            ),
                            must,
                        );
                        (AbsRank::Known(0), AbsEmpty::Empty)
                    }
                    AbsRank::Known(k) => (AbsRank::Known(k - 1), em),
                    other => {
                        // Rank unknown: a rank-0 operand would make the
                        // result empty, so only Empty survives.
                        let empty = if em == AbsEmpty::Empty {
                            AbsEmpty::Empty
                        } else {
                            AbsEmpty::Top
                        };
                        (other, empty)
                    }
                }
            }
            Term::Swap(e) => self.eval_term(e, env, must),
        }
    }

    fn exec(&mut self, p: &Prog, env: &mut Env, must: bool) {
        match p {
            Prog::Assign(v, t) => {
                self.lint_simplifiable(t, env);
                let (rank, empty) = self.eval_term(t, env, must);
                if *v >= env.len() {
                    env.resize(*v + 1, VarState::UNSET);
                }
                env[*v] = VarState {
                    rank,
                    empty,
                    assigned: Assigned::Yes,
                };
            }
            Prog::Seq(ps) => {
                for (i, q) in ps.iter().enumerate() {
                    self.path.push(i as u32);
                    self.exec(q, env, must);
                    self.path.pop();
                }
            }
            Prog::WhileEmpty(v, body) => {
                let entry = env.get(*v).copied().unwrap_or(VarState::UNSET);
                if entry.empty == AbsEmpty::NonEmpty {
                    self.emit(
                        Code::UnreachableLoop,
                        format!(
                            "`Y{}` is provably non-empty here: this loop body never runs",
                            v + 1
                        ),
                        None,
                        false,
                    );
                }
                self.analyze_loop(body, env);
                let fixed = env.get(*v).copied().unwrap_or(VarState::UNSET);
                if fixed.empty == AbsEmpty::Empty {
                    self.emit(
                        Code::DivergentLoop,
                        format!(
                            "`Y{}` is provably empty at every iteration: `while empty(Y{})` never exits",
                            v + 1,
                            v + 1
                        ),
                        None,
                        false,
                    );
                } else if *v < env.len() && env[*v].empty == AbsEmpty::Top {
                    // Normal exit implies the guard went false: |Y| ≠ 0.
                    env[*v].empty = AbsEmpty::NonEmpty;
                }
            }
            Prog::WhileSingleton(v, body) => {
                if !self.dialect.admits_singleton_test() {
                    self.emit(
                        Code::IllegalSingletonTest,
                        format!(
                            "`while single(Y{})` is not admitted by {}",
                            v + 1,
                            self.dialect
                        ),
                        Some(format!(
                            "{} rejects it before running the program",
                            self.dialect
                        )),
                        true,
                    );
                }
                let entry = env.get(*v).copied().unwrap_or(VarState::UNSET);
                if entry.empty == AbsEmpty::Empty {
                    self.emit(
                        Code::UnreachableLoop,
                        format!(
                            "`Y{}` is provably empty here, so `|Y{}| = 1` is false: this loop body never runs",
                            v + 1,
                            v + 1
                        ),
                        None,
                        false,
                    );
                }
                self.analyze_loop(body, env);
                // Exit implies |Y| ≠ 1 — no emptiness information.
            }
            Prog::WhileFinite(v, body) => {
                if !self.dialect.admits_finiteness_test() {
                    self.emit(
                        Code::IllegalFinitenessTest,
                        format!(
                            "`while finite(Y{})` is not admitted by {}",
                            v + 1,
                            self.dialect
                        ),
                        Some(format!(
                            "{} rejects it before running the program",
                            self.dialect
                        )),
                        true,
                    );
                }
                self.analyze_loop(body, env);
                // Exit implies |Y| = ∞, hence non-empty.
                if *v < env.len() && env[*v].empty == AbsEmpty::Top {
                    env[*v].empty = AbsEmpty::NonEmpty;
                }
            }
        }
    }

    /// Iterates `body` to a fixpoint with diagnostics muted, then
    /// re-walks it once, diagnostics on, at the post-fixpoint
    /// environment. On return `env` is the loop-head fixpoint: a
    /// sound over-approximation of the state after 0, 1, 2, …
    /// iterations.
    fn analyze_loop(&mut self, body: &Prog, env: &mut Env) {
        let saved_mute = self.mute;
        self.mute = true;
        loop {
            let mut out = env.clone();
            self.path.push(0);
            self.exec(body, &mut out, false);
            self.path.pop();
            let joined = join_env(env, &out);
            if joined == *env {
                break;
            }
            *env = joined;
        }
        self.mute = saved_mute;
        let mut replay = env.clone();
        self.path.push(0);
        self.exec(body, &mut replay, false);
        self.path.pop();
    }

    /// Do `a` and `b` provably evaluate to the same value here? True
    /// when they share a simplified form under this program point's
    /// rank oracle — the rewrites preserve semantics, so equal forms
    /// mean equal runtime values (and hence equal ranks). This is also
    /// what keeps the verdict invariant under
    /// [`crate::simplify_prog_checked`], which collapses `a & a` to
    /// `a`.
    fn provably_same_value(&self, a: &Term, b: &Term, env: &Env) -> bool {
        if a == b {
            return true;
        }
        let ranks = self.var_ranks(env);
        let schema = self.schema;
        let oracle = move |u: &Term| term_rank(u, schema, &ranks).known();
        recdb_qlhs::simplify_term_with(a, &oracle) == recdb_qlhs::simplify_term_with(b, &oracle)
    }

    /// `W0106`: the assigned term has a rewrite the rank oracle can
    /// justify at this program point.
    fn lint_simplifiable(&mut self, t: &Term, env: &Env) {
        if self.mute {
            return;
        }
        let ranks = self.var_ranks(env);
        let schema = self.schema;
        let oracle = move |u: &Term| term_rank(u, schema, &ranks).known();
        let s = recdb_qlhs::simplify_term_with(t, &oracle);
        if s != *t {
            self.emit(
                Code::SimplifiableTerm,
                format!("`{t}` simplifies to `{s}`"),
                Some("double negation, self-intersection, or a rank-provable swap".into()),
                false,
            );
        }
    }
}

/// `W0102`: variables assigned somewhere but read nowhere (neither in
/// a term nor as a loop guard). `Y1` is exempt — it is the program's
/// output.
fn dead_variable_lints(p: &Prog) -> Vec<Diagnostic> {
    use std::collections::BTreeMap;
    fn term_reads(t: &Term, reads: &mut std::collections::BTreeSet<VarId>) {
        match t {
            Term::E | Term::Rel(_) | Term::Const(_) => {}
            Term::Var(v) => {
                reads.insert(*v);
            }
            Term::And(a, b) => {
                term_reads(a, reads);
                term_reads(b, reads);
            }
            Term::Not(e) | Term::Up(e) | Term::Down(e) | Term::Swap(e) => term_reads(e, reads),
        }
    }
    fn walk(
        p: &Prog,
        path: &mut NodePath,
        reads: &mut std::collections::BTreeSet<VarId>,
        writes: &mut BTreeMap<VarId, NodePath>,
    ) {
        match p {
            Prog::Assign(v, t) => {
                writes.entry(*v).or_insert_with(|| path.clone());
                term_reads(t, reads);
            }
            Prog::Seq(ps) => {
                for (i, q) in ps.iter().enumerate() {
                    path.push(i as u32);
                    walk(q, path, reads, writes);
                    path.pop();
                }
            }
            Prog::WhileEmpty(v, body)
            | Prog::WhileSingleton(v, body)
            | Prog::WhileFinite(v, body) => {
                reads.insert(*v);
                path.push(0);
                walk(body, path, reads, writes);
                path.pop();
            }
        }
    }
    let mut reads = std::collections::BTreeSet::new();
    let mut writes = BTreeMap::new();
    walk(p, &mut Vec::new(), &mut reads, &mut writes);
    writes
        .into_iter()
        .filter(|(v, _)| *v != 0 && !reads.contains(v))
        .map(|(v, path)| {
            let d = Diagnostic::new(
                Code::DeadVariable,
                path,
                format!("`Y{}` is assigned but never read", v + 1),
            )
            .with_note("Y1 is the output; every other variable should feed it".to_string());
            d.record();
            d
        })
        .collect()
}

/// Analyzes `p` against `schema` as a `dialect` program.
///
/// This is the front door of the crate: rank/arity inference, dialect
/// checking, lints, and the [`Verdict`] in one pass. Bumps the
/// `analyze.programs` and `analyze.diagnostics.<code>` counters when a
/// `recdb-obs` recorder is installed.
pub fn analyze_prog(p: &Prog, schema: &Schema, dialect: Dialect) -> Analysis {
    recdb_obs::count("analyze.programs", 1);
    let _t = recdb_obs::span("analyze.prog_seconds");
    let nvars = p.max_var().map_or(1, |m| m + 1).max(1);
    let mut a = Analyzer {
        schema,
        dialect,
        diags: Vec::new(),
        mute: false,
        definite_error: false,
        path: Vec::new(),
    };
    let mut env: Env = vec![VarState::UNSET; nvars];
    a.exec(p, &mut env, true);
    a.diags.extend(dead_variable_lints(p));
    let verdict = if a.definite_error {
        Verdict::Unsafe
    } else if a
        .diags
        .iter()
        .any(|d| d.severity() == Severity::Error || d.code == Code::UnprovableRank)
    {
        Verdict::Unknown
    } else {
        Verdict::Safe
    };
    Analysis {
        dialect,
        verdict,
        diagnostics: a.diags,
        exit_ranks: env.iter().map(|s| s.rank).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_qlhs::parse_program;

    fn s2() -> Schema {
        Schema::new(vec![2])
    }

    fn analyze_src(src: &str, dialect: Dialect) -> Analysis {
        analyze_prog(&parse_program(src).unwrap(), &s2(), dialect)
    }

    #[test]
    fn straight_line_mismatch_is_unsafe() {
        let a = analyze_src("Y1 := E & down(E);", Dialect::Ql);
        assert_eq!(a.verdict, Verdict::Unsafe);
        assert!(a.has(Code::RankMismatch));
    }

    #[test]
    fn clean_program_is_safe_with_exact_ranks() {
        let a = analyze_src("Y2 := up(R1); Y1 := swap(Y2) & Y2;", Dialect::Ql);
        assert_eq!(a.verdict, Verdict::Safe, "{:?}", a.diagnostics);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert_eq!(a.exit_ranks[0], AbsRank::Known(3));
        assert_eq!(a.exit_ranks[1], AbsRank::Known(3));
    }

    #[test]
    fn missing_relation_is_unsafe_on_the_spine() {
        let a = analyze_src("Y1 := R2;", Dialect::Ql);
        assert_eq!(a.verdict, Verdict::Unsafe);
        assert!(a.has(Code::NoSuchRelation));
    }

    #[test]
    fn loop_body_mismatch_is_unknown_not_unsafe() {
        // The defect sits in a body the analysis cannot prove runs.
        let a = analyze_src(
            "Y1 := E; while single(Y1) { Y2 := E & down(E); }",
            Dialect::Qlhs,
        );
        assert_eq!(a.verdict, Verdict::Unknown);
        assert!(a.has(Code::RankMismatch));
    }

    #[test]
    fn dialect_violation_is_unsafe_even_inside_a_loop() {
        // Interpreters statically reject illegal tests in run(), so
        // reachability does not matter.
        let a = analyze_src(
            "Y1 := E; while empty(Y2) { while single(Y1) { Y1 := E; } Y2 := E; }",
            Dialect::Ql,
        );
        assert_eq!(a.verdict, Verdict::Unsafe);
        assert!(a.has(Code::IllegalSingletonTest));
    }

    #[test]
    fn rank_disagreement_across_loop_degrades_to_unknown() {
        // Y2 is rank 0 before the loop and rank 1 after one iteration:
        // the join is ⊤, so `Y2 & E` is unprovable, not a definite
        // mismatch.
        let a = analyze_src(
            "while empty(Y1) { Y2 := up(Y2); Y1 := E; } Y1 := Y2 & E;",
            Dialect::Ql,
        );
        assert_eq!(a.verdict, Verdict::Unknown);
        assert!(a.has(Code::UnprovableRank));
        assert!(!a.has(Code::RankMismatch));
    }

    #[test]
    fn self_intersection_agrees_even_at_top_rank() {
        // Y1's rank is ⊤ at the loop fixpoint, but `Y1 & Y1` cannot
        // mismatch (same value on both sides) — and neither can
        // `!!Y1 & Y1`, whose operands share a simplified form.
        let a = analyze_src(
            "while empty(Y1) { Y2 := R1; Y1 := Y1 & Y1; Y1 := Y2; Y1 := E; }",
            Dialect::Ql,
        );
        assert!(!a.has(Code::UnprovableRank), "{:?}", a.diagnostics);
        assert_eq!(a.verdict, Verdict::Safe);
        let a = analyze_src(
            "while empty(Y1) { Y2 := up(Y2); Y1 := !!Y2 & Y2; Y1 := E; }",
            Dialect::Ql,
        );
        assert!(!a.has(Code::UnprovableRank), "{:?}", a.diagnostics);
    }

    #[test]
    fn use_before_assign_and_down_on_rank0_are_warnings_only() {
        let a = analyze_src("Y1 := down(Y2);", Dialect::Ql);
        // Y2 unassigned → rank 0; down on it → empty rank-0. No error.
        assert!(a.has(Code::UseBeforeAssign));
        assert!(a.has(Code::DownOnRankZero));
        assert_eq!(a.verdict, Verdict::Safe);
    }

    #[test]
    fn dead_variable_flagged_but_output_exempt() {
        let a = analyze_src("Y1 := E; Y3 := E;", Dialect::Ql);
        let dead: Vec<_> = a
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::DeadVariable)
            .collect();
        assert_eq!(dead.len(), 1);
        assert!(dead[0].message.contains("Y3"));
        assert_eq!(a.verdict, Verdict::Safe);
    }

    #[test]
    fn unreachable_and_divergent_loops() {
        // Guard var provably non-empty on entry → body unreachable.
        let a = analyze_src("Y1 := E; while empty(Y1) { Y1 := E; }", Dialect::Ql);
        assert!(a.has(Code::UnreachableLoop), "{:?}", a.diagnostics);
        // Guard var provably empty at every iteration → divergence.
        let a = analyze_src("while empty(Y1) { Y2 := E; }", Dialect::Ql);
        assert!(a.has(Code::DivergentLoop), "{:?}", a.diagnostics);
        // A loop that genuinely flips its guard gets neither lint.
        let a = analyze_src("while empty(Y1) { Y1 := E; }", Dialect::Ql);
        assert!(!a.has(Code::UnreachableLoop));
        assert!(!a.has(Code::DivergentLoop));
    }

    #[test]
    fn while_empty_exit_refines_to_nonempty() {
        // R1's emptiness is unknown, so inside/after the first loop
        // Y1 is ⊤ — but a normal exit from `while empty(Y1)` means
        // Y1 ≠ ∅, so the second loop's body is unreachable.
        let a = analyze_src(
            "while empty(Y1) { Y1 := R1; } while empty(Y1) { Y2 := E; }",
            Dialect::Ql,
        );
        assert!(a.has(Code::UnreachableLoop), "{:?}", a.diagnostics);
    }

    #[test]
    fn simplifiable_term_lint_uses_inferred_ranks() {
        // swap(swap(R1)) is provably rank 2 with the schema.
        let a = analyze_src("Y1 := swap(swap(R1));", Dialect::Ql);
        assert!(a.has(Code::SimplifiableTerm), "{:?}", a.diagnostics);
        // Plain R1 has nothing to simplify.
        let a = analyze_src("Y1 := R1;", Dialect::Ql);
        assert!(!a.has(Code::SimplifiableTerm));
    }

    #[test]
    fn analyzer_dialect_findings_match_the_qlhs_checker() {
        let progs = [
            "Y1 := E;",
            "while single(Y1) { Y1 := E; }",
            "while finite(Y1) { Y1 := E; }",
            "while empty(Y1) { while finite(Y2) { Y2 := E; } Y1 := E; }",
        ];
        for src in progs {
            let p = parse_program(src).unwrap();
            for d in Dialect::ALL {
                let a = analyze_prog(&p, &s2(), d);
                let analyzer_rejects =
                    a.has(Code::IllegalSingletonTest) || a.has(Code::IllegalFinitenessTest);
                assert_eq!(analyzer_rejects, d.check(&p).is_err(), "{src} under {d}");
            }
        }
    }

    #[test]
    fn nested_loop_diagnostics_are_not_duplicated() {
        let a = analyze_src(
            "while empty(Y1) { while empty(Y2) { Y3 := E & down(E); Y2 := E; } Y1 := E; }",
            Dialect::Ql,
        );
        let mismatches = a
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::RankMismatch)
            .count();
        assert_eq!(mismatches, 1, "{:?}", a.diagnostics);
    }

    #[test]
    fn paths_locate_the_offending_statement() {
        let a = analyze_src("Y1 := E; Y1 := E & down(E);", Dialect::Ql);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::RankMismatch)
            .unwrap();
        assert_eq!(d.path, vec![1]);
    }
}
