//! # recdb-analyze — static semantic analysis for the QL family and L⁻
//!
//! Everything the repo can say about a program *without running it*:
//!
//! * **Rank/arity inference** ([`analyze_prog`], [`rank`]) — an
//!   abstract interpretation over the lattice
//!   `⊥ ⊑ Known(k) ⊑ ⊤` whose transfer function is *exact*: a
//!   `Known(k)` is a proof that the value has rank `k` on every
//!   execution. Detects `&` rank mismatches, out-of-schema `Relᵢ`,
//!   and use-before-assign, with `while` bodies iterated to a
//!   fixpoint.
//! * **Dialect checking** — delegated to [`recdb_qlhs::dialect`] (the
//!   same checker the interpreters run in their `run` entry points),
//!   surfaced as coded diagnostics `E0003`/`E0004`.
//! * **Lints** — dead variables, unreachable and divergent loops
//!   (constant-emptiness propagation), `down` on rank 0, and
//!   rank-provable simplification opportunities.
//! * **L⁻ analysis** ([`analyze_formula`]) — schema conformance,
//!   quantifier-freeness, free-variable/head agreement, polarity-aware
//!   active-domain safety, and a syntactic EF-rank upper bound.
//! * **Verdicts** ([`Verdict`]) — `Safe` (no rank/arity/dialect error
//!   on any run), `Unsafe` (every run errors), `Unknown`. The
//!   conformance harness checks these claims differentially against
//!   all three interpreters on seeded random programs.
//! * **Diagnostics** ([`diag`]) — stable codes, severities, tree
//!   paths, spans (via the parser's span table), a rustc-style
//!   renderer, and `analyze.diagnostics.<code>` counters on the
//!   `recdb-obs` metrics layer.
//!
//! The `analyze` binary is the CLI front end.

#![warn(missing_docs)]

pub mod cost;
pub mod dataflow;
pub mod delta;
pub mod diag;
pub mod generic;
pub mod logic;
pub mod prog;
pub mod rank;
pub mod simplify;
pub mod terminate;

pub use cost::{analyze_cost, Bound, CostAnalysis, CostEnv, CostVerdict, Poly, StmtCost};
pub use dataflow::{analyze_dataflow, DataflowAnalysis, RegPool};
pub use delta::{analyze_delta, DeltaAnalysis, LoopDelta};
pub use diag::{Code, Diagnostic, Severity};
pub use generic::{analyze_genericity, GenericAnalysis, GenericityVerdict};
pub use logic::{analyze_formula, FormulaReport};
pub use prog::{analyze_prog, Analysis, Verdict};
pub use rank::{term_rank, AbsEmpty, AbsRank};
pub use simplify::simplify_prog_checked;
pub use terminate::{
    analyze_termination, LoopBound, LoopInfo, LoopKind, TerminationAnalysis, TerminationVerdict,
};

/// Safety, termination, and genericity in one call — the three passes
/// composed in dependency order (termination uses the safety verdict,
/// genericity uses both).
#[derive(Clone, Debug)]
pub struct FullAnalysis {
    /// Rank/arity/dialect safety ([`analyze_prog`]).
    pub safety: Analysis,
    /// Loop bounds and the termination verdict ([`analyze_termination`]).
    pub termination: TerminationAnalysis,
    /// The C-genericity verdict ([`analyze_genericity`]).
    pub genericity: GenericAnalysis,
    /// Per-loop semi-naive eligibility ([`analyze_delta`]).
    pub delta: DeltaAnalysis,
    /// Cardinality and work upper bounds ([`analyze_cost`]).
    pub cost: CostAnalysis,
}

/// Runs all three program analyses on `p`.
pub fn analyze_full(
    p: &recdb_qlhs::Prog,
    schema: &recdb_core::Schema,
    dialect: recdb_qlhs::Dialect,
) -> FullAnalysis {
    let safety = analyze_prog(p, schema, dialect);
    let termination = analyze_termination(p, schema, dialect, &safety);
    let genericity = analyze_genericity(p, schema, dialect, &safety, &termination);
    let delta = analyze_delta(p);
    let cost = analyze_cost(p, schema, dialect, &safety, &termination);
    FullAnalysis {
        safety,
        termination,
        genericity,
        delta,
        cost,
    }
}
