//! Per-variable dataflow for the bytecode compiler (DESIGN.md §12).
//!
//! Three classical analyses over the QL AST, consumed by `recdb-vm`'s
//! lowering pass and re-derived independently by its verifier:
//!
//! * **liveness** — backward may-analysis with a fixpoint over loop
//!   bodies (a body may run zero or more times; the guard variable is
//!   live at every loop head). `Y1` is live at program exit — it *is*
//!   the program's result.
//! * **dead stores** — assignments whose variable is not live
//!   afterwards. The compiler may drop the materialization (the term's
//!   statically-counted fuel ticks are preserved by a `nop`), but only
//!   under the additional tick-freedom and error-freedom side
//!   conditions the compiler and verifier each re-check.
//! * **last use / register reuse** — term trees use each subterm value
//!   exactly once (the parent edge), so temporaries die the moment the
//!   parent instruction consumes them; [`RegPool`] turns that into a
//!   static rank-typed register allocation where each temp slot holds
//!   values of one proven rank and the frame size is a compile-time
//!   constant.

use recdb_qlhs::{NodePath, Prog, Term, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// The result of [`analyze_dataflow`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataflowAnalysis {
    /// Variables live at program entry (read before any write on some
    /// path). Semantically these read the unset value `∅` rank 0.
    pub live_in: BTreeSet<VarId>,
    /// Tree paths of `Assign` statements whose variable is dead
    /// afterwards — the value is never read by a later term or loop
    /// guard and is not the final `Y1`.
    pub dead_stores: BTreeSet<NodePath>,
    /// Total assignments in the program.
    pub stores: usize,
}

fn term_vars(t: &Term, out: &mut BTreeSet<VarId>) {
    match t {
        Term::E | Term::Rel(_) | Term::Const(_) => {}
        Term::Var(v) => {
            out.insert(*v);
        }
        Term::And(a, b) => {
            term_vars(a, out);
            term_vars(b, out);
        }
        Term::Not(e) | Term::Up(e) | Term::Down(e) | Term::Swap(e) => term_vars(e, out),
    }
}

/// Backward liveness transfer over one statement. `live` is the set
/// live *after* `p` on entry and the set live *before* `p` on return.
/// When `record` is set, dead stores are collected (recording runs
/// only after loop fixpoints converge).
fn live_prog(
    p: &Prog,
    path: &mut NodePath,
    live: &mut BTreeSet<VarId>,
    record: bool,
    out: &mut DataflowAnalysis,
) {
    match p {
        Prog::Assign(v, t) => {
            if record {
                out.stores += 1;
                if !live.contains(v) {
                    out.dead_stores.insert(path.clone());
                }
            }
            live.remove(v);
            term_vars(t, live);
        }
        Prog::Seq(ps) => {
            for (i, q) in ps.iter().enumerate().rev() {
                path.push(i as u32);
                live_prog(q, path, live, record, out);
                path.pop();
            }
        }
        Prog::WhileEmpty(v, body) | Prog::WhileSingleton(v, body) | Prog::WhileFinite(v, body) => {
            // live(head) = {guard} ∪ live(exit) ∪ transfer(body, live(head))
            let exit = live.clone();
            let mut head = exit.clone();
            head.insert(*v);
            loop {
                let mut through = head.clone();
                path.push(0);
                live_prog(body, path, &mut through, false, out);
                path.pop();
                let mut next = exit.clone();
                next.insert(*v);
                next.extend(through);
                if next == head {
                    break;
                }
                head = next;
            }
            let mut through = head.clone();
            path.push(0);
            live_prog(body, path, &mut through, record, out);
            path.pop();
            *live = head;
        }
    }
}

/// Runs liveness + dead-store analysis. `Y1` (variable 0) seeds the
/// live set at program exit.
pub fn analyze_dataflow(p: &Prog) -> DataflowAnalysis {
    let mut out = DataflowAnalysis {
        live_in: BTreeSet::new(),
        dead_stores: BTreeSet::new(),
        stores: 0,
    };
    let mut live: BTreeSet<VarId> = [0].into_iter().collect();
    live_prog(p, &mut Vec::new(), &mut live, true, &mut out);
    out.live_in = live;
    out
}

/// A static rank-typed register allocator. Registers `0..nvars` are
/// the variables' home slots; temporaries are allocated above them,
/// one proven rank per slot, and a released temp is only reused for a
/// value of the same rank — so every slot's rank is a compile-time
/// constant and the frame never grows at runtime.
#[derive(Clone, Debug)]
pub struct RegPool {
    nvars: usize,
    /// Rank per temp slot, by temp index (register `nvars + i`).
    slots: Vec<usize>,
    free: BTreeMap<usize, Vec<usize>>,
}

impl RegPool {
    /// A pool for a program with `nvars` home registers.
    pub fn new(nvars: usize) -> RegPool {
        RegPool {
            nvars,
            slots: Vec::new(),
            free: BTreeMap::new(),
        }
    }

    /// Allocates a temp register for a value of the given rank,
    /// reusing a released same-rank slot when one exists.
    pub fn alloc(&mut self, rank: usize) -> usize {
        if let Some(slot) = self.free.get_mut(&rank).and_then(Vec::pop) {
            return self.nvars + slot;
        }
        self.slots.push(rank);
        self.nvars + self.slots.len() - 1
    }

    /// Releases a temp register (home registers are never released —
    /// passing one is a no-op).
    pub fn release(&mut self, reg: usize) {
        if let Some(slot) = reg.checked_sub(self.nvars) {
            if let Some(&rank) = self.slots.get(slot) {
                self.free.entry(rank).or_default().push(slot);
            }
        }
    }

    /// The compile-time frame size: homes plus every temp slot ever
    /// allocated.
    pub fn frame_size(&self) -> usize {
        self.nvars + self.slots.len()
    }

    /// The declared rank of a register's slot (`None` for homes, whose
    /// rank is flow-dependent).
    pub fn slot_rank(&self, reg: usize) -> Option<usize> {
        reg.checked_sub(self.nvars)
            .and_then(|slot| self.slots.get(slot).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_qlhs::parse_program;

    fn dataflow(src: &str) -> DataflowAnalysis {
        analyze_dataflow(&parse_program(src).unwrap())
    }

    #[test]
    fn straight_line_dead_store_found() {
        // Y2 is written and never read; Y1 is the result.
        let a = dataflow("Y2 := E; Y1 := E;");
        assert_eq!(a.stores, 2);
        assert_eq!(a.dead_stores, [vec![0]].into_iter().collect());
    }

    #[test]
    fn overwritten_y1_is_dead() {
        let a = dataflow("Y1 := E; Y1 := R1;");
        assert_eq!(a.dead_stores, [vec![0]].into_iter().collect());
    }

    #[test]
    fn guard_variables_are_live() {
        // Y2 is only read by the guard — its store is live.
        let a = dataflow("Y2 := E; while empty(Y2) { Y1 := E; }");
        assert!(a.dead_stores.is_empty());
    }

    #[test]
    fn loop_carried_reads_keep_stores_live() {
        // Y2 := E before the loop feeds Y1 := Y2 inside it; the loop
        // may iterate more than once, so Y2's in-loop rewrite is live
        // around the back edge too.
        let a = dataflow("Y2 := E; while empty(Y1) { Y1 := Y2; Y2 := Y2; }");
        assert!(a.dead_stores.is_empty(), "{:?}", a.dead_stores);
    }

    #[test]
    fn dead_store_inside_loop() {
        let a = dataflow("while empty(Y1) { Y3 := E; Y1 := E; }");
        assert_eq!(a.dead_stores, [vec![0, 0, 0]].into_iter().collect());
    }

    #[test]
    fn live_in_reports_unwritten_reads() {
        let a = dataflow("Y1 := Y5;");
        assert_eq!(a.live_in, [4].into_iter().collect());
    }

    #[test]
    fn pool_reuses_same_rank_slots_only() {
        let mut pool = RegPool::new(2);
        let a = pool.alloc(2);
        assert_eq!(a, 2);
        pool.release(a);
        assert_eq!(pool.alloc(2), a, "same-rank slot is reused");
        let b = pool.alloc(3);
        assert_eq!(b, 3, "different rank gets a fresh slot");
        assert_eq!(pool.frame_size(), 4);
        assert_eq!(pool.slot_rank(2), Some(2));
        assert_eq!(pool.slot_rank(0), None);
        pool.release(0); // home: no-op
        assert_eq!(pool.frame_size(), 4);
    }
}
