//! Static analysis of first-order / L⁻ formulas ([`recdb_logic`]).
//!
//! Three families of checks:
//!
//! * **Schema conformance** (`E0201`) — every relational atom's index
//!   and argument count against the schema (delegates to
//!   [`Formula::validate`], turning its string error into a coded
//!   diagnostic).
//! * **L⁻ shape** (`E0202`, `E0203`) — the paper's L⁻ queries (§2)
//!   are `{(x₀,…,x_{r−1}) | φ}` with φ quantifier-free and free
//!   variables drawn from the head.
//! * **Adom safety** (`W0201`) — over a recursive data base the
//!   domain is infinite, so a satisfying assignment for e.g. `¬R(x)`
//!   ranges over infinitely many values. A free variable is flagged
//!   unless it is *positively bound*: under a polarity-aware walk, it
//!   occurs in a relational atom in positive position along every
//!   disjunct. This is the classic syntactic safe-range
//!   approximation — sound (never flags a genuinely bound variable's
//!   formula as safe) but incomplete.
//!
//! [`FormulaReport::ef_rank_bound`] is the syntactic quantifier depth
//! — an upper bound on the Ehrenfeucht–Fraïssé rank `r` needed to
//! distinguish tuples with the formula (`u ≡ᵣ v` agreement, Def 3.4
//! commentary), and hence on the `r` for which `≡ᵣ`-class reasoning
//! (Lemma 3.5 machinery) must be run.

use crate::diag::{Code, Diagnostic};
use recdb_core::Schema;
use recdb_logic::{Formula, Var};
use std::collections::BTreeSet;

/// The result of [`analyze_formula`].
#[derive(Clone, Debug)]
pub struct FormulaReport {
    /// Coded findings (empty paths — formulas have no statement tree).
    pub diagnostics: Vec<Diagnostic>,
    /// Free variables, sorted.
    pub free_vars: Vec<Var>,
    /// Is the formula quantifier-free (a legal L⁻ body)?
    pub quantifier_free: bool,
    /// Syntactic upper bound on the EF rank needed for this formula:
    /// its quantifier depth.
    pub ef_rank_bound: usize,
    /// Free variables *not* provably restricted to the active domain.
    pub adom_unsafe_vars: Vec<Var>,
}

impl FormulaReport {
    /// No error-severity findings?
    pub fn is_clean(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity() == crate::diag::Severity::Warning)
    }
}

/// Free variables positively bound by a relational atom along every
/// way of satisfying `f`. `None` means "all variables" (the formula
/// is unsatisfiable in this polarity, so the claim holds vacuously).
fn positively_bound(f: &Formula, positive: bool) -> Option<BTreeSet<Var>> {
    match f {
        Formula::True => {
            if positive {
                Some(BTreeSet::new())
            } else {
                None // ¬true never holds: vacuously binds everything.
            }
        }
        Formula::False => {
            if positive {
                None
            } else {
                Some(BTreeSet::new())
            }
        }
        // x = y restricts neither side to the active domain.
        Formula::Eq(..) => Some(BTreeSet::new()),
        Formula::Rel(_, vs) => {
            if positive {
                Some(vs.iter().copied().collect())
            } else {
                // ¬R(x̄) holds for almost all of an infinite domain.
                Some(BTreeSet::new())
            }
        }
        Formula::Not(g) => positively_bound(g, !positive),
        Formula::And(gs) => {
            // Positive conjunction: bound by any conjunct suffices.
            // Negative (¬(g₁∧…)) = disjunction of negations: need all.
            combine(gs.iter().map(|g| positively_bound(g, positive)), positive)
        }
        Formula::Or(gs) => combine(gs.iter().map(|g| positively_bound(g, positive)), !positive),
        Formula::Implies(a, b) => {
            // a → b ≡ ¬a ∨ b.
            let parts = [
                positively_bound(a, !positive),
                positively_bound(b, positive),
            ];
            combine(parts.into_iter(), !positive)
        }
        // φ ↔ ψ can be satisfied with both sides false, which binds
        // nothing.
        Formula::Iff(..) => Some(BTreeSet::new()),
        Formula::Exists(v, g) | Formula::Forall(v, g) => {
            positively_bound(g, positive).map(|mut s| {
                s.remove(v);
                s
            })
        }
    }
}

/// Union (`true`) or intersection (`false`) of bound-variable sets,
/// with `None` as the absorbing "everything" element.
fn combine(
    parts: impl Iterator<Item = Option<BTreeSet<Var>>>,
    union: bool,
) -> Option<BTreeSet<Var>> {
    let mut acc: Option<Option<BTreeSet<Var>>> = None; // None = no parts yet
    for p in parts {
        acc = Some(match (acc, p) {
            (None, p) => p,
            (Some(None), p) | (Some(p), None) => {
                if union {
                    None
                } else {
                    p
                }
            }
            (Some(Some(a)), Some(b)) => Some(if union {
                a.union(&b).copied().collect()
            } else {
                a.intersection(&b).copied().collect()
            }),
        });
    }
    // An empty conjunction is `true` (binds nothing); an empty
    // disjunction is `false` (binds everything vacuously).
    acc.unwrap_or(if union { Some(BTreeSet::new()) } else { None })
}

/// Analyzes `f` against `schema`.
///
/// `declared_rank: Some(r)` treats `f` as the body of an r-ary query
/// `{(x₀,…,x_{r−1}) | f}` and checks its free variables against the
/// head. `lminus` additionally requires the body to be
/// quantifier-free (the L⁻ fragment of §2).
pub fn analyze_formula(
    f: &Formula,
    schema: &Schema,
    declared_rank: Option<usize>,
    lminus: bool,
) -> FormulaReport {
    recdb_obs::count("analyze.formulas", 1);
    let mut diags = Vec::new();
    let mut emit = |code: Code, msg: String, note: Option<String>| {
        let mut d = Diagnostic::new(code, Vec::new(), msg);
        if let Some(n) = note {
            d = d.with_note(n);
        }
        d.record();
        diags.push(d);
    };

    if let Err(e) = f.validate(schema) {
        emit(Code::MalformedAtom, e, None);
    }

    let quantifier_free = f.is_quantifier_free();
    if lminus && !quantifier_free {
        emit(
            Code::QuantifierInLMinus,
            "L⁻ bodies are quantifier-free, but this formula quantifies".to_string(),
            Some("quantified queries belong to full L, outside the paper's L⁻ fragment".into()),
        );
    }

    let free_vars = f.free_vars();
    if let Some(r) = declared_rank {
        for v in &free_vars {
            if (v.0 as usize) >= r {
                emit(
                    Code::FreeVarBeyondRank,
                    format!("free variable {v} is outside the declared rank {r}"),
                    Some(format!("head variables are x0..x{}", r.saturating_sub(1))),
                );
            }
        }
    }

    let bound = positively_bound(f, true).unwrap_or_else(|| free_vars.iter().copied().collect());
    let adom_unsafe_vars: Vec<Var> = free_vars
        .iter()
        .copied()
        .filter(|v| !bound.contains(v))
        .collect();
    for v in &adom_unsafe_vars {
        emit(
            Code::AdomUnsafe,
            format!("free variable {v} is not bound by any positive relational atom"),
            Some(
                "over a recursive data base the domain is infinite: satisfying \
                 assignments for this variable need not stay in the active domain"
                    .into(),
            ),
        );
    }

    FormulaReport {
        diagnostics: diags,
        free_vars,
        quantifier_free,
        ef_rank_bound: f.quantifier_depth(),
        adom_unsafe_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s2() -> Schema {
        Schema::new(vec![2])
    }

    fn rel(i: usize, vs: &[u32]) -> Formula {
        Formula::Rel(i, vs.iter().map(|&v| Var(v)).collect())
    }

    #[test]
    fn clean_qf_query_passes() {
        // { (x0,x1) | R(x0,x1) ∧ ¬R(x1,x0) }
        let f = Formula::and(vec![rel(0, &[0, 1]), rel(0, &[1, 0]).not()]);
        let r = analyze_formula(&f, &s2(), Some(2), true);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert!(r.quantifier_free);
        assert_eq!(r.ef_rank_bound, 0);
        assert_eq!(r.free_vars, vec![Var(0), Var(1)]);
    }

    #[test]
    fn malformed_atoms_are_caught() {
        // Wrong arity.
        let r = analyze_formula(&rel(0, &[0]), &s2(), None, false);
        assert!(r.diagnostics.iter().any(|d| d.code == Code::MalformedAtom));
        // Index out of schema.
        let r = analyze_formula(&rel(3, &[0, 1]), &s2(), None, false);
        assert!(r.diagnostics.iter().any(|d| d.code == Code::MalformedAtom));
        assert!(!r.is_clean());
    }

    #[test]
    fn quantifiers_rejected_in_lminus_with_depth_bound() {
        let f = Formula::Exists(
            Var(2),
            Box::new(Formula::Forall(Var(3), Box::new(rel(0, &[2, 3])))),
        );
        let r = analyze_formula(&f, &s2(), Some(0), true);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == Code::QuantifierInLMinus));
        assert_eq!(r.ef_rank_bound, 2);
        // Without the lminus flag, quantification is fine.
        let r = analyze_formula(&f, &s2(), Some(0), false);
        assert!(!r
            .diagnostics
            .iter()
            .any(|d| d.code == Code::QuantifierInLMinus));
    }

    #[test]
    fn free_var_beyond_declared_rank() {
        let f = rel(0, &[0, 5]);
        let r = analyze_formula(&f, &s2(), Some(2), true);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == Code::FreeVarBeyondRank));
    }

    #[test]
    fn adom_safety_is_polarity_aware() {
        // ¬R(x0,x1): both free vars unbound.
        let r = analyze_formula(&rel(0, &[0, 1]).not(), &s2(), Some(2), true);
        assert_eq!(r.adom_unsafe_vars, vec![Var(0), Var(1)]);
        // R(x0,x1) ∧ ¬R(x1,x0): the positive conjunct binds both.
        let f = Formula::and(vec![rel(0, &[0, 1]), rel(0, &[1, 0]).not()]);
        let r = analyze_formula(&f, &s2(), Some(2), true);
        assert!(r.adom_unsafe_vars.is_empty());
        // R(x0,x0) ∨ x0=x1: the equality disjunct binds nothing, so
        // both variables are unsafe (x0 escapes via the right
        // disjunct).
        let f = Formula::Or(vec![rel(0, &[0, 0]), Formula::Eq(Var(0), Var(1))]);
        let r = analyze_formula(&f, &s2(), Some(2), true);
        assert_eq!(r.adom_unsafe_vars, vec![Var(0), Var(1)]);
        // Double negation restores polarity: ¬¬R(x0,x1) binds.
        let f = Formula::Not(Box::new(Formula::Not(Box::new(rel(0, &[0, 1])))));
        let r = analyze_formula(&f, &s2(), Some(2), true);
        assert!(r.adom_unsafe_vars.is_empty());
    }

    #[test]
    fn quantified_vars_are_not_reported_free() {
        let f = Formula::Exists(Var(1), Box::new(rel(0, &[0, 1])));
        let r = analyze_formula(&f, &s2(), Some(1), false);
        assert_eq!(r.free_vars, vec![Var(0)]);
        assert!(r.adom_unsafe_vars.is_empty());
    }
}
