//! Termination and progress: proved per-loop iteration bounds and
//! proved divergence.
//!
//! ## Where the bounds come from
//!
//! Three bound rules, each a *proof* (an upper bound on the number of
//! iterations of the loop on every run, on every database):
//!
//! * **B0 — refuted at entry.** The guard is provably false when the
//!   loop is first reached (`while empty(Y)` with `Y` provably
//!   non-empty, `while single(Y)` with `Y` provably empty): the body
//!   runs 0 times.
//! * **B1 — one abstract iteration refutes the guard.** Run the body
//!   once, abstractly, from the loop-head fixpoint environment *met
//!   with the guard-true constraint* (the only states an iteration can
//!   start from). If the resulting state refutes the guard, no
//!   iteration can be followed by another: the body runs at most once.
//! * **B2 — the refinement bound (QLhs only).** For
//!   `while single(Yv) { …; Yv := up(Yv); …}` where *every* write to
//!   `Yv` in the body is syntactically `Yv := up(Yv)` and at least one
//!   sits on the body's must-execute spine: over the infinite
//!   homogeneous databases `HsInterp` serves, `↑` of a rank-`r ≥ 1`
//!   singleton has at least two `≅_B`-classes — `u·u_last` and
//!   `u·fresh` have different equality patterns, and an isomorphism
//!   preserves equality patterns — so the guard `|Yv| = 1` is false at
//!   the next head. This is exactly the tree-refinement structure of
//!   P3.7/C3.3: a tuple's offspring in `Tⁿ⁺¹` are never a single
//!   class once the tuple has positive rank, and distinct parents
//!   have disjoint offspring (`Vⁿ⁺¹ᵣ↓ = Vⁿᵣ₊₁`), so `|↑X| ≥ |X|`.
//!   Bound: 1 iteration from rank ≥ 1, 2 from rank 0 (the first `↑`
//!   may land on a single class of rank-1 tuples — e.g. the infinite
//!   clique — but the second cannot).
//!
//! `while finite(Y)` never gets a bound: the analysis carries no
//! finiteness domain, and QLf+ loops can genuinely pump.
//!
//! ## Divergence
//!
//! `while empty(Y)` whose loop-head fixpoint proves `Y` empty at
//! *every* iteration (the same fact behind the `W0104` lint) never
//! exits once entered — and the fixpoint includes the entry state, so
//! it *is* entered. If such a loop sits on the program's must-execute
//! spine and the safety verdict is [`Verdict::Safe`] (no run can
//! bail out with an error first), every run of the whole program
//! diverges: control either reaches the loop (and stays) or is
//! already stuck inside an earlier non-terminating loop.
//!
//! The [`Verdict::Safe`]-style asymmetry applies here too:
//! `Terminates` and `Diverges` are proofs, `Unknown` is honest
//! ignorance. The conformance check `TERMINATE-BOUND` replays proved
//! bounds against the real interpreters with a counting executor.

use crate::diag::{Code, Diagnostic};
use crate::prog::{Analysis, Verdict};
use crate::rank::{AbsEmpty, AbsRank};
use recdb_core::Schema;
use recdb_qlhs::{Dialect, NodePath, Prog, Term, VarId};
use std::collections::BTreeMap;

/// What the analysis proved about one loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopBound {
    /// The body runs at most this many times, on every run and every
    /// database (for B2: every database the loop's dialect runs on).
    Bounded(u64),
    /// Once entered, the loop never exits — and its fixpoint proves it
    /// is entered whenever reached.
    Divergent,
    /// No bound proved.
    Unknown,
}

/// Which `while` test guards a loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopKind {
    /// `while empty(Y)` — all dialects.
    Empty,
    /// `while single(Y)` — QLhs.
    Singleton,
    /// `while finite(Y)` — QLf+.
    Finite,
}

/// One loop of the program, with the bound proved for it.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// Tree path of the `while` statement (same convention as
    /// [`Diagnostic::path`]).
    pub path: NodePath,
    /// The guard variable.
    pub guard: VarId,
    /// The guard's test.
    pub kind: LoopKind,
    /// The proved bound, if any.
    pub bound: LoopBound,
    /// Is the loop on the program's must-execute spine (not nested in
    /// any other loop's body)?
    pub on_spine: bool,
}

/// The whole-program termination verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TerminationVerdict {
    /// Every run of the program executes at most `iterations` loop
    /// iterations in total (summed over all loops, nested loops
    /// multiplied out) — so with enough fuel, every run completes.
    Terminates {
        /// The proved whole-program iteration budget.
        iterations: u64,
    },
    /// Every run of the program fails to halt.
    Diverges,
    /// Neither proved.
    Unknown,
}

impl std::fmt::Display for TerminationVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TerminationVerdict::Terminates { iterations } => {
                write!(f, "terminates (≤ {iterations} iterations)")
            }
            TerminationVerdict::Diverges => f.write_str("diverges"),
            TerminationVerdict::Unknown => f.write_str("unknown"),
        }
    }
}

/// The result of [`analyze_termination`].
#[derive(Clone, Debug)]
pub struct TerminationAnalysis {
    /// The whole-program verdict.
    pub verdict: TerminationVerdict,
    /// Every loop in the program, outer before inner, with its bound.
    pub loops: Vec<LoopInfo>,
    /// `W0401`/`W0402` findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl TerminationAnalysis {
    /// The proved bound of the loop at `path`, if any.
    pub fn bound_at(&self, path: &[u32]) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| l.path == path)
    }
}

/// Abstract state of one variable — the same (rank, emptiness) facts
/// the safety analysis computes, re-derived here without diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct VarAbs {
    rank: AbsRank,
    empty: AbsEmpty,
}

impl VarAbs {
    const UNSET: VarAbs = VarAbs {
        rank: AbsRank::Known(0),
        empty: AbsEmpty::Empty,
    };

    fn join(self, other: VarAbs) -> VarAbs {
        VarAbs {
            rank: self.rank.join(other.rank),
            empty: self.empty.join(other.empty),
        }
    }
}

type TEnv = Vec<VarAbs>;

fn join_env(a: &TEnv, b: &TEnv) -> TEnv {
    a.iter().zip(b).map(|(x, y)| x.join(*y)).collect()
}

/// The silent (rank, emptiness) transfer function — the same facts as
/// the safety analyzer's term walk, with error cases degraded to ⊤
/// instead of diagnosed (diagnosis is [`crate::analyze_prog`]'s job).
fn abs_term(t: &Term, schema: &Schema, dialect: Dialect, env: &TEnv) -> VarAbs {
    match t {
        Term::E => VarAbs {
            rank: AbsRank::Known(2),
            empty: if dialect == Dialect::QlfPlus {
                AbsEmpty::Top
            } else {
                AbsEmpty::NonEmpty
            },
        },
        Term::Rel(i) => VarAbs {
            rank: if *i < schema.len() {
                AbsRank::Known(schema.arity(*i))
            } else {
                AbsRank::Top
            },
            empty: AbsEmpty::Top,
        },
        Term::Const(_) => VarAbs {
            rank: AbsRank::Known(1),
            empty: AbsEmpty::NonEmpty,
        },
        Term::Var(v) => env.get(*v).copied().unwrap_or(VarAbs::UNSET),
        Term::And(a, b) => {
            let (x, y) = (
                abs_term(a, schema, dialect, env),
                abs_term(b, schema, dialect, env),
            );
            let rank = match (x.rank, y.rank) {
                (AbsRank::Known(p), AbsRank::Known(q)) if p == q => AbsRank::Known(p),
                _ if a == b => x.rank.join(y.rank),
                _ => AbsRank::Top,
            };
            let empty = if x.empty == AbsEmpty::Empty || y.empty == AbsEmpty::Empty {
                AbsEmpty::Empty
            } else {
                AbsEmpty::Top
            };
            VarAbs { rank, empty }
        }
        Term::Not(e) => {
            let x = abs_term(e, schema, dialect, env);
            let empty = match (x.rank, x.empty) {
                (AbsRank::Known(0), AbsEmpty::NonEmpty) => AbsEmpty::Empty,
                (AbsRank::Known(_), AbsEmpty::Empty) => AbsEmpty::NonEmpty,
                _ => AbsEmpty::Top,
            };
            VarAbs {
                rank: x.rank,
                empty,
            }
        }
        Term::Up(e) => {
            let x = abs_term(e, schema, dialect, env);
            let empty = match x.empty {
                AbsEmpty::Empty => AbsEmpty::Empty,
                AbsEmpty::NonEmpty if dialect != Dialect::QlfPlus => AbsEmpty::NonEmpty,
                _ => AbsEmpty::Top,
            };
            VarAbs {
                rank: x.rank.map(|k| k + 1),
                empty,
            }
        }
        Term::Down(e) => {
            let x = abs_term(e, schema, dialect, env);
            match x.rank {
                AbsRank::Known(0) => VarAbs {
                    rank: AbsRank::Known(0),
                    empty: AbsEmpty::Empty,
                },
                r => VarAbs {
                    rank: r.map(|k| k.saturating_sub(1)),
                    empty: if x.empty == AbsEmpty::Empty {
                        AbsEmpty::Empty
                    } else {
                        AbsEmpty::Top
                    },
                },
            }
        }
        Term::Swap(e) => abs_term(e, schema, dialect, env),
    }
}

struct TermAnalyzer<'a> {
    schema: &'a Schema,
    dialect: Dialect,
    loops: Vec<LoopInfo>,
    diags: Vec<Diagnostic>,
    path: NodePath,
}

impl TermAnalyzer<'_> {
    /// Walks `p`. `record` is off during fixpoint iterations and the
    /// B1 probe so each loop is classified exactly once, against its
    /// post-fixpoint entry environment.
    fn exec(&mut self, p: &Prog, env: &mut TEnv, must: bool, record: bool) {
        match p {
            Prog::Assign(v, t) => {
                let val = abs_term(t, self.schema, self.dialect, env);
                if *v >= env.len() {
                    env.resize(*v + 1, VarAbs::UNSET);
                }
                env[*v] = val;
            }
            Prog::Seq(ps) => {
                for (i, q) in ps.iter().enumerate() {
                    self.path.push(i as u32);
                    self.exec(q, env, must, record);
                    self.path.pop();
                }
            }
            Prog::WhileEmpty(v, body) => {
                self.exec_loop(LoopKind::Empty, *v, body, env, must, record)
            }
            Prog::WhileSingleton(v, body) => {
                self.exec_loop(LoopKind::Singleton, *v, body, env, must, record)
            }
            Prog::WhileFinite(v, body) => {
                self.exec_loop(LoopKind::Finite, *v, body, env, must, record)
            }
        }
    }

    fn fixpoint(&mut self, body: &Prog, env: &mut TEnv) {
        loop {
            let mut out = env.clone();
            self.path.push(0);
            self.exec(body, &mut out, false, false);
            self.path.pop();
            let joined = join_env(env, &out);
            if joined == *env {
                break;
            }
            *env = joined;
        }
    }

    fn exec_loop(
        &mut self,
        kind: LoopKind,
        v: VarId,
        body: &Prog,
        env: &mut TEnv,
        must: bool,
        record: bool,
    ) {
        let entry = env.get(v).copied().unwrap_or(VarAbs::UNSET);
        // B0: guard provably false the first time the loop is reached.
        let refuted_at_entry = match kind {
            LoopKind::Empty => entry.empty == AbsEmpty::NonEmpty,
            LoopKind::Singleton => entry.empty == AbsEmpty::Empty,
            LoopKind::Finite => false,
        };
        self.fixpoint(body, env);
        let fixed = env.get(v).copied().unwrap_or(VarAbs::UNSET);
        // The W0104 fact, now load-bearing: guard true at every
        // iteration (the fixpoint over-approximates every loop-head
        // state, entry included), so the loop is entered and never
        // left.
        let divergent = kind == LoopKind::Empty && fixed.empty == AbsEmpty::Empty;
        let bound = if refuted_at_entry {
            LoopBound::Bounded(0)
        } else if divergent {
            LoopBound::Divergent
        } else if let Some(b) = self.one_iteration_bound(kind, v, body, env) {
            LoopBound::Bounded(b)
        } else if let Some(b) = rank_growth_bound(self.dialect, kind, v, body, entry.rank) {
            LoopBound::Bounded(b)
        } else {
            LoopBound::Unknown
        };
        if record {
            match bound {
                LoopBound::Unknown => {
                    let d = Diagnostic::new(
                        Code::UnboundedLoop,
                        self.path.clone(),
                        format!("no iteration bound proved for this `while` on `Y{}`", v + 1),
                    )
                    .with_note(
                        "neither the guard-refutation rule (B0/B1) nor the QLhs \
                         refinement bound (B2) applies"
                            .to_string(),
                    );
                    d.record();
                    self.diags.push(d);
                }
                LoopBound::Divergent => {
                    let d = Diagnostic::new(
                        Code::ProvedDivergentLoop,
                        self.path.clone(),
                        format!(
                            "`Y{}` is provably empty at every iteration: this loop is \
                             entered and never exits",
                            v + 1
                        ),
                    );
                    d.record();
                    self.diags.push(d);
                }
                LoopBound::Bounded(_) => {}
            }
            self.loops.push(LoopInfo {
                path: self.path.clone(),
                guard: v,
                kind,
                bound,
                on_spine: must,
            });
            // Classify the inner loops once, at the post-fixpoint env.
            let mut replay = env.clone();
            self.path.push(0);
            self.exec(body, &mut replay, false, true);
            self.path.pop();
        }
        // Exit refinements (mirroring the safety analyzer): leaving
        // `while empty` means the guard went false, i.e. non-empty;
        // leaving `while finite` means |Y| = ∞, hence non-empty.
        if matches!(kind, LoopKind::Empty | LoopKind::Finite)
            && !divergent
            && v < env.len()
            && env[v].empty == AbsEmpty::Top
        {
            env[v].empty = AbsEmpty::NonEmpty;
        }
    }

    /// B1: from the loop-head fixpoint met with the guard-true
    /// constraint, does one abstract pass over the body refute the
    /// guard? Then no iteration is followed by another.
    fn one_iteration_bound(
        &mut self,
        kind: LoopKind,
        v: VarId,
        body: &Prog,
        fix_env: &TEnv,
    ) -> Option<u64> {
        let mut env = fix_env.clone();
        if v >= env.len() {
            env.resize(v + 1, VarAbs::UNSET);
        }
        // An iteration only starts from a guard-true state.
        match kind {
            LoopKind::Empty => env[v].empty = AbsEmpty::Empty,
            LoopKind::Singleton => env[v].empty = AbsEmpty::NonEmpty,
            LoopKind::Finite => return None,
        }
        self.path.push(0);
        self.exec(body, &mut env, false, false);
        self.path.pop();
        let after = env.get(v).copied().unwrap_or(VarAbs::UNSET);
        let refuted = match kind {
            LoopKind::Empty => after.empty == AbsEmpty::NonEmpty,
            LoopKind::Singleton => after.empty == AbsEmpty::Empty,
            LoopKind::Finite => false,
        };
        refuted.then_some(1)
    }
}

/// B2: the refinement bound. Applies to QLhs `while single(Yv)` loops
/// whose every write to `Yv` is syntactically `Yv := up(Yv)`, with at
/// least one such write on the body's must-execute spine, and whose
/// entry rank is proved. See the module doc for the P3.7/C3.3
/// justification.
fn rank_growth_bound(
    dialect: Dialect,
    kind: LoopKind,
    v: VarId,
    body: &Prog,
    entry_rank: AbsRank,
) -> Option<u64> {
    if dialect != Dialect::Qlhs || kind != LoopKind::Singleton {
        return None;
    }
    fn scan(p: &Prog, v: VarId, spine: bool, all_up: &mut bool, spine_up: &mut bool) {
        match p {
            Prog::Assign(w, t) => {
                if *w == v {
                    let is_self_up = matches!(t, Term::Up(inner) if **inner == Term::Var(v));
                    if is_self_up {
                        if spine {
                            *spine_up = true;
                        }
                    } else {
                        *all_up = false;
                    }
                }
            }
            Prog::Seq(ps) => {
                for q in ps {
                    scan(q, v, spine, all_up, spine_up);
                }
            }
            Prog::WhileEmpty(_, b) | Prog::WhileSingleton(_, b) | Prog::WhileFinite(_, b) => {
                scan(b, v, false, all_up, spine_up);
            }
        }
    }
    let (mut all_up, mut spine_up) = (true, false);
    scan(body, v, true, &mut all_up, &mut spine_up);
    let r = entry_rank.known()?;
    if all_up && spine_up {
        Some(if r >= 1 { 1 } else { 2 })
    } else {
        None
    }
}

/// Total iteration budget: sum over a `Seq`, and a loop bounded by `b`
/// whose body needs `t` contributes `b + b·t` (saturating). `None` if
/// any loop on the walk lacks a proved bound.
fn total_bound(p: &Prog, path: &mut NodePath, bounds: &BTreeMap<NodePath, u64>) -> Option<u64> {
    match p {
        Prog::Assign(..) => Some(0),
        Prog::Seq(ps) => {
            let mut sum: u64 = 0;
            for (i, q) in ps.iter().enumerate() {
                path.push(i as u32);
                let t = total_bound(q, path, bounds);
                path.pop();
                sum = sum.saturating_add(t?);
            }
            Some(sum)
        }
        Prog::WhileEmpty(_, body) | Prog::WhileSingleton(_, body) | Prog::WhileFinite(_, body) => {
            let b = *bounds.get(path)?;
            path.push(0);
            let t = total_bound(body, path, bounds);
            path.pop();
            Some(b.saturating_add(b.saturating_mul(t?)))
        }
    }
}

/// Analyzes the termination behaviour of `p` under `dialect`.
///
/// `safety` is the program's [`crate::analyze_prog`] result — the
/// `Diverges` verdict leans on [`Verdict::Safe`] to rule out runs that
/// error their way past a divergent loop. Bumps the
/// `analyze.terminate.*` counters when a `recdb-obs` recorder is
/// installed.
pub fn analyze_termination(
    p: &Prog,
    schema: &Schema,
    dialect: Dialect,
    safety: &Analysis,
) -> TerminationAnalysis {
    recdb_obs::count("analyze.terminate.programs", 1);
    let nvars = p.max_var().map_or(1, |m| m + 1).max(1);
    let mut a = TermAnalyzer {
        schema,
        dialect,
        loops: Vec::new(),
        diags: Vec::new(),
        path: Vec::new(),
    };
    let mut env: TEnv = vec![VarAbs::UNSET; nvars];
    a.exec(p, &mut env, true, true);
    let bounds: BTreeMap<NodePath, u64> = a
        .loops
        .iter()
        .filter_map(|l| match l.bound {
            LoopBound::Bounded(b) => Some((l.path.clone(), b)),
            _ => None,
        })
        .collect();
    let spine_divergence = safety.verdict == Verdict::Safe
        && a.loops
            .iter()
            .any(|l| l.on_spine && l.bound == LoopBound::Divergent);
    let verdict = if spine_divergence {
        TerminationVerdict::Diverges
    } else if let Some(iterations) = total_bound(p, &mut Vec::new(), &bounds) {
        TerminationVerdict::Terminates { iterations }
    } else {
        TerminationVerdict::Unknown
    };
    recdb_obs::count(
        match verdict {
            TerminationVerdict::Terminates { .. } => "analyze.terminate.verdict.terminates",
            TerminationVerdict::Diverges => "analyze.terminate.verdict.diverges",
            TerminationVerdict::Unknown => "analyze.terminate.verdict.unknown",
        },
        1,
    );
    TerminationAnalysis {
        verdict,
        loops: a.loops,
        diagnostics: a.diags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_prog;
    use recdb_qlhs::parse_program;

    fn s2() -> Schema {
        Schema::new(vec![2])
    }

    fn term_of(src: &str, dialect: Dialect) -> TerminationAnalysis {
        let p = parse_program(src).unwrap();
        let safety = analyze_prog(&p, &s2(), dialect);
        analyze_termination(&p, &s2(), dialect, &safety)
    }

    #[test]
    fn straight_line_terminates_with_zero_iterations() {
        let t = term_of("Y1 := E;", Dialect::Ql);
        assert_eq!(t.verdict, TerminationVerdict::Terminates { iterations: 0 });
        assert!(t.loops.is_empty());
    }

    #[test]
    fn guard_flip_gives_bound_one() {
        let t = term_of("while empty(Y1) { Y1 := E; }", Dialect::Ql);
        assert_eq!(t.verdict, TerminationVerdict::Terminates { iterations: 1 });
        assert_eq!(t.loops.len(), 1);
        assert_eq!(t.loops[0].bound, LoopBound::Bounded(1));
        assert!(t.loops[0].on_spine);
    }

    #[test]
    fn refuted_at_entry_gives_bound_zero() {
        let t = term_of("Y1 := E; while empty(Y1) { Y2 := R1; }", Dialect::Ql);
        assert_eq!(t.verdict, TerminationVerdict::Terminates { iterations: 0 });
        assert_eq!(t.loops[0].bound, LoopBound::Bounded(0));
    }

    #[test]
    fn divergent_loop_is_proved_when_safe() {
        let t = term_of("while empty(Y1) { Y2 := E; }", Dialect::Ql);
        assert_eq!(t.verdict, TerminationVerdict::Diverges);
        assert_eq!(t.loops[0].bound, LoopBound::Divergent);
        assert!(t
            .diagnostics
            .iter()
            .any(|d| d.code == Code::ProvedDivergentLoop));
    }

    #[test]
    fn divergence_claim_needs_the_safety_verdict() {
        // Same shape, but the body has a definite rank error: runs end
        // `Err`, not in an infinite loop — no Diverges claim.
        let t = term_of(
            "Y3 := E & down(E); while empty(Y1) { Y2 := E; }",
            Dialect::Ql,
        );
        assert_eq!(t.verdict, TerminationVerdict::Unknown);
        assert_eq!(t.loops[0].bound, LoopBound::Divergent);
    }

    #[test]
    fn qlhs_refinement_bound_from_rank_one() {
        // Yv starts at rank 2 (E): one up-iteration breaks |Y|=1.
        let t = term_of("Y2 := E; while single(Y2) { Y2 := up(Y2); }", Dialect::Qlhs);
        assert_eq!(t.loops[0].bound, LoopBound::Bounded(1));
        assert_eq!(t.verdict, TerminationVerdict::Terminates { iterations: 1 });
    }

    #[test]
    fn qlhs_refinement_bound_from_rank_zero_is_two() {
        // !down(down(E)) is the rank-0 singleton {()}. up({()}) can be
        // a single class (the infinite clique), so the bound is 2.
        let t = term_of(
            "Y2 := !down(down(E)); while single(Y2) { Y2 := up(Y2); }",
            Dialect::Qlhs,
        );
        assert_eq!(t.loops[0].bound, LoopBound::Bounded(2));
        assert_eq!(t.verdict, TerminationVerdict::Terminates { iterations: 2 });
    }

    #[test]
    fn unassigned_singleton_guard_is_refuted_at_entry() {
        // An unassigned variable is the empty rank-0 value: |Y2| = 1
        // is false the first time the loop is reached.
        let t = term_of("while single(Y2) { Y2 := up(Y2); }", Dialect::Qlhs);
        assert_eq!(t.loops[0].bound, LoopBound::Bounded(0));
    }

    #[test]
    fn foreign_write_disables_the_refinement_bound() {
        // A write that is not `Yv := up(Yv)` can re-shrink the value.
        let t = term_of(
            "Y2 := E; while single(Y2) { Y2 := up(Y2); Y2 := Y2 & Y2; }",
            Dialect::Qlhs,
        );
        assert_eq!(t.loops[0].bound, LoopBound::Unknown);
        assert_eq!(t.verdict, TerminationVerdict::Unknown);
        assert!(t.diagnostics.iter().any(|d| d.code == Code::UnboundedLoop));
    }

    #[test]
    fn up_only_inside_inner_loop_is_not_a_spine_write() {
        // The only self-up write sits in a nested body that may run 0
        // times, so an iteration need not grow the rank.
        let t = term_of(
            "Y2 := E; while single(Y2) { while empty(Y3) { Y2 := up(Y2); Y3 := E; } }",
            Dialect::Qlhs,
        );
        assert_eq!(t.loops[0].bound, LoopBound::Unknown);
    }

    #[test]
    fn while_finite_is_never_bounded() {
        let t = term_of(
            "Y1 := E; while finite(Y1) { Y1 := up(Y1); }",
            Dialect::QlfPlus,
        );
        assert_eq!(t.loops[0].bound, LoopBound::Unknown);
        assert_eq!(t.verdict, TerminationVerdict::Unknown);
    }

    #[test]
    fn nested_bounds_compose_multiplicatively() {
        // Outer bound 1, inner bound 1: total 1 + 1·1 = 2.
        let t = term_of(
            "while empty(Y1) { while empty(Y2) { Y2 := E; } Y1 := E; }",
            Dialect::Ql,
        );
        assert_eq!(t.verdict, TerminationVerdict::Terminates { iterations: 2 });
        assert_eq!(t.loops.len(), 2);
        assert!(t.loops.iter().all(|l| l.bound == LoopBound::Bounded(1)));
        assert_eq!(t.loops[1].path, vec![0, 0, 0]);
        assert!(!t.loops[1].on_spine);
    }

    #[test]
    fn loop_paths_match_the_statement_tree() {
        let t = term_of("Y1 := E; while single(Y1) { Y1 := up(Y1); }", Dialect::Qlhs);
        assert_eq!(t.loops[0].path, vec![1]);
        assert!(t.bound_at(&[1]).is_some());
        assert!(t.bound_at(&[0]).is_none());
    }
}
