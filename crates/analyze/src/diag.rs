//! Structured diagnostics: stable codes, severities, tree paths, and
//! a rustc-style renderer.
//!
//! Every diagnostic the analyzer can produce has a stable code
//! (`E…`/`W…`), so tests, the conformance harness, and the metrics
//! layer can key on *kind* rather than message text. The program
//! analyses attach a [`NodePath`] locating the statement; when the
//! program came from [`recdb_qlhs::parse_program_with_spans`], the
//! renderer resolves the path through the parser's span table to a
//! `line:col` header plus a source-line quote.

use recdb_qlhs::{NodePath, Span, SpanTable};
use std::fmt;

/// Diagnostic severity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// A definite or potential runtime error (rank mismatch, missing
    /// relation, dialect violation, malformed atom).
    Error,
    /// A lint: the construct runs, but is dead, divergent, vacuous, or
    /// simplifiable — or the analysis cannot prove it safe.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

macro_rules! codes {
    ($( $variant:ident = ($code:literal, $sev:ident, $title:literal), )*) => {
        /// A stable diagnostic code. `E0xxx` are QL-program errors,
        /// `W01xx` QL-program lints, `W03xx` genericity findings,
        /// `W04xx` termination findings, and `E02xx`/`W02xx` cover L⁻
        /// formulas.
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub enum Code {
            $(
                #[doc = $title]
                $variant,
            )*
        }

        impl Code {
            /// Every code, in code order (for docs and tests).
            pub const ALL: &'static [Code] = &[$(Code::$variant),*];

            /// The stable code string, e.g. `"E0001"`.
            pub fn as_str(self) -> &'static str {
                match self { $(Code::$variant => $code,)* }
            }

            /// The code's severity.
            pub fn severity(self) -> Severity {
                match self { $(Code::$variant => Severity::$sev,)* }
            }

            /// One-line description of what the code flags.
            pub fn title(self) -> &'static str {
                match self { $(Code::$variant => $title,)* }
            }

            /// The `recdb-obs` counter bumped when the code is
            /// emitted: `analyze.diagnostics.<code>`.
            pub fn metric(self) -> &'static str {
                match self { $(Code::$variant => concat!("analyze.diagnostics.", $code),)* }
            }
        }
    };
}

codes! {
    RankMismatch = ("E0001", Error, "operands of `&` have different ranks"),
    NoSuchRelation = ("E0002", Error, "relation index is outside the schema"),
    IllegalSingletonTest = ("E0003", Error, "`while single(Y)` is not admitted by this dialect"),
    IllegalFinitenessTest = ("E0004", Error, "`while finite(Y)` is not admitted by this dialect"),
    UseBeforeAssign = ("W0101", Warning, "variable is read before any assignment"),
    DeadVariable = ("W0102", Warning, "variable is assigned but never read"),
    UnreachableLoop = ("W0103", Warning, "loop guard is provably false on entry; body never runs"),
    DivergentLoop = ("W0104", Warning, "loop guard is provably true at every iteration; loop never exits"),
    DownOnRankZero = ("W0105", Warning, "`down` on a rank-0 term always yields the empty rank-0 value"),
    SimplifiableTerm = ("W0106", Warning, "term has a rank-provable simplification"),
    UnprovableRank = ("W0107", Warning, "cannot prove the operands of `&` have equal ranks"),
    NonGenericOutput = ("W0301", Warning, "output provably depends on named domain constants"),
    GenericityUnknown = ("W0302", Warning, "genericity of the program could not be decided"),
    UnboundedLoop = ("W0401", Warning, "no iteration bound could be proved for this loop"),
    ProvedDivergentLoop = ("W0402", Warning, "loop is proved to never exit once entered"),
    SemiNaiveIneligible = ("W0501", Warning, "loop body is outside the provable semi-naive fragment; the interpreter falls back to from-scratch evaluation"),
    CostUnbounded = ("W0601", Warning, "no cost bound could be derived for this program point"),
    MalformedAtom = ("E0201", Error, "relation atom does not match the schema"),
    QuantifierInLMinus = ("E0202", Error, "L⁻ bodies must be quantifier-free"),
    FreeVarBeyondRank = ("E0203", Error, "free variable index is outside the declared rank"),
    AdomUnsafe = ("W0201", Warning, "free variable is not bound by any positive relational atom"),
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic: a coded finding at a program location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// What kind of finding this is.
    pub code: Code,
    /// Tree path of the statement the finding is attached to (root
    /// `Seq` is the empty path). See [`NodePath`].
    pub path: NodePath,
    /// The specific message (operand ranks, variable names, …).
    pub message: String,
    /// An optional elaboration rendered as `= note: …`.
    pub note: Option<String>,
}

impl Diagnostic {
    /// Builds a diagnostic with no note.
    pub fn new(code: Code, path: NodePath, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            path,
            message: message.into(),
            note: None,
        }
    }

    /// Attaches a `= note: …` line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }

    /// The diagnostic's severity (a property of its code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Renders the diagnostic rustc-style. With source text and the
    /// parser's span table the header carries `file:line:col` and the
    /// offending source line is quoted with a caret underline;
    /// otherwise the tree path is shown instead.
    pub fn render(&self, source: Option<(&str, &SpanTable)>, file: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity(), self.code, self.message);
        let span = source.and_then(|(src, spans)| spans.enclosing(&self.path).map(|s| (src, s)));
        match span {
            Some((src, Span { start, end })) => {
                let (line, col) = Span { start, end }.line_col(src);
                out.push_str(&format!("  --> {file}:{line}:{col}\n"));
                let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
                let line_end = src[start..].find('\n').map_or(src.len(), |i| start + i);
                let text = &src[line_start..line_end];
                let gutter = line.to_string();
                out.push_str(&format!("{:w$} |\n", "", w = gutter.len()));
                out.push_str(&format!("{gutter} | {text}\n"));
                let caret_len = end.min(line_end).saturating_sub(start).max(1);
                out.push_str(&format!(
                    "{:w$} | {:pad$}{}\n",
                    "",
                    "",
                    "^".repeat(caret_len),
                    w = gutter.len(),
                    pad = start - line_start
                ));
            }
            None if !self.path.is_empty() => {
                out.push_str(&format!("  --> {file} (statement path {:?})\n", self.path));
            }
            None => out.push_str(&format!("  --> {file}\n")),
        }
        if let Some(note) = &self.note {
            out.push_str(&format!("  = note: {note}\n"));
        }
        out
    }

    /// Bumps the `analyze.diagnostics.<code>` counter for this
    /// diagnostic (no-op unless a recorder is installed).
    pub fn record(&self) {
        recdb_obs::count(self.code.metric(), 1);
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity(), self.code, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(c.as_str().len() == 5, "{c}");
            let sev_char = c.as_str().as_bytes()[0];
            match c.severity() {
                Severity::Error => assert_eq!(sev_char, b'E', "{c}"),
                Severity::Warning => assert_eq!(sev_char, b'W', "{c}"),
            }
            assert_eq!(c.metric(), format!("analyze.diagnostics.{c}"));
        }
    }

    #[test]
    fn render_with_spans_quotes_the_line() {
        let src = "Y1 := E;\nY2 := E & down(E);\n";
        let (_, spans) = recdb_qlhs::parse_program_with_spans(src).unwrap();
        let d = Diagnostic::new(Code::RankMismatch, vec![1], "rank 2 vs rank 1")
            .with_note("left operand `E` has rank 2, right operand `down(E)` has rank 1");
        let r = d.render(Some((src, &spans)), "demo.ql");
        assert!(r.contains("error[E0001]: rank 2 vs rank 1"), "{r}");
        assert!(r.contains("demo.ql:2:1"), "{r}");
        assert!(r.contains("Y2 := E & down(E);"), "{r}");
        assert!(r.contains("= note:"), "{r}");
    }

    #[test]
    fn render_without_spans_shows_path() {
        let d = Diagnostic::new(Code::DeadVariable, vec![0, 2], "Y3 is never read");
        let r = d.render(None, "<ast>");
        assert!(r.contains("warning[W0102]"), "{r}");
        assert!(r.contains("[0, 2]"), "{r}");
    }
}
