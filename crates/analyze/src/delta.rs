//! The semi-naive eligibility pass: which loops the delta engine can
//! prove monotone.
//!
//! The proof obligation itself — body flattens to inflationary unions
//! `Y := Y ∪ s` with linear monotone delta sources — lives in
//! [`recdb_qlhs::seminaive::classify_loop`], the exact classifier the
//! three interpreters consult at runtime. This pass replays it
//! statically over every `while` in the program so tooling can report
//! *ahead of execution* which loops will run `O(delta)` and which will
//! fall back to from-scratch evaluation, with a `W0501` diagnostic
//! naming the obstruction for each fallback. Because it calls the same
//! classifier the runtime uses, the static report can never disagree
//! with the engine's actual dispatch (the runtime has additional
//! *dynamic* fallbacks — co-finite values, rank mismatches — that no
//! static pass can rule out; those are not claimed here).

use crate::diag::{Code, Diagnostic};
use recdb_qlhs::seminaive::classify_loop;
use recdb_qlhs::{IneligibleLoop, NodePath, Prog};

/// What the pass concluded about one loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopDelta {
    /// Tree path of the `while` node.
    pub path: NodePath,
    /// `None`: the body is in the provable fragment and the
    /// interpreters will evaluate it semi-naively. `Some(reason)`: the
    /// loop falls back to from-scratch evaluation.
    pub fallback: Option<IneligibleLoop>,
}

/// The pass result: one entry per `while` loop, in preorder.
#[derive(Clone, Debug, Default)]
pub struct DeltaAnalysis {
    /// Per-loop verdicts.
    pub loops: Vec<LoopDelta>,
    /// `W0501` diagnostics for the fallback loops.
    pub diagnostics: Vec<Diagnostic>,
}

impl DeltaAnalysis {
    /// Number of loops the delta engine will take.
    pub fn eligible(&self) -> usize {
        self.loops.iter().filter(|l| l.fallback.is_none()).count()
    }
}

fn walk(p: &Prog, path: &mut NodePath, out: &mut DeltaAnalysis) {
    match p {
        Prog::Assign(..) => {}
        Prog::Seq(ps) => {
            for (i, q) in ps.iter().enumerate() {
                path.push(i as u32);
                walk(q, path, out);
                path.pop();
            }
        }
        Prog::WhileEmpty(_, body) | Prog::WhileSingleton(_, body) | Prog::WhileFinite(_, body) => {
            let fallback = classify_loop(body).err();
            if let Some(reason) = fallback {
                let d = Diagnostic::new(Code::SemiNaiveIneligible, path.clone(), reason.message())
                    .with_note(
                        "the interpreter re-evaluates this body from scratch every iteration; \
                         rewrite assignments as Y := Y ∪ s with s monotone in the loop-written \
                         variables to enable O(delta) evaluation",
                    );
                d.record();
                out.diagnostics.push(d);
            }
            out.loops.push(LoopDelta {
                path: path.clone(),
                fallback,
            });
            path.push(0);
            walk(body, path, out);
            path.pop();
        }
    }
}

/// Runs the semi-naive eligibility pass over every loop in `p`.
pub fn analyze_delta(p: &Prog) -> DeltaAnalysis {
    recdb_obs::count("analyze.delta.programs", 1);
    let mut out = DeltaAnalysis::default();
    let mut path = NodePath::new();
    walk(p, &mut path, &mut out);
    recdb_obs::count("analyze.delta.eligible", out.eligible() as u64);
    recdb_obs::count(
        "analyze.delta.fallbacks",
        (out.loops.len() - out.eligible()) as u64,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_qlhs::Term;

    fn union_assign(v: usize, s: Term) -> Prog {
        Prog::assign(v, Term::Var(v).union(s))
    }

    #[test]
    fn eligible_loop_is_clean() {
        let p = Prog::seq([
            Prog::assign(0, Term::Const(0)),
            Prog::WhileEmpty(
                1,
                Box::new(union_assign(0, Term::Var(0).up().and(Term::Rel(0)).down())),
            ),
        ]);
        let a = analyze_delta(&p);
        assert_eq!(a.loops.len(), 1);
        assert_eq!(a.eligible(), 1);
        assert!(a.diagnostics.is_empty());
        assert_eq!(a.loops[0].path, vec![1]);
    }

    #[test]
    fn fallback_loops_get_w0501_per_obstruction() {
        // Outer loop: nested while (ineligible); inner: replacement
        // assignment (ineligible).
        let inner = Prog::WhileEmpty(1, Box::new(Prog::assign(0, Term::Var(0).up())));
        let p = Prog::WhileEmpty(0, Box::new(inner));
        let a = analyze_delta(&p);
        assert_eq!(a.loops.len(), 2);
        assert_eq!(a.eligible(), 0);
        assert_eq!(a.loops[0].fallback, Some(IneligibleLoop::NestedLoop));
        assert_eq!(a.loops[1].fallback, Some(IneligibleLoop::NotInflationary));
        assert_eq!(a.diagnostics.len(), 2);
        assert!(a
            .diagnostics
            .iter()
            .all(|d| d.code == Code::SemiNaiveIneligible));
        // Paths address the actual while nodes: root, then its body.
        assert_eq!(a.loops[0].path, NodePath::new());
        assert_eq!(a.loops[1].path, vec![0]);
    }

    #[test]
    fn loop_free_program_reports_nothing() {
        let a = analyze_delta(&Prog::assign(0, Term::E));
        assert!(a.loops.is_empty() && a.diagnostics.is_empty());
    }
}
