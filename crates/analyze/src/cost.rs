//! Cost & cardinality abstract interpretation.
//!
//! The fourth analysis pass: symbolic *upper bounds* on how many
//! tuples a program materializes. The abstract domain is the lattice
//! of polynomials in `n = |B|` (the base size: universe for finite
//! structures, representative universe for hereditary sets, `|Df|`
//! for finitely-characterizable-by-finite databases) and the declared
//! relation sizes `r₁, r₂, …` (stored tuples per schema relation),
//! completed with `⊤` ("no bound derivable"). Polynomials with
//! non-negative coefficients are ordered pointwise over non-negative
//! valuations; the join is the monomial-wise coefficient maximum,
//! which dominates both arguments at every such valuation.
//!
//! Bounds are on the *stored representation* of a value — exactly
//! what the counting executor
//! (`recdb-conformance`'s `iter_count`) observes and what `recdb-serve`
//! meters: finite tuple sets for QL/QLhs, the finite part *or* the
//! stored complement for QLf⁺ co-finite values. The transfer
//! functions are dialect-aware (see DESIGN.md §11 for the full
//! table); the QLf⁺ cases track a "surely finite" flag so that `∩`
//! with a co-finite operand and complement flips stay sound.
//!
//! Loops are *unrolled*: the iteration bound proved by
//! [`crate::analyze_termination`] (rules B0/B1/B2, always ≤ 2) tells
//! us how many abstract passes over the body cover every concrete
//! run, and the exit state is the join over "0..=bound iterations
//! executed". A loop with no proved bound — or any statement whose
//! cardinality has no bound (e.g. `~t` at unprovable rank) — is an
//! *obstruction*: the whole-program verdict collapses to ⊤ and a
//! `W0601` diagnostic names the offending statement.
//!
//! Soundness is checked, not assumed: the `COST-SOUND` conformance
//! ledger entry replays ≥500 seeded programs per backend through the
//! counting executor and asserts observed work and cardinalities
//! never exceed these bounds.

use crate::diag::{Code, Diagnostic};
use crate::prog::Analysis;
use crate::rank::AbsRank;
use crate::terminate::{LoopBound, TerminationAnalysis};
use recdb_core::Schema;
use recdb_qlhs::{Dialect, NodePath, Prog, Term};
use std::collections::BTreeMap;

/// Most iterations a single proved loop bound may demand before the
/// analysis gives up (the B-rules prove at most 2; anything larger
/// would signal a new prover rule this pass has not been audited
/// against).
const UNROLL_CAP: u64 = 8;

/// Most abstract statement executions per program — a backstop against
/// pathological nesting, far above anything the generators produce.
const VISIT_CAP: u64 = 4096;

/// Most monomials a polynomial may carry before degrading to ⊤.
const TERM_CAP: usize = 64;

/// Highest total degree a monomial may reach before degrading to ⊤.
const DEGREE_CAP: u32 = 16;

/// A monomial: the exponent of `n` and, per schema relation index,
/// the exponent of `rᵢ`. Zero exponents are never stored.
type Mono = (u32, BTreeMap<usize, u32>);

/// A polynomial in `n` and the relation sizes, with `u64` saturating
/// coefficients. The zero polynomial has no terms.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Poly {
    terms: BTreeMap<Mono, u64>,
}

fn spow(x: u64, e: u32) -> u64 {
    (0..e).fold(1u64, |acc, _| acc.saturating_mul(x))
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// The constant polynomial `c`.
    pub fn constant(c: u64) -> Poly {
        let mut p = Poly::default();
        if c > 0 {
            p.terms.insert((0, BTreeMap::new()), c);
        }
        p
    }

    /// The polynomial `n` (the base size).
    pub fn base() -> Poly {
        let mut p = Poly::default();
        p.terms.insert((1, BTreeMap::new()), 1);
        p
    }

    /// The polynomial `rᵢ` (stored size of schema relation `i`).
    pub fn rel(i: usize) -> Poly {
        let mut p = Poly::default();
        p.terms.insert((0, BTreeMap::from([(i, 1)])), 1);
        p
    }

    /// Is this the zero polynomial?
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Coefficient-saturating sum.
    pub fn add(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &other.terms {
            let e = out.terms.entry(m.clone()).or_insert(0);
            *e = e.saturating_add(*c);
        }
        out
    }

    /// Product (exponents and coefficients saturate).
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut out = Poly::default();
        for ((ba, rsa), ca) in &self.terms {
            for ((bb, rsb), cb) in &other.terms {
                let mut rels = rsa.clone();
                for (i, e) in rsb {
                    let slot = rels.entry(*i).or_insert(0);
                    *slot = slot.saturating_add(*e);
                }
                let mono = (ba.saturating_add(*bb), rels);
                let e = out.terms.entry(mono).or_insert(0);
                *e = e.saturating_add(ca.saturating_mul(*cb));
            }
        }
        out
    }

    /// Least upper bound: monomial-wise coefficient maximum. For any
    /// non-negative valuation of `n`/`rᵢ` the result dominates both
    /// arguments pointwise.
    pub fn join(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &other.terms {
            let e = out.terms.entry(m.clone()).or_insert(0);
            *e = (*e).max(*c);
        }
        out
    }

    /// Evaluates at a concrete instantiation, saturating at `u64::MAX`.
    /// Relation indices beyond `env.rels` count as size 0.
    pub fn eval(&self, env: &CostEnv) -> u64 {
        let mut total = 0u64;
        for ((b, rels), c) in &self.terms {
            let mut v = c.saturating_mul(spow(env.base, *b));
            for (i, e) in rels {
                v = v.saturating_mul(spow(env.rels.get(*i).copied().unwrap_or(0), *e));
            }
            total = total.saturating_add(v);
        }
        total
    }

    /// True when `self ≥ other` at every non-negative valuation,
    /// checked monomial-wise: each coefficient of `other` must be ≤
    /// the matching coefficient of `self`. Sound but not complete
    /// (`n² ≥ n` for `n ≥ 1` is not detected) — a `false` here means
    /// "could not prove", never "proved smaller". Used by the bytecode
    /// verifier to check its instruction-level cost sum against the
    /// admission claim.
    pub fn dominates(&self, other: &Poly) -> bool {
        other
            .terms
            .iter()
            .all(|(m, c)| self.terms.get(m).copied().unwrap_or(0) >= *c)
    }

    /// Largest total degree across monomials.
    pub fn degree(&self) -> u32 {
        self.terms
            .keys()
            .map(|(b, rels)| rels.values().fold(*b, |acc, e| acc.saturating_add(*e)))
            .max()
            .unwrap_or(0)
    }

    fn too_complex(&self) -> bool {
        self.terms.len() > TERM_CAP || self.degree() > DEGREE_CAP
    }
}

impl std::fmt::Display for Poly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("0");
        }
        // Highest monomial first: `n^2 + 3·n·r1 + 1`.
        for (i, ((b, rels), c)) in self.terms.iter().rev().enumerate() {
            if i > 0 {
                f.write_str(" + ")?;
            }
            let mut factors: Vec<String> = Vec::new();
            if *c != 1 || (*b == 0 && rels.is_empty()) {
                factors.push(c.to_string());
            }
            if *b == 1 {
                factors.push("n".into());
            } else if *b > 1 {
                factors.push(format!("n^{b}"));
            }
            for (ri, e) in rels {
                if *e == 1 {
                    factors.push(format!("r{}", ri + 1));
                } else {
                    factors.push(format!("r{}^{e}", ri + 1));
                }
            }
            f.write_str(&factors.join("·"))?;
        }
        Ok(())
    }
}

/// A cost bound: a polynomial, or ⊤ when none is derivable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Bound {
    /// The stored size is at most this polynomial, at every sound
    /// instantiation of `n`/`rᵢ`.
    Poly(Poly),
    /// No bound derivable.
    Top,
}

impl Bound {
    /// The zero bound.
    pub fn zero() -> Bound {
        Bound::Poly(Poly::zero())
    }

    fn capped(p: Poly) -> Bound {
        if p.too_complex() {
            Bound::Top
        } else {
            Bound::Poly(p)
        }
    }

    /// Wraps a polynomial, degrading to ⊤ past the same complexity
    /// caps the internal transfer functions apply — external mirrors
    /// of the cost pass (the bytecode verifier) must build bounds
    /// through this to stay bit-equal with [`analyze_cost`].
    pub fn of(p: Poly) -> Bound {
        Bound::capped(p)
    }

    /// Saturating sum; ⊤ is absorbing.
    pub fn add(&self, other: &Bound) -> Bound {
        match (self, other) {
            (Bound::Poly(a), Bound::Poly(b)) => Bound::capped(a.add(b)),
            _ => Bound::Top,
        }
    }

    /// Product; ⊤ is absorbing.
    pub fn mul(&self, other: &Bound) -> Bound {
        match (self, other) {
            (Bound::Poly(a), Bound::Poly(b)) => Bound::capped(a.mul(b)),
            _ => Bound::Top,
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &Bound) -> Bound {
        match (self, other) {
            (Bound::Poly(a), Bound::Poly(b)) => Bound::capped(a.join(b)),
            _ => Bound::Top,
        }
    }

    /// Evaluates at a concrete instantiation (`None` for ⊤).
    pub fn eval(&self, env: &CostEnv) -> Option<u64> {
        match self {
            Bound::Poly(p) => Some(p.eval(env)),
            Bound::Top => None,
        }
    }

    /// The polynomial, if bounded.
    pub fn poly(&self) -> Option<&Poly> {
        match self {
            Bound::Poly(p) => Some(p),
            Bound::Top => None,
        }
    }
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Poly(p) => p.fmt(f),
            Bound::Top => f.write_str("⊤"),
        }
    }
}

/// A concrete instantiation of the bound variables: the base size `n`
/// and per-relation stored sizes. Sound when `n` dominates the
/// backend's base (|universe| for Fin, representative universe size
/// for the discrete Hs wrapping, |Df| for Fcf) and `rels[i]` the
/// stored size of relation `i`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CostEnv {
    /// The base size `n`.
    pub base: u64,
    /// Stored tuples per schema relation.
    pub rels: Vec<u64>,
}

impl CostEnv {
    /// An instantiation from explicit sizes.
    pub fn new(base: u64, rels: Vec<u64>) -> CostEnv {
        CostEnv { base, rels }
    }

    /// The fixed nominal instantiation (`n = 8`, every relation 8) the
    /// RA rewriter uses to compare candidate plans deterministically.
    pub fn nominal(schema: &Schema) -> CostEnv {
        CostEnv {
            base: 8,
            rels: vec![8; schema.len()],
        }
    }
}

/// Abstract value: proven rank, stored-size bound, and (for QLf⁺)
/// whether the value is surely finite (stored = the tuples
/// themselves, not a complement).
#[derive(Clone, PartialEq, Eq, Debug)]
struct Abs {
    rank: AbsRank,
    bound: Bound,
    finite: bool,
}

impl Abs {
    /// An unassigned variable: the empty rank-0 value.
    fn unset() -> Abs {
        Abs {
            rank: AbsRank::Known(0),
            bound: Bound::zero(),
            finite: true,
        }
    }

    fn join(&self, other: &Abs) -> Abs {
        Abs {
            rank: self.rank.join(other.rank),
            bound: self.bound.join(&other.bound),
            finite: self.finite && other.finite,
        }
    }
}

/// The dialect-aware transfer function: an upper bound on the stored
/// size of `t` under `env`. See DESIGN.md §11 for the case table and
/// its per-backend soundness argument.
fn term_cost(t: &Term, schema: &Schema, dialect: Dialect, env: &[Abs]) -> Abs {
    let fcf = dialect == Dialect::QlfPlus;
    match t {
        // E: the diagonal — n tuples on every backend.
        Term::E => Abs {
            rank: AbsRank::Known(2),
            bound: Bound::Poly(Poly::base()),
            finite: true,
        },
        // A constant is the rank-1 singleton `{(a)}`.
        Term::Const(_) => Abs {
            rank: AbsRank::Known(1),
            bound: Bound::Poly(Poly::constant(1)),
            finite: true,
        },
        Term::Rel(i) => {
            if *i < schema.len() {
                Abs {
                    rank: AbsRank::Known(schema.arity(*i)),
                    bound: Bound::Poly(Poly::rel(*i)),
                    // A QLf⁺ schema relation may be declared co-finite;
                    // its *stored* size is still rᵢ, but ∩ must not
                    // treat it as a finite operand.
                    finite: !fcf,
                }
            } else {
                Abs {
                    rank: AbsRank::Top,
                    bound: Bound::Top,
                    finite: false,
                }
            }
        }
        Term::Var(v) => env.get(*v).cloned().unwrap_or_else(Abs::unset),
        Term::And(a, b) => {
            let (xa, xb) = (
                term_cost(a, schema, dialect, env),
                term_cost(b, schema, dialect, env),
            );
            let rank = match (xa.rank, xb.rank) {
                (AbsRank::Known(x), AbsRank::Known(y)) if x == y => AbsRank::Known(x),
                (AbsRank::Bot, x) | (x, AbsRank::Bot) => x,
                _ => AbsRank::Top,
            };
            let bound = if fcf {
                // finite ∩ anything ⊆ the finite side's tuples;
                // co-finite ∩ co-finite stores the union of the two
                // complements.
                if xa.finite {
                    xa.bound.clone()
                } else if xb.finite {
                    xb.bound.clone()
                } else {
                    xa.bound.add(&xb.bound)
                }
            } else {
                // Set intersection: both operands' bounds are sound;
                // keep the nominally smaller one.
                smaller(&xa.bound, &xb.bound, schema)
            };
            Abs {
                rank,
                bound,
                finite: xa.finite || xb.finite,
            }
        }
        Term::Not(e) => {
            let x = term_cost(e, schema, dialect, env);
            if fcf {
                // QLf⁺ complement flips the finiteness flag and keeps
                // the stored tuples verbatim.
                Abs {
                    rank: x.rank,
                    bound: x.bound,
                    finite: false,
                }
            } else {
                // Complement within rank k: at most n^k stored tuples
                // — derivable only when the rank is proved.
                let bound = match x.rank {
                    AbsRank::Known(k) => {
                        let mut p = Poly::constant(1);
                        for _ in 0..k {
                            p = p.mul(&Poly::base());
                        }
                        Bound::capped(p)
                    }
                    _ => Bound::Top,
                };
                Abs {
                    rank: x.rank,
                    bound,
                    finite: true,
                }
            }
        }
        Term::Up(e) => {
            let x = term_cost(e, schema, dialect, env);
            Abs {
                rank: x.rank.map(|k| k + 1),
                bound: x.bound.mul(&Bound::Poly(Poly::base())),
                // QLf⁺ ↑ errors on infinite input; any produced value
                // extends finitely many tuples by Df.
                finite: true,
            }
        }
        Term::Down(e) => {
            let x = term_cost(e, schema, dialect, env);
            let rank = x.rank.map(|k| k.saturating_sub(1));
            // A rank-0 value stores at most one tuple on every backend
            // (`{()}`, `{}`, or a co-finite representation whose
            // complement is a subset of `{()}`); otherwise projection
            // cannot grow a finite store, and the QLf⁺ ↓ of a
            // co-finite value of rank ≥ 2 is the full co-finite value
            // with an empty stored complement.
            let bound = if rank == AbsRank::Known(0) {
                Bound::Poly(Poly::constant(1))
            } else {
                x.bound
            };
            Abs {
                rank,
                bound,
                finite: x.finite,
            }
        }
        Term::Swap(e) => {
            let x = term_cost(e, schema, dialect, env);
            Abs {
                rank: x.rank,
                bound: x.bound,
                finite: x.finite,
            }
        }
    }
}

/// Of two individually-sound bounds, keep the one that is nominally
/// smaller (deterministic tie-break toward the left).
fn smaller(a: &Bound, b: &Bound, schema: &Schema) -> Bound {
    match (a, b) {
        (Bound::Top, x) | (x, Bound::Top) => x.clone(),
        (Bound::Poly(pa), Bound::Poly(pb)) => {
            let nominal = CostEnv::nominal(schema);
            if pb.eval(&nominal) < pa.eval(&nominal) {
                b.clone()
            } else {
                a.clone()
            }
        }
    }
}

/// Per-assignment cost facts, keyed by the statement's tree path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StmtCost {
    /// Tree path of the `Assign` (same convention as
    /// [`Diagnostic::path`]).
    pub path: NodePath,
    /// Abstract executions covered (the product of enclosing proved
    /// loop bounds, as unrolled).
    pub executions: u64,
    /// Bound on the stored size of any single value this statement
    /// assigns.
    pub cardinality: Bound,
    /// Bound on the total tuples this statement materializes across
    /// all its executions.
    pub work: Bound,
}

/// The whole-program verdict.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CostVerdict {
    /// Every completed (or partial) run materializes at most `work`
    /// tuples in total, and the final `Y1` stores at most
    /// `cardinality` tuples.
    Bounded {
        /// Bound on the stored size of the program's result.
        cardinality: Poly,
        /// Bound on total tuples materialized by all assignments.
        work: Poly,
    },
    /// An obstruction (unbounded loop, unprovable rank under `~`, or
    /// a blown complexity cap) prevented any bound; see the `W0601`
    /// diagnostics.
    Unbounded,
}

impl std::fmt::Display for CostVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostVerdict::Bounded { cardinality, work } => {
                write!(f, "bounded (|Y1| ≤ {cardinality}, work ≤ {work})")
            }
            CostVerdict::Unbounded => f.write_str("unbounded (⊤)"),
        }
    }
}

/// The result of [`analyze_cost`].
#[derive(Clone, Debug)]
pub struct CostAnalysis {
    /// The whole-program verdict.
    pub verdict: CostVerdict,
    /// Per-assignment bounds, in path order. On an `Unbounded`
    /// verdict this covers the statements reached before the
    /// obstruction.
    pub stmts: Vec<StmtCost>,
    /// `W0601` findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl CostAnalysis {
    /// Did the analysis derive whole-program bounds?
    pub fn is_bounded(&self) -> bool {
        matches!(self.verdict, CostVerdict::Bounded { .. })
    }

    /// The whole-program work bound, if bounded.
    pub fn work(&self) -> Option<&Poly> {
        match &self.verdict {
            CostVerdict::Bounded { work, .. } => Some(work),
            CostVerdict::Unbounded => None,
        }
    }

    /// The result-cardinality bound, if bounded.
    pub fn cardinality(&self) -> Option<&Poly> {
        match &self.verdict {
            CostVerdict::Bounded { cardinality, .. } => Some(cardinality),
            CostVerdict::Unbounded => None,
        }
    }
}

#[derive(Default)]
struct StmtAcc {
    executions: u64,
    cardinality: Option<Bound>,
    work: Option<Bound>,
}

struct Obstruction;

struct Walker<'a> {
    schema: &'a Schema,
    dialect: Dialect,
    termination: &'a TerminationAnalysis,
    stmts: BTreeMap<NodePath, StmtAcc>,
    work: Bound,
    diagnostics: Vec<Diagnostic>,
    visits: u64,
}

impl Walker<'_> {
    fn obstruct(&mut self, path: &[u32], msg: String, note: &str) {
        let d = Diagnostic::new(Code::CostUnbounded, path.to_vec(), msg).with_note(note);
        d.record();
        self.diagnostics.push(d);
    }

    fn walk(
        &mut self,
        p: &Prog,
        path: &mut NodePath,
        env: &mut Vec<Abs>,
    ) -> Result<(), Obstruction> {
        match p {
            Prog::Assign(v, t) => {
                self.visits += 1;
                if self.visits > VISIT_CAP {
                    self.obstruct(
                        path,
                        format!("abstract unrolling exceeds {VISIT_CAP} statement executions"),
                        "deeply nested proved loops multiply out past the analysis budget",
                    );
                    return Err(Obstruction);
                }
                let a = term_cost(t, self.schema, self.dialect, env);
                if a.bound == Bound::Top {
                    self.obstruct(
                        path,
                        format!("no cardinality bound for the value assigned to Y{}", v + 1),
                        "complement at unprovable rank, an out-of-schema relation, or a \
                         blown complexity cap leaves the stored size unbounded",
                    );
                    return Err(Obstruction);
                }
                let acc = self.stmts.entry(path.clone()).or_default();
                acc.executions += 1;
                acc.cardinality = Some(match acc.cardinality.take() {
                    Some(c) => c.join(&a.bound),
                    None => a.bound.clone(),
                });
                acc.work = Some(match acc.work.take() {
                    Some(w) => w.add(&a.bound),
                    None => a.bound.clone(),
                });
                self.work = self.work.add(&a.bound);
                if env.len() <= *v {
                    env.resize(*v + 1, Abs::unset());
                }
                env[*v] = a;
                Ok(())
            }
            Prog::Seq(ps) => {
                for (i, q) in ps.iter().enumerate() {
                    path.push(i as u32);
                    let r = self.walk(q, path, env);
                    path.pop();
                    r?;
                }
                Ok(())
            }
            Prog::WhileEmpty(_, body)
            | Prog::WhileSingleton(_, body)
            | Prog::WhileFinite(_, body) => {
                let bound = self
                    .termination
                    .bound_at(path)
                    .map(|l| l.bound)
                    .unwrap_or(LoopBound::Unknown);
                let b = match bound {
                    LoopBound::Bounded(b) if b <= UNROLL_CAP => b,
                    LoopBound::Bounded(b) => {
                        self.obstruct(
                            path,
                            format!(
                                "proved iteration bound {b} exceeds the unroll budget {UNROLL_CAP}"
                            ),
                            "the cost pass unrolls loops; bounds past the budget degrade to ⊤",
                        );
                        return Err(Obstruction);
                    }
                    LoopBound::Divergent => {
                        self.obstruct(
                            path,
                            "loop provably never exits once entered".into(),
                            "a divergent loop admits runs of unbounded work (see W0402)",
                        );
                        return Err(Obstruction);
                    }
                    LoopBound::Unknown => {
                        self.obstruct(
                            path,
                            "no iteration bound proved for this loop".into(),
                            "the termination prover reported no bound (see W0401); \
                             cost bounds need one",
                        );
                        return Err(Obstruction);
                    }
                };
                // Unroll: pass j over-approximates concrete iteration
                // j; the exit state joins "exited after 0..=b
                // iterations".
                let mut exit = env.clone();
                for _ in 0..b {
                    path.push(0);
                    let r = self.walk(body, path, env);
                    path.pop();
                    r?;
                    for (i, a) in env.iter().enumerate() {
                        if i < exit.len() {
                            exit[i] = exit[i].join(a);
                        } else {
                            exit.push(Abs::unset().join(a));
                        }
                    }
                }
                *env = exit;
                Ok(())
            }
        }
    }
}

/// Runs the cost pass. `termination` must come from
/// [`crate::analyze_termination`] on the same program — the proved
/// loop bounds drive the unrolling. The `safety` analysis is accepted
/// for interface symmetry (an `Unsafe` program usually obstructs on
/// its own); only its presence is required, not its verdict.
pub fn analyze_cost(
    p: &Prog,
    schema: &Schema,
    dialect: Dialect,
    _safety: &Analysis,
    termination: &TerminationAnalysis,
) -> CostAnalysis {
    recdb_obs::count("analyze.cost.programs", 1);
    let mut w = Walker {
        schema,
        dialect,
        termination,
        stmts: BTreeMap::new(),
        work: Bound::zero(),
        diagnostics: Vec::new(),
        visits: 0,
    };
    let mut env: Vec<Abs> = Vec::new();
    let walked = w.walk(p, &mut Vec::new(), &mut env);
    let verdict = match walked {
        Ok(()) => {
            let y1 = env.first().cloned().unwrap_or_else(Abs::unset);
            match (y1.bound.poly(), w.work.poly()) {
                (Some(card), Some(work)) => CostVerdict::Bounded {
                    cardinality: card.clone(),
                    work: work.clone(),
                },
                _ => CostVerdict::Unbounded,
            }
        }
        Err(Obstruction) => CostVerdict::Unbounded,
    };
    match &verdict {
        CostVerdict::Bounded { .. } => recdb_obs::count("analyze.cost.bounded", 1),
        CostVerdict::Unbounded => recdb_obs::count("analyze.cost.unbounded", 1),
    }
    let stmts: Vec<StmtCost> = w
        .stmts
        .into_iter()
        .map(|(path, acc)| StmtCost {
            path,
            executions: acc.executions,
            cardinality: acc.cardinality.unwrap_or_else(Bound::zero),
            work: acc.work.unwrap_or_else(Bound::zero),
        })
        .collect();
    recdb_obs::observe("analyze.cost.stmts", stmts.len() as u64);
    CostAnalysis {
        verdict,
        stmts,
        diagnostics: w.diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_prog, analyze_termination};
    use recdb_qlhs::{Dialect, Prog, Term};

    fn run(p: &Prog, schema: &Schema, dialect: Dialect) -> CostAnalysis {
        let safety = analyze_prog(p, schema, dialect);
        let termination = analyze_termination(p, schema, dialect, &safety);
        analyze_cost(p, schema, dialect, &safety, &termination)
    }

    #[test]
    fn dominates_is_coefficient_wise() {
        let n = Poly::base();
        let n2 = n.mul(&n);
        let sum = n2.add(&n);
        assert!(sum.dominates(&n));
        assert!(sum.dominates(&n2));
        assert!(sum.dominates(&Poly::zero()));
        assert!(!n.dominates(&n2), "cross-monomial dominance is not proved");
        assert!(!n2.dominates(&n), "sound: n² vs n stays unproved");
        assert!(n.add(&n).dominates(&n), "2n ≥ n");
        assert!(!Poly::rel(0).dominates(&Poly::rel(1)));
    }

    #[test]
    fn straight_line_join_bound() {
        // Y1 := E & R1 — stored size ≤ min-side, and the nominal pick
        // keeps r1 (both are degree 1; tie-break favors E's n… n=8,
        // r1=8 tie → left = n).
        let p = Prog::Assign(0, Term::E.and(Term::Rel(0)));
        let schema = Schema::new(vec![2]);
        let a = run(&p, &schema, Dialect::Ql);
        let CostVerdict::Bounded { cardinality, work } = &a.verdict else {
            panic!("expected bounded: {:?}", a.verdict);
        };
        assert_eq!(cardinality.to_string(), "n");
        assert_eq!(work.to_string(), "n");
        assert_eq!(a.stmts.len(), 1);
        assert_eq!(a.stmts[0].executions, 1);
    }

    #[test]
    fn up_multiplies_by_base() {
        // Y1 := up(up(R1)) — ≤ r1·n².
        let p = Prog::Assign(0, Term::Rel(0).up().up());
        let schema = Schema::new(vec![2]);
        let a = run(&p, &schema, Dialect::Ql);
        assert_eq!(a.cardinality().unwrap().to_string(), "n^2·r1");
    }

    #[test]
    fn not_needs_proved_rank() {
        // Y2 := ~E is fine (rank 2 proved → n²); complement under a
        // rank-⊤ operand obstructs with W0601.
        let schema = Schema::new(vec![2]);
        let fine = Prog::Assign(0, Term::E.not());
        let a = run(&fine, &schema, Dialect::Ql);
        assert_eq!(a.cardinality().unwrap().to_string(), "n^2");
        assert!(a.diagnostics.is_empty());

        let bad = Prog::Assign(0, Term::Rel(7).not());
        let a = run(&bad, &schema, Dialect::Ql);
        assert!(!a.is_bounded());
        assert_eq!(a.diagnostics.len(), 1);
        assert_eq!(a.diagnostics[0].code, Code::CostUnbounded);
    }

    #[test]
    fn bounded_loop_unrolls() {
        // while empty(Y1) { Y1 := E; } — B1 proves bound 1, so the
        // body contributes one execution of work n.
        let p = Prog::Seq(vec![Prog::WhileEmpty(
            0,
            Box::new(Prog::Assign(0, Term::E)),
        )]);
        let schema = Schema::new(vec![]);
        let a = run(&p, &schema, Dialect::Ql);
        let CostVerdict::Bounded { cardinality, work } = &a.verdict else {
            panic!("expected bounded: {:?}", a.verdict);
        };
        // Exit state joins "0 iterations" (Y1 unset, 0) with "1
        // iteration" (Y1 = E, n).
        assert_eq!(cardinality.to_string(), "n");
        assert_eq!(work.to_string(), "n");
        let row = &a.stmts[0];
        assert_eq!(row.path, vec![0, 0]);
        assert_eq!(row.executions, 1);
    }

    #[test]
    fn unbounded_loop_obstructs() {
        // while empty(Y2) { Y1 := E; } — guard never flipped, W0401 →
        // the cost pass reports W0601 at the loop.
        let p = Prog::Seq(vec![Prog::WhileEmpty(
            1,
            Box::new(Prog::Assign(0, Term::E)),
        )]);
        let schema = Schema::new(vec![]);
        let a = run(&p, &schema, Dialect::Ql);
        assert!(!a.is_bounded());
        assert_eq!(a.diagnostics[0].code, Code::CostUnbounded);
        assert_eq!(a.diagnostics[0].path, vec![0]);
    }

    #[test]
    fn fcf_intersection_prefers_finite_side() {
        // QLf⁺: R1 finite, ~R1 co-finite; (~R1 ∩ R2) must not claim
        // the finite-side bound unless a side is surely finite.
        let schema = Schema::new(vec![1, 2]);
        let p = Prog::Assign(0, Term::Rel(0).and(Term::Rel(1).not()));
        let a = run(&p, &schema, Dialect::QlfPlus);
        // Rel(0) is not *surely* finite in QLf⁺ (declaration unknown),
        // so the bound is the sum r1 + r2.
        assert_eq!(a.cardinality().unwrap().to_string(), "r2 + r1");
    }

    #[test]
    fn eval_saturates() {
        let p = Poly::base().mul(&Poly::base()).mul(&Poly::constant(7));
        let env = CostEnv::new(u64::MAX / 2, vec![]);
        assert_eq!(p.eval(&env), u64::MAX);
    }
}
