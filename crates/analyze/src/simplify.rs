//! Flow-sensitive, rank-aware program simplification.
//!
//! [`recdb_qlhs::simplify_term_with`] fires the swap rewrites exactly
//! when a [`RankOracle`](recdb_qlhs::RankOracle) proves a rank. This
//! module supplies the strongest oracle the analyzer can justify: for
//! each statement, the abstract ranks of all variables *at that
//! program point* (schema-aware, flow-sensitive). Loop bodies are
//! simplified against the loop-head fixpoint environment, where
//! `Known(k)` over-approximates every iteration — so a rewrite fired
//! inside a loop is valid on the first iteration and the thousandth.
//!
//! The rewrites themselves preserve semantics and errors (see
//! `recdb_qlhs::optimize`), so simplification can never change the
//! analyzer's verdict; `verdict_is_invariant_under_simplification`
//! pins that, and the conformance harness re-checks it on seeded
//! random programs.

use crate::rank::{term_rank, AbsRank};
use recdb_core::Schema;
use recdb_qlhs::{Prog, Term};

type RankEnv = Vec<AbsRank>;

fn join_env(a: &RankEnv, b: &RankEnv) -> RankEnv {
    a.iter().zip(b).map(|(x, y)| x.join(*y)).collect()
}

/// Rank-only transfer over a program (no diagnostics): leaves `env`
/// at the program's exit state.
fn rank_exec(p: &Prog, schema: &Schema, env: &mut RankEnv) {
    match p {
        Prog::Assign(v, t) => {
            let r = term_rank(t, schema, env);
            if *v >= env.len() {
                env.resize(*v + 1, AbsRank::Known(0));
            }
            env[*v] = r;
        }
        Prog::Seq(ps) => ps.iter().for_each(|q| rank_exec(q, schema, env)),
        Prog::WhileEmpty(_, body) | Prog::WhileSingleton(_, body) | Prog::WhileFinite(_, body) => {
            rank_fix(body, schema, env)
        }
    }
}

/// Drives `env` to the loop-head fixpoint of `body`.
fn rank_fix(body: &Prog, schema: &Schema, env: &mut RankEnv) {
    loop {
        let mut out = env.clone();
        rank_exec(body, schema, &mut out);
        let joined = join_env(env, &out);
        if joined == *env {
            return;
        }
        *env = joined;
    }
}

fn simplify_at(t: &Term, schema: &Schema, env: &RankEnv) -> Term {
    let ranks = env.clone();
    let oracle = move |u: &Term| term_rank(u, schema, &ranks).known();
    recdb_qlhs::simplify_term_with(t, &oracle)
}

fn walk(p: &Prog, schema: &Schema, env: &mut RankEnv) -> Prog {
    match p {
        Prog::Assign(v, t) => {
            let s = simplify_at(t, schema, env);
            // The rewrites are rank-preserving, so tracking the
            // simplified term keeps the environment faithful to the
            // original program.
            let r = term_rank(&s, schema, env);
            if *v >= env.len() {
                env.resize(*v + 1, AbsRank::Known(0));
            }
            env[*v] = r;
            Prog::Assign(*v, s)
        }
        Prog::Seq(ps) => {
            let mut flat = Vec::new();
            for q in ps {
                match walk(q, schema, env) {
                    Prog::Seq(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            Prog::Seq(flat)
        }
        Prog::WhileEmpty(v, body) | Prog::WhileSingleton(v, body) | Prog::WhileFinite(v, body) => {
            rank_fix(body, schema, env);
            let mut body_env = env.clone();
            let new_body = walk(body, schema, &mut body_env);
            let rebuild = match p {
                Prog::WhileEmpty(..) => Prog::WhileEmpty,
                Prog::WhileSingleton(..) => Prog::WhileSingleton,
                _ => Prog::WhileFinite,
            };
            rebuild(*v, Box::new(new_body))
        }
    }
}

/// Simplifies every term of `p` with the strongest rank oracle the
/// schema and flow analysis justify, and flattens nested sequences.
/// Semantics- and verdict-preserving.
pub fn simplify_prog_checked(p: &Prog, schema: &Schema) -> Prog {
    let nvars = p.max_var().map_or(1, |m| m + 1).max(1);
    let mut env: RankEnv = vec![AbsRank::Known(0); nvars];
    walk(p, schema, &mut env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prog::analyze_prog;
    use recdb_qlhs::{parse_program, Dialect};

    fn s2() -> Schema {
        Schema::new(vec![2])
    }

    #[test]
    fn schema_rank_unlocks_double_swap() {
        let p = parse_program("Y1 := swap(swap(R1));").unwrap();
        let s = simplify_prog_checked(&p, &s2());
        assert_eq!(s, Prog::Seq(vec![Prog::Assign(0, Term::Rel(0))]));
        // The plain simplifier cannot prove R1's rank and must not fire.
        let unproven = recdb_qlhs::simplify_prog(&p);
        assert_eq!(unproven, Prog::Seq(vec![p_inner(&p)]));
    }

    fn p_inner(p: &Prog) -> Prog {
        match p {
            Prog::Seq(ps) => ps[0].clone(),
            other => other.clone(),
        }
    }

    #[test]
    fn flow_sensitivity_uses_variable_ranks() {
        // Y2 is rank 1 (E↓) at the point of the swap: swap(Y2) = Y2.
        let p = parse_program("Y2 := down(E); Y1 := swap(Y2);").unwrap();
        let s = simplify_prog_checked(&p, &s2());
        assert_eq!(
            s,
            Prog::Seq(vec![
                Prog::Assign(1, Term::E.down()),
                Prog::Assign(0, Term::Var(1)),
            ])
        );
    }

    #[test]
    fn loop_body_uses_fixpoint_ranks_not_entry_ranks() {
        // On entry Y2 has rank 0, but the body raises it each
        // iteration — the fixpoint rank is ⊤, so the lone swap in the
        // body must NOT be erased.
        let p =
            parse_program("while empty(Y1) { Y2 := up(Y2); Y3 := swap(Y2); Y1 := E; }").unwrap();
        let s = simplify_prog_checked(&p, &s2());
        let body_src = format!("{s}");
        assert!(body_src.contains("swap(Y2)"), "{body_src}");
    }

    #[test]
    fn loop_body_rewrites_fire_when_rank_is_iteration_invariant() {
        // Y2 := R1 keeps rank 2 in every iteration, so the double
        // swap inside the loop is provable.
        let p = parse_program("while empty(Y1) { Y2 := swap(swap(R1)); Y1 := Y2; }").unwrap();
        let s = simplify_prog_checked(&p, &s2());
        let src = format!("{s}");
        assert!(!src.contains("swap"), "{src}");
    }

    #[test]
    fn verdict_is_invariant_under_simplification() {
        let corpus = [
            "Y1 := E & down(E);",
            "Y1 := swap(swap(R1));",
            "Y2 := up(R1); Y1 := swap(Y2) & Y2;",
            "Y1 := R2;",
            "while empty(Y1) { Y2 := up(Y2); Y1 := E; } Y1 := Y2 & E;",
            "Y1 := E; while single(Y1) { Y2 := !!E & (E & E); }",
            "while finite(Y1) { Y1 := up(Y1); }",
            "Y1 := down(down(down(E)));",
            "Y1 := !(!R1 & !swap(R1));",
            // Self-intersections at ⊤ rank: collapsing `Y & Y` (or
            // `!!Y & Y`) must not flip an Unknown verdict to Safe —
            // the analyzer proves the operands agree either way.
            "while empty(Y1) { Y2 := R1; Y1 := (Y1 & Y1); Y1 := Y2; Y1 := E; }",
            "while empty(Y1) { Y2 := up(Y2); Y1 := !!Y2 & Y2; Y1 := E; }",
        ];
        for src in corpus {
            let p = parse_program(src).unwrap();
            let s = simplify_prog_checked(&p, &s2());
            for d in Dialect::ALL {
                let before = analyze_prog(&p, &s2(), d).verdict;
                let after = analyze_prog(&s, &s2(), d).verdict;
                assert_eq!(before, after, "verdict changed for `{src}` under {d}");
            }
        }
    }

    #[test]
    fn idempotent() {
        let p =
            parse_program("Y1 := swap(swap(R1)) & !!R1; while empty(Y2) { Y2 := E & E; }").unwrap();
        let s1 = simplify_prog_checked(&p, &s2());
        let s2_ = simplify_prog_checked(&s1, &s2());
        assert_eq!(s1, s2_);
    }
}
