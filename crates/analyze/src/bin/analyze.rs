//! `analyze` — the static-analysis CLI.
//!
//! ```text
//! analyze [OPTIONS] FILE          check a QL-family program
//! analyze --formula [OPTIONS] FILE   check an L⁻/FO query expression
//!
//! OPTIONS
//!   --dialect ql|qlhs|qlf+   dialect to check against (default: the
//!                            smallest dialect admitting the program's
//!                            tests)
//!   --schema A1,A2,...       relation arities (default: 2)
//!   --generic                also run the genericity and termination
//!                            passes and print their verdicts
//!   --cost                   also print the cost pass's cardinality
//!                            and work bounds (per statement and
//!                            whole-program)
//!   --format text|json       output format (default: text). JSON is
//!                            machine-readable ANALYZE-CLI/v1 with
//!                            diagnostics in stable (path, code) order
//!   --lminus                 (formula mode) require quantifier-free
//!   --metrics-out PATH       write a METRICS/v1 JSON snapshot
//!   -                        read from stdin
//! ```
//!
//! Exit status: 0 if no error-severity diagnostics, 1 otherwise, 2 on
//! usage/parse failures.

use recdb_analyze::{
    analyze_formula, analyze_full, CostVerdict, Diagnostic, GenericityVerdict, LoopBound, Severity,
    TerminationVerdict, Verdict,
};
use recdb_core::Schema;
use recdb_obs::InMemoryRecorder;
use recdb_qlhs::{classify, parse_program_with_spans, Dialect};
use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Opts {
    file: String,
    dialect: Option<Dialect>,
    schema: Schema,
    formula: bool,
    lminus: bool,
    generic: bool,
    cost: bool,
    format: Format,
    metrics_out: Option<String>,
}

fn usage() -> String {
    "usage: analyze [--formula] [--lminus] [--generic] [--cost] [--dialect ql|qlhs|qlf+] \
     [--schema A1,A2,...] [--format text|json] [--metrics-out PATH] FILE|-"
        .to_string()
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        file: String::new(),
        dialect: None,
        schema: Schema::new(vec![2]),
        formula: false,
        lminus: false,
        generic: false,
        cost: false,
        format: Format::Text,
        metrics_out: None,
    };
    let mut file = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--formula" => opts.formula = true,
            "--lminus" => opts.lminus = true,
            "--generic" => opts.generic = true,
            "--cost" => opts.cost = true,
            "--format" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--format needs a value".to_string())?;
                opts.format = match v.to_ascii_lowercase().as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--dialect" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--dialect needs a value".to_string())?;
                opts.dialect = Some(match v.to_ascii_lowercase().as_str() {
                    "ql" => Dialect::Ql,
                    "qlhs" => Dialect::Qlhs,
                    "qlf+" | "qlf" | "qlfplus" => Dialect::QlfPlus,
                    other => return Err(format!("unknown dialect `{other}`")),
                });
            }
            "--schema" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--schema needs a value".to_string())?;
                let arities: Result<Vec<usize>, _> =
                    v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                opts.schema = Schema::new(arities.map_err(|e| format!("bad --schema `{v}`: {e}"))?);
            }
            "--metrics-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--metrics-out needs a value".to_string())?;
                opts.metrics_out = Some(v.clone());
            }
            "--help" | "-h" => return Err(usage()),
            other if file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    opts.file = file.ok_or_else(usage)?;
    Ok(opts)
}

fn read_input(file: &str) -> Result<String, String> {
    if file == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One diagnostic as a JSON object. `line`/`col` come from the span
/// table when the statement has a recorded span.
fn diag_json(d: &Diagnostic, src: &str, spans: &recdb_qlhs::SpanTable) -> String {
    let mut fields = vec![
        format!("\"code\": \"{}\"", d.code),
        format!("\"severity\": \"{}\"", d.severity()),
        format!(
            "\"path\": [{}]",
            d.path
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
        format!("\"message\": \"{}\"", json_escape(&d.message)),
    ];
    if let Some(span) = spans.enclosing(&d.path) {
        let (line, col) = span.line_col(src);
        fields.push(format!("\"line\": {line}"));
        fields.push(format!("\"col\": {col}"));
    }
    if let Some(note) = &d.note {
        fields.push(format!("\"note\": \"{}\"", json_escape(note)));
    }
    format!("{{{}}}", fields.join(", "))
}

/// Renders the whole program analysis as one ANALYZE-CLI/v1 JSON
/// document. Diagnostics are sorted by (path, code, message) so the
/// output is stable across runs and refactors of emission order.
#[allow(clippy::too_many_arguments)] // one row per CLI rendering input
fn report_json(
    name: &str,
    dialect: Dialect,
    analysis: &recdb_analyze::FullAnalysis,
    diags: &[&Diagnostic],
    src: &str,
    spans: &recdb_qlhs::SpanTable,
    generic: bool,
    cost: bool,
) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.to_vec();
    sorted.sort_by(|a, b| (&a.path, a.code, &a.message).cmp(&(&b.path, b.code, &b.message)));
    let diag_rows: Vec<String> = sorted
        .iter()
        .map(|d| format!("    {}", diag_json(d, src, spans)))
        .collect();
    let mut out = String::from("{\n");
    out.push_str("  \"format\": \"ANALYZE-CLI/v1\",\n");
    out.push_str(&format!("  \"file\": \"{}\",\n", json_escape(name)));
    out.push_str(&format!("  \"dialect\": \"{dialect}\",\n"));
    out.push_str(&format!(
        "  \"verdict\": \"{}\",\n",
        analysis.safety.verdict
    ));
    if generic {
        let g = &analysis.genericity;
        out.push_str("  \"genericity\": {");
        match &g.verdict {
            GenericityVerdict::Generic { fixed } => {
                out.push_str(&format!(
                    "\"verdict\": \"generic\", \"fixed\": [{}]",
                    fixed
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            GenericityVerdict::NonGeneric { witness, .. } => {
                out.push_str(&format!(
                    "\"verdict\": \"nongeneric\", \"witness\": [{}, {}]",
                    witness.0, witness.1
                ));
            }
            GenericityVerdict::Unknown => out.push_str("\"verdict\": \"unknown\""),
        }
        out.push_str("},\n");
        let t = &analysis.termination;
        out.push_str("  \"termination\": {");
        match t.verdict {
            TerminationVerdict::Terminates { iterations } => out.push_str(&format!(
                "\"verdict\": \"terminates\", \"iterations\": {iterations}"
            )),
            TerminationVerdict::Diverges => out.push_str("\"verdict\": \"diverges\""),
            TerminationVerdict::Unknown => out.push_str("\"verdict\": \"unknown\""),
        }
        let loop_rows: Vec<String> = t
            .loops
            .iter()
            .map(|l| {
                let path = l
                    .path
                    .iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                let bound = match l.bound {
                    LoopBound::Bounded(b) => format!("\"bounded\", \"bound\": {b}"),
                    LoopBound::Divergent => "\"divergent\"".to_string(),
                    LoopBound::Unknown => "\"unknown\"".to_string(),
                };
                format!("{{\"path\": [{path}], \"kind\": {bound}}}")
            })
            .collect();
        out.push_str(&format!(", \"loops\": [{}]", loop_rows.join(", ")));
        out.push_str("},\n");
    }
    if cost {
        let c = &analysis.cost;
        out.push_str("  \"cost\": {");
        match &c.verdict {
            CostVerdict::Bounded { cardinality, work } => out.push_str(&format!(
                "\"verdict\": \"bounded\", \"cardinality\": \"{}\", \"work\": \"{}\"",
                json_escape(&cardinality.to_string()),
                json_escape(&work.to_string())
            )),
            CostVerdict::Unbounded => out.push_str("\"verdict\": \"unbounded\""),
        }
        let stmt_rows: Vec<String> = c
            .stmts
            .iter()
            .map(|s| {
                let path = s
                    .path
                    .iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{{\"path\": [{path}], \"executions\": {}, \"cardinality\": \"{}\", \"work\": \"{}\"}}",
                    s.executions,
                    json_escape(&s.cardinality.to_string()),
                    json_escape(&s.work.to_string())
                )
            })
            .collect();
        out.push_str(&format!(", \"stmts\": [{}]", stmt_rows.join(", ")));
        out.push_str("},\n");
    }
    if diag_rows.is_empty() {
        out.push_str("  \"diagnostics\": []\n}\n");
    } else {
        out.push_str(&format!(
            "  \"diagnostics\": [\n{}\n  ]\n}}\n",
            diag_rows.join(",\n")
        ));
    }
    out
}

fn line_col(src: &str, at: usize) -> (usize, usize) {
    let upto = &src.as_bytes()[..at.min(src.len())];
    let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
    let col = 1 + upto.iter().rev().take_while(|&&b| b != b'\n').count();
    (line, col)
}

fn run(opts: &Opts) -> Result<bool, String> {
    let src = read_input(&opts.file)?;
    let name = if opts.file == "-" {
        "<stdin>"
    } else {
        &opts.file
    };

    if opts.formula {
        let parsed = recdb_logic::parse_query(&src, &opts.schema).map_err(|e| {
            let (l, c) = line_col(&src, e.at);
            format!("{name}:{l}:{c}: {}", e.msg)
        })?;
        let (rank, body) = match parsed {
            recdb_logic::ParsedQuery::Undefined => {
                println!("{name}: the everywhere-undefined query (always legal)");
                return Ok(true);
            }
            recdb_logic::ParsedQuery::Defined { rank, body } => (rank, body),
        };
        let report = analyze_formula(&body, &opts.schema, Some(rank), opts.lminus);
        for d in &report.diagnostics {
            print!("{}", d.render(None, name));
        }
        println!(
            "{name}: rank {rank}, {} free variable(s), quantifier depth {} (EF-rank bound), {}",
            report.free_vars.len(),
            report.ef_rank_bound,
            if report.quantifier_free {
                "quantifier-free (L⁻)"
            } else {
                "quantified (full L)"
            }
        );
        return Ok(report.is_clean());
    }

    let (prog, spans) = parse_program_with_spans(&src).map_err(|e| {
        let (l, c) = line_col(&src, e.at);
        format!("{name}:{l}:{c}: {}", e.msg)
    })?;
    let dialect = opts
        .dialect
        .or_else(|| classify(&prog))
        .unwrap_or(Dialect::Qlhs);
    let full = analyze_full(&prog, &opts.schema, dialect);
    let mut diags: Vec<&Diagnostic> = full.safety.diagnostics.iter().collect();
    if opts.generic {
        diags.extend(full.termination.diagnostics.iter());
        diags.extend(full.genericity.diagnostics.iter());
    }
    if opts.cost {
        diags.extend(full.cost.diagnostics.iter());
    }
    if opts.format == Format::Json {
        print!(
            "{}",
            report_json(
                name,
                dialect,
                &full,
                &diags,
                &src,
                &spans,
                opts.generic,
                opts.cost
            )
        );
    } else {
        for d in &diags {
            print!("{}", d.render(Some((&src, &spans)), name));
        }
        let errors = diags
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count();
        let warnings = diags.len() - errors;
        println!(
            "{name}: {} under {} — verdict: {} ({errors} error(s), {warnings} warning(s))",
            match full.safety.verdict {
                Verdict::Safe => "no rank/arity/dialect error on any run",
                Verdict::Unsafe => "every run returns an error",
                Verdict::Unknown => "potential errors found",
            },
            dialect,
            full.safety.verdict,
        );
        if opts.generic {
            println!("{name}: genericity: {}", full.genericity.verdict);
            println!("{name}: termination: {}", full.termination.verdict);
        }
        if opts.cost {
            println!("{name}: cost: {}", full.cost.verdict);
            for s in &full.cost.stmts {
                println!(
                    "{name}:   stmt {:?}: ≤{} execution(s), |value| ≤ {}, work ≤ {}",
                    s.path, s.executions, s.cardinality, s.work
                );
            }
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();
    Ok(errors == 0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let recorder = Arc::new(InMemoryRecorder::new());
    if opts.metrics_out.is_some() {
        recdb_obs::install(recorder.clone());
    }
    let result = run(&opts);
    if let Some(path) = &opts.metrics_out {
        if let Err(e) = recorder.snapshot().write_json(path) {
            eprintln!("writing metrics to {path}: {e}");
        }
    }
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
