//! `analyze` — the static-analysis CLI.
//!
//! ```text
//! analyze [OPTIONS] FILE          check a QL-family program
//! analyze --formula [OPTIONS] FILE   check an L⁻/FO query expression
//!
//! OPTIONS
//!   --dialect ql|qlhs|qlf+   dialect to check against (default: the
//!                            smallest dialect admitting the program's
//!                            tests)
//!   --schema A1,A2,...       relation arities (default: 2)
//!   --lminus                 (formula mode) require quantifier-free
//!   --metrics-out PATH       write a METRICS/v1 JSON snapshot
//!   -                        read from stdin
//! ```
//!
//! Exit status: 0 if no error-severity diagnostics, 1 otherwise, 2 on
//! usage/parse failures.

use recdb_analyze::{analyze_formula, analyze_prog, Severity, Verdict};
use recdb_core::Schema;
use recdb_obs::InMemoryRecorder;
use recdb_qlhs::{classify, parse_program_with_spans, Dialect};
use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

struct Opts {
    file: String,
    dialect: Option<Dialect>,
    schema: Schema,
    formula: bool,
    lminus: bool,
    metrics_out: Option<String>,
}

fn usage() -> String {
    "usage: analyze [--formula] [--lminus] [--dialect ql|qlhs|qlf+] \
     [--schema A1,A2,...] [--metrics-out PATH] FILE|-"
        .to_string()
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        file: String::new(),
        dialect: None,
        schema: Schema::new(vec![2]),
        formula: false,
        lminus: false,
        metrics_out: None,
    };
    let mut file = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--formula" => opts.formula = true,
            "--lminus" => opts.lminus = true,
            "--dialect" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--dialect needs a value".to_string())?;
                opts.dialect = Some(match v.to_ascii_lowercase().as_str() {
                    "ql" => Dialect::Ql,
                    "qlhs" => Dialect::Qlhs,
                    "qlf+" | "qlf" | "qlfplus" => Dialect::QlfPlus,
                    other => return Err(format!("unknown dialect `{other}`")),
                });
            }
            "--schema" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--schema needs a value".to_string())?;
                let arities: Result<Vec<usize>, _> =
                    v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                opts.schema = Schema::new(arities.map_err(|e| format!("bad --schema `{v}`: {e}"))?);
            }
            "--metrics-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--metrics-out needs a value".to_string())?;
                opts.metrics_out = Some(v.clone());
            }
            "--help" | "-h" => return Err(usage()),
            other if file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    opts.file = file.ok_or_else(usage)?;
    Ok(opts)
}

fn read_input(file: &str) -> Result<String, String> {
    if file == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))
    }
}

fn line_col(src: &str, at: usize) -> (usize, usize) {
    let upto = &src.as_bytes()[..at.min(src.len())];
    let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
    let col = 1 + upto.iter().rev().take_while(|&&b| b != b'\n').count();
    (line, col)
}

fn run(opts: &Opts) -> Result<bool, String> {
    let src = read_input(&opts.file)?;
    let name = if opts.file == "-" {
        "<stdin>"
    } else {
        &opts.file
    };

    if opts.formula {
        let parsed = recdb_logic::parse_query(&src, &opts.schema).map_err(|e| {
            let (l, c) = line_col(&src, e.at);
            format!("{name}:{l}:{c}: {}", e.msg)
        })?;
        let (rank, body) = match parsed {
            recdb_logic::ParsedQuery::Undefined => {
                println!("{name}: the everywhere-undefined query (always legal)");
                return Ok(true);
            }
            recdb_logic::ParsedQuery::Defined { rank, body } => (rank, body),
        };
        let report = analyze_formula(&body, &opts.schema, Some(rank), opts.lminus);
        for d in &report.diagnostics {
            print!("{}", d.render(None, name));
        }
        println!(
            "{name}: rank {rank}, {} free variable(s), quantifier depth {} (EF-rank bound), {}",
            report.free_vars.len(),
            report.ef_rank_bound,
            if report.quantifier_free {
                "quantifier-free (L⁻)"
            } else {
                "quantified (full L)"
            }
        );
        return Ok(report.is_clean());
    }

    let (prog, spans) = parse_program_with_spans(&src).map_err(|e| {
        let (l, c) = line_col(&src, e.at);
        format!("{name}:{l}:{c}: {}", e.msg)
    })?;
    let dialect = opts
        .dialect
        .or_else(|| classify(&prog))
        .unwrap_or(Dialect::Qlhs);
    let analysis = analyze_prog(&prog, &opts.schema, dialect);
    for d in &analysis.diagnostics {
        print!("{}", d.render(Some((&src, &spans)), name));
    }
    let errors = analysis
        .diagnostics
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();
    let warnings = analysis.diagnostics.len() - errors;
    println!(
        "{name}: {} under {} — verdict: {} ({errors} error(s), {warnings} warning(s))",
        match analysis.verdict {
            Verdict::Safe => "no rank/arity/dialect error on any run",
            Verdict::Unsafe => "every run returns an error",
            Verdict::Unknown => "potential errors found",
        },
        dialect,
        analysis.verdict,
    );
    Ok(errors == 0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let recorder = Arc::new(InMemoryRecorder::new());
    if opts.metrics_out.is_some() {
        recdb_obs::install(recorder.clone());
    }
    let result = run(&opts);
    if let Some(path) = &opts.metrics_out {
        if let Err(e) = recorder.snapshot().write_json(path) {
            eprintln!("writing metrics to {path}: {e}");
        }
    }
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
