//! C-genericity: which domain constants can a program's output
//! observe?
//!
//! A query `q` is **C-generic** when every domain permutation `π`
//! fixing `C` pointwise commutes with it: `π(q(B)) = q(π(B))`
//! ([CH] §2.5). Every QL construct except
//! [`Term::Const`](recdb_qlhs::Term) is π-equivariant — `E`, `Relᵢ`,
//! `∩`, `¬`, `↑`, `↓`, `~`, assignment, and all three `while` tests
//! commute with any bijection of the domain — and equivariance is a
//! congruence. So non-genericity can only enter through constants,
//! and the analysis reduces to a taint problem: which constants can
//! *influence* the run?
//!
//! ## The abstract domain
//!
//! Per variable, a pair:
//!
//! * **taint** — the set of constants that flowed into the value, by
//!   data (through terms) or by control (assigned under a loop whose
//!   guard is tainted: the iteration count may depend on those
//!   constants). The lattice is `(𝒫(C), ⊆)` — finite, since `C` is
//!   the program's syntactic constant set.
//! * **exact** — `Some(V)`: on every *completing* run over a finite
//!   structure, the variable holds exactly `V`. Survives `Const`
//!   (`{(a)}`), variable copies, `∩`, `↓`, `~`; anything
//!   domain-dependent (`E`, `Relᵢ`, `¬`, `↑`) degrades to `None`.
//!
//! Loops run to a taint/exactness fixpoint with the guard's taint
//! added to the control context each round.
//!
//! ## Verdict soundness
//!
//! * [`GenericityVerdict::Generic`]`{fixed}` is a **proof**: the
//!   program commutes with every permutation fixing `fixed`
//!   pointwise. `fixed` is the output taint *plus every loop guard's
//!   taint* — the latter because a permutation moving a
//!   guard-observed constant could change an iteration count (or
//!   termination itself) even when the changed values never reach
//!   `Y1`. With all guards π-related, the two runs proceed in
//!   lockstep and every env entry stays π-related, so outputs (and
//!   error/divergence outcomes) correspond.
//! * [`GenericityVerdict::NonGeneric`] is a **proof with a witness**:
//!   the run is [`Verdict::Safe`], provably terminating, and the
//!   output is exactly a non-empty constant relation `V` on every
//!   finite structure — so the transposition `(e d)` with
//!   `e ∈ elems(V)`, `d` fresh satisfies `π(q(B)) = π(V) ≠ V =
//!   q(π(B))`.
//!
//!   Exactness is grounded in the finitary/fcf semantics, where
//!   `Cₐ = {(a)}`. Under the **QLhs dialect** `Cₐ` denotes the whole
//!   `≅_B`-class of `a` — `C3 & C5` is non-empty on a clique — so
//!   neither exact-value verdict (`NonGeneric`, or `Generic {∅}` from
//!   an exact element-free value) is claimed there; QLhs programs fall
//!   back to the taint proof, which *is* valid on `hs` databases
//!   (a `π` fixing `a` pointwise maps the class of `a` in `B` to the
//!   class of `a` in `π(B)`).
//! * [`GenericityVerdict::Unknown`] — the program is not a
//!   well-formed program of its dialect, so there is no semantics to
//!   be generic about (the interpreter rejects it before running).
//!
//! The conformance checks `GENERIC-PERM` and `NONGENERIC-WITNESS`
//! replay both proved verdicts against the real interpreters.

use crate::diag::{Code, Diagnostic};
use crate::prog::{Analysis, Verdict};
use crate::terminate::{TerminationAnalysis, TerminationVerdict};
use recdb_core::{Schema, Tuple};
use recdb_qlhs::{Dialect, Prog, Term, Val};
use std::collections::BTreeSet;

/// The three-valued genericity verdict.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GenericityVerdict {
    /// Proof: the program commutes with every domain permutation that
    /// fixes `fixed` pointwise. `fixed = ∅` is plain genericity.
    Generic {
        /// The constants a permutation must fix.
        fixed: BTreeSet<u64>,
    },
    /// Proof: the output is exactly `output` on every completing run
    /// over a finite structure, and the transposition swapping
    /// `witness.0` and `witness.1` changes it.
    NonGeneric {
        /// The proved constant output relation.
        output: Val,
        /// A transposition `(e, d)`: `e` occurs in the output, `d` is
        /// fresh (in neither the output nor the program's constants).
        witness: (u64, u64),
    },
    /// Not decided (dialect-rejected programs have no runs to judge).
    Unknown,
}

impl std::fmt::Display for GenericityVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenericityVerdict::Generic { fixed } if fixed.is_empty() => f.write_str("generic"),
            GenericityVerdict::Generic { fixed } => {
                write!(f, "generic fixing {{")?;
                for (i, c) in fixed.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{c}")?;
                }
                f.write_str("}")
            }
            GenericityVerdict::NonGeneric {
                witness: (e, d), ..
            } => {
                write!(f, "non-generic (witness: swap {e} and {d})")
            }
            GenericityVerdict::Unknown => f.write_str("unknown"),
        }
    }
}

/// The result of [`analyze_genericity`].
#[derive(Clone, Debug)]
pub struct GenericAnalysis {
    /// The program's syntactic constant set `C` — the upper bound on
    /// what any verdict may mention.
    pub constants: BTreeSet<u64>,
    /// The verdict.
    pub verdict: GenericityVerdict,
    /// `W0301`/`W0302` findings.
    pub diagnostics: Vec<Diagnostic>,
}

/// Abstract state of one variable: taint plus optional exact value.
#[derive(Clone, PartialEq, Eq, Debug)]
struct GVar {
    taint: BTreeSet<u64>,
    exact: Option<Val>,
}

impl GVar {
    /// An unassigned variable: untainted, exactly the empty rank-0
    /// value (a semantic guarantee of all three interpreters).
    fn unset() -> GVar {
        GVar {
            taint: BTreeSet::new(),
            exact: Some(Val::empty(0)),
        }
    }

    fn join(&self, other: &GVar) -> GVar {
        GVar {
            taint: self.taint.union(&other.taint).cloned().collect(),
            exact: match (&self.exact, &other.exact) {
                (Some(a), Some(b)) if a == b => Some(a.clone()),
                _ => None,
            },
        }
    }
}

type GEnv = Vec<GVar>;

/// Renders a constant relation for diagnostics, e.g. `{(3), (7)}`.
fn fmt_val(v: &Val) -> String {
    let ts: Vec<String> = v
        .tuples
        .iter()
        .map(|t| {
            let es: Vec<String> = t.elems().iter().map(|e| e.value().to_string()).collect();
            format!("({})", es.join(","))
        })
        .collect();
    format!("{{{}}}", ts.join(", "))
}

fn join_env(a: &GEnv, b: &GEnv) -> GEnv {
    a.iter().zip(b).map(|(x, y)| x.join(y)).collect()
}

/// Taint and exactness of a term. Exactness follows the finitary
/// semantics (`Cₐ = {(a)}`), which is the backend the NonGeneric
/// witness is replayed on; taint is an over-approximation of
/// influence on *every* backend.
fn eval_term(t: &Term, env: &GEnv) -> GVar {
    match t {
        // Domain-dependent atoms: untainted, not exactly known.
        Term::E | Term::Rel(_) => GVar {
            taint: BTreeSet::new(),
            exact: None,
        },
        Term::Const(c) => GVar {
            taint: [*c].into_iter().collect(),
            exact: Some(Val::new(1, [Tuple::from_values([*c])])),
        },
        Term::Var(v) => env.get(*v).cloned().unwrap_or_else(GVar::unset),
        Term::And(a, b) => {
            let (x, y) = (eval_term(a, env), eval_term(b, env));
            let exact = match (&x.exact, &y.exact) {
                (Some(va), Some(vb)) if va.rank == vb.rank => Some(Val::new(
                    va.rank,
                    va.tuples.intersection(&vb.tuples).cloned(),
                )),
                _ => None,
            };
            GVar {
                taint: x.taint.union(&y.taint).cloned().collect(),
                exact,
            }
        }
        // ¬ and ↑ quantify over the domain: never exactly known.
        Term::Not(e) | Term::Up(e) => GVar {
            taint: eval_term(e, env).taint,
            exact: None,
        },
        Term::Down(e) => {
            let x = eval_term(e, env);
            let exact = x.exact.and_then(|v| {
                if v.rank == 0 {
                    Some(Val::empty(0))
                } else {
                    v.tuples
                        .iter()
                        .map(Tuple::drop_first)
                        .collect::<Option<BTreeSet<_>>>()
                        .map(|ts| Val::new(v.rank - 1, ts))
                }
            });
            GVar {
                taint: x.taint,
                exact,
            }
        }
        Term::Swap(e) => {
            let x = eval_term(e, env);
            let exact = x.exact.and_then(|v| {
                if v.rank < 2 {
                    Some(v)
                } else {
                    v.tuples
                        .iter()
                        .map(Tuple::swap_last_two)
                        .collect::<Option<BTreeSet<_>>>()
                        .map(|ts| Val::new(v.rank, ts))
                }
            });
            GVar {
                taint: x.taint,
                exact,
            }
        }
    }
}

/// Walks `p`, accumulating every loop guard's fixpoint taint into
/// `guard_taint` (those constants can steer iteration counts and
/// termination, so any `Generic` claim must fix them too).
fn exec(p: &Prog, env: &mut GEnv, ctl: &BTreeSet<u64>, guard_taint: &mut BTreeSet<u64>) {
    match p {
        Prog::Assign(v, t) => {
            let mut val = eval_term(t, env);
            val.taint.extend(ctl.iter().copied());
            if *v >= env.len() {
                env.resize(*v + 1, GVar::unset());
            }
            env[*v] = val;
        }
        Prog::Seq(ps) => {
            for q in ps {
                exec(q, env, ctl, guard_taint);
            }
        }
        Prog::WhileEmpty(v, body) | Prog::WhileSingleton(v, body) | Prog::WhileFinite(v, body) => {
            // Fixpoint: the guard's taint joins the control context,
            // and grows monotonically round to round.
            loop {
                let guard = env.get(*v).map(|s| s.taint.clone()).unwrap_or_default();
                let ctl2: BTreeSet<u64> = ctl.union(&guard).copied().collect();
                let mut out = env.clone();
                exec(body, &mut out, &ctl2, guard_taint);
                let joined = join_env(env, &out);
                if joined == *env {
                    break;
                }
                *env = joined;
            }
            guard_taint.extend(env.get(*v).map(|s| s.taint.clone()).unwrap_or_default());
        }
    }
}

/// Analyzes which constants the output of `p` can observe and
/// produces the three-valued genericity verdict.
///
/// `safety` and `termination` are the program's [`crate::analyze_prog`]
/// / [`crate::analyze_termination`] results: the `NonGeneric` proof
/// needs completing runs (`Safe` + `Terminates`) to exhibit its
/// witness. Bumps the `analyze.generic.*` counters when a `recdb-obs`
/// recorder is installed.
pub fn analyze_genericity(
    p: &Prog,
    _schema: &Schema,
    dialect: Dialect,
    safety: &Analysis,
    termination: &TerminationAnalysis,
) -> GenericAnalysis {
    recdb_obs::count("analyze.generic.programs", 1);
    let constants = p.constants();
    let mut diagnostics = Vec::new();
    let verdict = if dialect.check(p).is_err() {
        let d = Diagnostic::new(
            Code::GenericityUnknown,
            Vec::new(),
            format!("not a well-formed {dialect} program: genericity not analyzed"),
        )
        .with_note(format!(
            "{dialect} rejects the program before running it, so there is no output to judge"
        ));
        d.record();
        diagnostics.push(d);
        GenericityVerdict::Unknown
    } else if constants.is_empty() {
        // No constant symbols at all: every construct is
        // π-equivariant, so the program is plainly generic.
        GenericityVerdict::Generic {
            fixed: BTreeSet::new(),
        }
    } else {
        let nvars = p.max_var().map_or(1, |m| m + 1).max(1);
        let mut env: GEnv = vec![GVar::unset(); nvars];
        let mut guard_taint = BTreeSet::new();
        exec(p, &mut env, &BTreeSet::new(), &mut guard_taint);
        let out = env.first().cloned().unwrap_or_else(GVar::unset);
        let observed: BTreeSet<u64> = out.taint.union(&guard_taint).copied().collect();
        let exact_elems: Option<BTreeSet<u64>> = out.exact.as_ref().map(|v| {
            v.tuples
                .iter()
                .flat_map(|t| t.elems())
                .map(|e| e.value())
                .collect()
        });
        let completes = safety.verdict == Verdict::Safe
            && matches!(termination.verdict, TerminationVerdict::Terminates { .. });
        // Exact values follow `Cₐ = {(a)}` — true on the finitary and
        // fcf backends, false on `hs` where `Cₐ` is a `≅_B`-class. So
        // exact-based verdicts are only claimed outside QLhs.
        let exact_grounded = dialect != Dialect::Qlhs;
        match (out.exact, exact_elems) {
            // The output is provably a fixed constant relation with at
            // least one element: a transposition moving that element
            // to a fresh one changes π(q(B)) but not q(π(B)).
            (Some(output), Some(elems)) if exact_grounded && completes && !elems.is_empty() => {
                let e = elems.iter().min().copied().unwrap_or(0);
                let d = elems
                    .iter()
                    .chain(constants.iter())
                    .max()
                    .copied()
                    .unwrap_or(0)
                    + 1;
                let diag = Diagnostic::new(
                    Code::NonGenericOutput,
                    Vec::new(),
                    format!(
                        "the output is the fixed relation {} on every database: \
                         swapping {e} and {d} changes it",
                        fmt_val(&output)
                    ),
                )
                .with_note(format!(
                    "depends on the constant(s) {observed:?}; a C-generic query commutes \
                     with every permutation fixing C"
                ));
                diag.record();
                diagnostics.push(diag);
                GenericityVerdict::NonGeneric {
                    output,
                    witness: (e, d),
                }
            }
            // Provably constant output with no elements (empty, or a
            // set of empty tuples): every permutation fixes it. Only
            // claimable when the run provably completes — otherwise a
            // guard-observed constant can flip Ok vs divergence under
            // a permutation, so the guard taint must stay fixed.
            (Some(_), Some(elems)) if exact_grounded && completes && elems.is_empty() => {
                GenericityVerdict::Generic {
                    fixed: BTreeSet::new(),
                }
            }
            // The sound default: invariant under permutations fixing
            // everything the run can observe.
            _ => GenericityVerdict::Generic { fixed: observed },
        }
    };
    recdb_obs::count(
        match &verdict {
            GenericityVerdict::Generic { .. } => "analyze.generic.verdict.generic",
            GenericityVerdict::NonGeneric { .. } => "analyze.generic.verdict.nongeneric",
            GenericityVerdict::Unknown => "analyze.generic.verdict.unknown",
        },
        1,
    );
    GenericAnalysis {
        constants,
        verdict,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_prog;
    use crate::terminate::analyze_termination;
    use recdb_qlhs::parse_program;

    fn s2() -> Schema {
        Schema::new(vec![2])
    }

    fn generic_of(src: &str, dialect: Dialect) -> GenericAnalysis {
        let p = parse_program(src).unwrap();
        let safety = analyze_prog(&p, &s2(), dialect);
        let term = analyze_termination(&p, &s2(), dialect, &safety);
        analyze_genericity(&p, &s2(), dialect, &safety, &term)
    }

    fn fixed_of(a: &GenericAnalysis) -> BTreeSet<u64> {
        match &a.verdict {
            GenericityVerdict::Generic { fixed } => fixed.clone(),
            other => panic!("expected Generic, got {other:?}"),
        }
    }

    #[test]
    fn constant_free_programs_are_plainly_generic() {
        let a = generic_of("Y2 := up(R1); Y1 := swap(Y2) & Y2;", Dialect::Ql);
        assert!(a.constants.is_empty());
        assert_eq!(fixed_of(&a), BTreeSet::new());
    }

    #[test]
    fn constant_output_is_nongeneric_with_a_fresh_witness() {
        let a = generic_of("Y1 := C3;", Dialect::Ql);
        match &a.verdict {
            GenericityVerdict::NonGeneric { output, witness } => {
                assert_eq!(output.rank, 1);
                assert_eq!(witness.0, 3);
                assert!(witness.1 != 3 && !a.constants.contains(&witness.1));
            }
            other => panic!("expected NonGeneric, got {other:?}"),
        }
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == Code::NonGenericOutput));
    }

    #[test]
    fn exactness_survives_intersection_and_projection() {
        // C3 & C3 = {(3)}; down({(3)}) = {()}: non-empty but with no
        // elements, so every permutation fixes it — generic.
        let a = generic_of("Y1 := down(C3 & C3);", Dialect::Ql);
        assert_eq!(fixed_of(&a), BTreeSet::new());
        // But the exact value {(3)} itself is non-generic.
        let a = generic_of("Y1 := C3 & C3;", Dialect::Ql);
        assert!(matches!(a.verdict, GenericityVerdict::NonGeneric { .. }));
    }

    #[test]
    fn disjoint_constants_intersect_to_the_generic_empty_value() {
        let a = generic_of("Y1 := C2 & C5;", Dialect::Ql);
        assert_eq!(fixed_of(&a), BTreeSet::new());
    }

    #[test]
    fn domain_dependent_use_falls_back_to_fixing_the_constant() {
        // ¬C2 depends on the database (the complement base), so no
        // exact value — but the taint proof still gives invariance
        // under permutations fixing 2.
        let a = generic_of("Y1 := !C2;", Dialect::Ql);
        assert_eq!(fixed_of(&a), [2].into_iter().collect::<BTreeSet<u64>>());
    }

    #[test]
    fn control_taint_flows_from_loop_guards() {
        // Y1's assigned term is constant-free, but the assignment sits
        // under a guard tainted by C4: the iteration count (and
        // whether the loop exits at all) can observe 4.
        let a = generic_of(
            "Y2 := C4 & down(R1); while empty(Y2) { Y1 := E; Y2 := E & E; }",
            Dialect::Ql,
        );
        assert_eq!(fixed_of(&a), [4].into_iter().collect::<BTreeSet<u64>>());
    }

    #[test]
    fn guard_taint_counts_even_when_the_output_is_untouched() {
        // The tainted loop assigns nothing Y1 ever sees — but π moving
        // 4 can still flip the loop between terminating and not, which
        // a permutation differential would observe as Ok vs Fuel.
        let a = generic_of(
            "Y1 := R1; Y2 := C4 & down(R1); while empty(Y2) { Y3 := E; Y2 := R1 & R1; }",
            Dialect::Ql,
        );
        assert_eq!(fixed_of(&a), [4].into_iter().collect::<BTreeSet<u64>>());
    }

    #[test]
    fn exact_empty_generic_claim_needs_proved_termination() {
        // Y1 is provably empty on every *completing* run, but the loop
        // has no proved bound and its guard observes 4: a π moving 4
        // can flip the run between Ok(∅) and divergence, so the plain
        // Generic {∅} claim is unsound — fall back to fixing the
        // guard taint.
        let a = generic_of(
            "Y2 := C4 & down(R1); while empty(Y2) { Y3 := E; }",
            Dialect::Ql,
        );
        assert_eq!(fixed_of(&a), [4].into_iter().collect::<BTreeSet<u64>>());
    }

    #[test]
    fn nongeneric_needs_proved_termination() {
        // Output would be exactly {(3)}, but the loop before it has no
        // proved bound, so no completing-run claim — fall back to the
        // Generic-fixing proof.
        let a = generic_of(
            "Y2 := down(R1); while empty(Y2) { Y2 := up(Y2) & R1; } Y1 := C3;",
            Dialect::Ql,
        );
        assert_eq!(fixed_of(&a), [3].into_iter().collect::<BTreeSet<u64>>());
    }

    #[test]
    fn exact_values_are_not_trusted_under_qlhs() {
        // On an hs database `C3`/`C5` denote whole ≅_B-classes:
        // `C3 & C5` is non-empty on a clique, so neither the
        // NonGeneric claim nor the exact-empty Generic {∅} claim is
        // grounded there. QLhs falls back to the taint proof.
        let a = generic_of("Y1 := C3 & C5;", Dialect::Qlhs);
        assert_eq!(fixed_of(&a), [3, 5].into_iter().collect::<BTreeSet<u64>>());
        let a = generic_of("Y1 := C3;", Dialect::Qlhs);
        assert_eq!(fixed_of(&a), [3].into_iter().collect::<BTreeSet<u64>>());
        // The identical programs under QL keep their exact verdicts.
        let a = generic_of("Y1 := C3 & C5;", Dialect::Ql);
        assert_eq!(fixed_of(&a), BTreeSet::new());
        let a = generic_of("Y1 := C3;", Dialect::Ql);
        assert!(matches!(a.verdict, GenericityVerdict::NonGeneric { .. }));
    }

    #[test]
    fn dialect_rejected_programs_are_unknown() {
        // QLf+-only construct under the QL dialect: Unknown, not
        // Generic (satellite: dialect/verdict interaction).
        let a = generic_of("Y1 := E; while finite(Y1) { Y1 := up(Y1); }", Dialect::Ql);
        assert_eq!(a.verdict, GenericityVerdict::Unknown);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == Code::GenericityUnknown));
        // The same program in its own dialect is judged (and has no
        // constants, so it is plainly generic).
        let a = generic_of(
            "Y1 := E; while finite(Y1) { Y1 := up(Y1); }",
            Dialect::QlfPlus,
        );
        assert_eq!(fixed_of(&a), BTreeSet::new());
    }

    #[test]
    fn singleton_test_under_ql_is_unknown_too() {
        let a = generic_of("Y1 := C1; while single(Y1) { Y1 := up(Y1); }", Dialect::Ql);
        assert_eq!(a.verdict, GenericityVerdict::Unknown);
        // Under QLhs the loop is judged: the guard is tainted by 1,
        // and `up` kills exactness, so the verdict is the sound
        // fallback — generic fixing {1}.
        let a = generic_of(
            "Y1 := C1; while single(Y1) { Y1 := up(Y1); }",
            Dialect::Qlhs,
        );
        assert_eq!(fixed_of(&a), [1].into_iter().collect::<BTreeSet<u64>>());
    }
}
