//! The abstract domains: rank, emptiness, and assignment state.
//!
//! ## Rank lattice
//!
//! ```text
//!           ⊤   (rank not provable — or a definite mismatch)
//!        / / \ \
//!   …  0  1  2  3 …   (Known(k): the value has rank k on EVERY run)
//!        \ \ / /
//!           ⊥   (unreachable — no run gets here)
//! ```
//!
//! The transfer function [`term_rank`] is *exact* on `Known` inputs:
//! every QL operator's output rank is a function of its input ranks
//! (`E↦2`, `Relᵢ↦arity(i)`, `↑` adds one, `↓` subtracts one clamping
//! at 0 — the empty-rank-0 convention — `∩`/`¬`/`~` preserve), and an
//! unassigned variable evaluates to the empty rank-0 value, never an
//! error. So `Known(k)` genuinely means "rank k on every execution
//! reaching this point"; information is only lost at control-flow
//! joins, where disagreeing `Known`s go to `⊤`.
//!
//! ## Emptiness lattice
//!
//! `⊥ ⊑ {Empty, NonEmpty} ⊑ ⊤`. This one is *not* exact (`∩` of two
//! non-empty values may be empty, `¬` depends on the domain), and
//! `NonEmpty` facts for `E` assume a non-empty domain — true for every
//! structure this repo builds, but an assumption. It therefore only
//! feeds *warnings* (unreachable/divergent loops), never the
//! [`Verdict`](crate::Verdict).

use recdb_core::Schema;
use recdb_qlhs::Term;

/// Abstract rank of a QL value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbsRank {
    /// Unreachable.
    Bot,
    /// Provably rank `k` on every run reaching this point.
    Known(usize),
    /// Not provable (or provably erroneous).
    Top,
}

impl AbsRank {
    /// Least upper bound.
    pub fn join(self, other: AbsRank) -> AbsRank {
        match (self, other) {
            (AbsRank::Bot, x) | (x, AbsRank::Bot) => x,
            (AbsRank::Known(a), AbsRank::Known(b)) if a == b => AbsRank::Known(a),
            _ => AbsRank::Top,
        }
    }

    /// The proven concrete rank, if any.
    pub fn known(self) -> Option<usize> {
        match self {
            AbsRank::Known(k) => Some(k),
            _ => None,
        }
    }

    /// Applies `f` to a `Known` rank, passing `Bot`/`Top` through.
    pub fn map(self, f: impl FnOnce(usize) -> usize) -> AbsRank {
        match self {
            AbsRank::Known(k) => AbsRank::Known(f(k)),
            other => other,
        }
    }
}

/// Abstract emptiness of a QL value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbsEmpty {
    /// Unreachable.
    Bot,
    /// Provably empty.
    Empty,
    /// Provably non-empty (under the non-empty-domain assumption).
    NonEmpty,
    /// Unknown.
    Top,
}

impl AbsEmpty {
    /// Least upper bound.
    pub fn join(self, other: AbsEmpty) -> AbsEmpty {
        match (self, other) {
            (AbsEmpty::Bot, x) | (x, AbsEmpty::Bot) => x,
            (a, b) if a == b => a,
            _ => AbsEmpty::Top,
        }
    }
}

/// Whether a variable has been assigned on paths reaching a point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Assigned {
    /// On no path (a read is a definite use-before-assign).
    No,
    /// On some paths.
    Maybe,
    /// On every path.
    Yes,
}

impl Assigned {
    /// Least upper bound (`No ⊔ Yes = Maybe`).
    pub fn join(self, other: Assigned) -> Assigned {
        if self == other {
            self
        } else {
            Assigned::Maybe
        }
    }
}

/// The exact rank transfer function. `vars[v]` is the abstract rank of
/// `Yᵥ` at this program point (indices past the slice mean
/// never-assigned, i.e. `Known(0)`). Returns `Top` for a definite
/// `∩`-mismatch or an out-of-schema `Relᵢ` — the *diagnosis* of those
/// is the program analysis's job ([`crate::analyze_prog`]); here they
/// just mean "no provable rank".
pub fn term_rank(t: &Term, schema: &Schema, vars: &[AbsRank]) -> AbsRank {
    match t {
        Term::E => AbsRank::Known(2),
        // A constant is always the rank-1 singleton `{(a)}` (the class
        // of `a` over C_B representations) — rank 1 on every backend.
        Term::Const(_) => AbsRank::Known(1),
        Term::Rel(i) => {
            if *i < schema.len() {
                AbsRank::Known(schema.arity(*i))
            } else {
                AbsRank::Top
            }
        }
        Term::Var(v) => vars.get(*v).copied().unwrap_or(AbsRank::Known(0)),
        Term::And(a, b) => {
            let (ra, rb) = (term_rank(a, schema, vars), term_rank(b, schema, vars));
            match (ra, rb) {
                (AbsRank::Bot, x) | (x, AbsRank::Bot) => x,
                (AbsRank::Known(x), AbsRank::Known(y)) if x == y => AbsRank::Known(x),
                _ => AbsRank::Top,
            }
        }
        Term::Not(e) | Term::Swap(e) => term_rank(e, schema, vars),
        Term::Up(e) => term_rank(e, schema, vars).map(|k| k + 1),
        Term::Down(e) => term_rank(e, schema, vars).map(|k| k.saturating_sub(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdb_qlhs::Term;

    #[test]
    fn rank_join_table() {
        use AbsRank::*;
        assert_eq!(Bot.join(Known(2)), Known(2));
        assert_eq!(Known(2).join(Known(2)), Known(2));
        assert_eq!(Known(1).join(Known(2)), Top);
        assert_eq!(Top.join(Bot), Top);
    }

    #[test]
    fn empty_join_table() {
        use AbsEmpty::*;
        assert_eq!(Bot.join(Empty), Empty);
        assert_eq!(Empty.join(Empty), Empty);
        assert_eq!(Empty.join(NonEmpty), Top);
        assert_eq!(NonEmpty.join(Top), Top);
    }

    #[test]
    fn assigned_join_table() {
        use Assigned::*;
        assert_eq!(No.join(Yes), Maybe);
        assert_eq!(Yes.join(Yes), Yes);
        assert_eq!(Maybe.join(No), Maybe);
    }

    #[test]
    fn transfer_matches_runtime_rank_rules() {
        let schema = Schema::new(vec![2, 3]);
        let vars = [AbsRank::Known(1), AbsRank::Top];
        let cases: [(Term, AbsRank); 8] = [
            (Term::E, AbsRank::Known(2)),
            (Term::Rel(1), AbsRank::Known(3)),
            (Term::Rel(9), AbsRank::Top),
            (Term::Var(0).up(), AbsRank::Known(2)),
            (Term::Var(1).down(), AbsRank::Top),
            // Unassigned variable: empty rank-0 at runtime.
            (Term::Var(7), AbsRank::Known(0)),
            // ↓ clamps at rank 0.
            (Term::Var(7).down(), AbsRank::Known(0)),
            (Term::E.and(Term::Rel(0).swap()), AbsRank::Known(2)),
        ];
        for (t, want) in cases {
            assert_eq!(term_rank(&t, &schema, &vars), want, "{t}");
        }
        // Definite mismatch degrades to Top (diagnosis elsewhere).
        let t = Term::E.and(Term::E.up());
        assert_eq!(term_rank(&t, &schema, &vars), AbsRank::Top);
    }
}
