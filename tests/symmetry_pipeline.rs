//! §3 end-to-end: symmetry detection, refinement, back-and-forth, and
//! the elementary-equivalence corollary — across the construction zoo.

use recdb_core::{Elem, Tuple};
use recdb_hsdb::{
    back_and_forth, count_rank1_classes, find_r0, infinite_clique, infinite_star, line_equiv,
    paper_example_graph, rado_graph, unary_cells, v_n_r, CellSize, FnEquiv, HsDatabase,
};

fn zoo() -> Vec<(&'static str, HsDatabase)> {
    vec![
        ("clique", infinite_clique()),
        ("star", infinite_star()),
        ("paper-example", paper_example_graph()),
        (
            "cells",
            unary_cells(vec![CellSize::Infinite, CellSize::Infinite]),
        ),
        ("rado", rado_graph()),
    ]
}

#[test]
fn every_zoo_member_has_a_valid_representation() {
    for (name, hs) in zoo() {
        hs.validate(2).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn refinement_converges_on_every_member() {
    for (name, hs) in zoo() {
        let max_r = if name == "rado" { 1 } else { 3 };
        let (r0, counts) = find_r0(&hs, 1, max_r).expect("tree covers all levels");
        assert!(
            r0.is_some(),
            "{name}: refinement must converge, trajectory {counts:?}"
        );
    }
}

#[test]
fn refinement_blocks_never_cross_class_boundaries() {
    // Every block of every Vⁿᵣ contains only ≅ₗ-equivalent... no:
    // only tuples that are ≡ᵣ — which at r₀ means ≅_B-equivalent; but
    // blocks never mix tuples from different ≅_B classes *after* r₀,
    // and before r₀ blocks are unions of classes. Verify the union
    // property: any two tuples in one block of V¹₁ that are ≅_B are in
    // the same class trivially; stronger: ≅_B-equivalent tuples are
    // never split across blocks (refinement is coarser than ≅_B).
    for (name, hs) in zoo() {
        if name == "rado" {
            continue;
        }
        for r in 0..=2 {
            let part = v_n_r(&hs, 1, r).expect("tree covers all levels");
            for t in hs.t_n(1) {
                let holding: Vec<usize> = part
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.contains(&t))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(holding.len(), 1, "{name}: {t:?} in exactly one block");
            }
        }
    }
}

#[test]
fn back_and_forth_extends_on_all_members() {
    // For each zoo member, take two equivalent rank-1 tuples and grow
    // a partial automorphism by four rounds.
    for (name, hs) in zoo() {
        if name == "rado" {
            continue; // witness construction is depth-limited
        }
        let reps = hs.t_n(1);
        let rep = &reps[0];
        // Find a distinct equivalent raw element.
        let Some(raw) = (0..64u64)
            .map(|x| Tuple::from_values([x]))
            .find(|t| t.elems() != rep.elems() && hs.equivalent(rep, t))
        else {
            continue; // singleton class (e.g. the star's hub-only rep)
        };
        let cands = |x: &Tuple| {
            let mut out = x.distinct_elems();
            out.extend((0..64).map(Elem));
            out
        };
        let pa = back_and_forth(&hs, rep, &raw, 4, cands)
            .unwrap_or_else(|| panic!("{name}: back-and-forth must extend"));
        assert!(hs.equivalent(&pa.source, &pa.target), "{name}");
        assert_eq!(pa.rank(), 5, "{name}");
    }
}

#[test]
fn coloring_dichotomy() {
    // Colored line: unbounded growth. Colored star: bounded (the star
    // IS highly symmetric, so Prop 3.1's stretching stays finite).
    let line_eq = line_equiv();
    let colored_line = FnEquiv::new(move |u: &Tuple, v: &Tuple| {
        line_eq.equivalent(
            &Tuple::from_values([0]).concat(u),
            &Tuple::from_values([0]).concat(v),
        )
    });
    let star = infinite_star();
    let colored_star = {
        let star = star.clone();
        // Mark leaf 5.
        FnEquiv::new(move |u: &Tuple, v: &Tuple| {
            star.equivalent(
                &Tuple::from_values([5]).concat(u),
                &Tuple::from_values([5]).concat(v),
            )
        })
    };
    let narrow: Vec<Elem> = (0..16).map(Elem).collect();
    let wide: Vec<Elem> = (0..48).map(Elem).collect();
    // Line: strictly growing.
    assert!(
        count_rank1_classes(&colored_line, &wide) > count_rank1_classes(&colored_line, &narrow)
    );
    // Star: saturates at 3 (hub, the marked leaf, other leaves).
    assert_eq!(count_rank1_classes(&colored_star, &narrow), 3);
    assert_eq!(count_rank1_classes(&colored_star, &wide), 3);
}

#[test]
fn class_counts_match_across_views() {
    // |T¹| computed from the tree equals the count of pairwise
    // non-equivalent elements found by scanning raw elements.
    for (name, hs) in zoo() {
        let via_tree = hs.t_n(1).len();
        let elements: Vec<Elem> = (0..32).map(Elem).collect();
        let via_scan = count_rank1_classes(hs.equiv(), &elements);
        assert_eq!(via_tree, via_scan, "{name}: tree vs scan disagree");
    }
}
