//! Cross-crate pipeline: hs-r-db representation → QLhs → GMhs → FO.
//!
//! Exercises the whole §3–§6 stack on shared inputs and checks that
//! the different formalisms agree with each other and with the
//! membership oracles.

use recdb_bp::{fo_member, quantifier_pool};
use recdb_core::{Fuel, Tuple};
use recdb_gm::{GmAction, GmBuilder};
use recdb_hsdb::{paper_example_graph, rado_graph, random_digraph, HsDatabase};
use recdb_logic::ast::{Formula, Var};
use recdb_qlhs::{parse_program, HsInterp, Prog, Term};

fn run_qlhs(hs: &HsDatabase, src: &str) -> recdb_qlhs::Val {
    let prog = parse_program(src).expect("parses");
    HsInterp::new(hs)
        .run(&prog, &mut Fuel::new(5_000_000))
        .expect("runs")
}

#[test]
fn qlhs_complement_agrees_with_oracle_on_rado() {
    let hs = rado_graph();
    // Non-edge distinct pairs via QLhs.
    let v = run_qlhs(&hs, "Y1 := !R1 & !E;");
    assert_eq!(v.rank, 2);
    for rep in &v.tuples {
        assert!(!hs.database().query(0, rep.elems()));
        assert_ne!(rep[0], rep[1]);
    }
    // Union with R1 and E must be all of T².
    let all = run_qlhs(&hs, "Y1 := !(!R1 & !E) & !(R1 & E);"); // xor-free sanity
    assert!(all.len() <= hs.t_n(2).len());
}

#[test]
fn qlhs_and_fo_agree_on_edge_classes() {
    let hs = random_digraph();
    // QLhs: the loop class E ∩ R1 (diagonal pairs that are edges).
    let v = run_qlhs(&hs, "Y1 := E & R1;");
    // FO: φ(x,y) = x = y ∧ E(x,y).
    let phi = Formula::and(vec![
        Formula::Eq(Var(0), Var(1)),
        Formula::Rel(0, vec![Var(0), Var(1)]),
    ]);
    for t in hs.t_n(2) {
        assert_eq!(
            v.tuples.contains(&t),
            fo_member(&hs, &phi, &t),
            "QLhs and FO disagree at {t:?}"
        );
    }
}

#[test]
fn gm_copy_agrees_with_qlhs_identity() {
    let hs = paper_example_graph();
    // GMhs: load R1, store into out, erase, halt.
    let mut b = GmBuilder::new();
    let s0 = b.fresh();
    let s1 = b.fresh();
    let s2 = b.fresh();
    let halt = b.fresh();
    b.set(s0, GmAction::LoadRel { rel: 0, next: s1 });
    b.set(s1, GmAction::StoreCurrent { rel: 1, next: s2 });
    b.set(s2, GmAction::EraseTape(halt));
    b.set(halt, GmAction::Halt);
    let gm = b.build(2);
    let out = gm.run(&hs, &mut Fuel::new(1_000_000)).expect("halts");
    // QLhs: Y1 := R1.
    let v = run_qlhs(&hs, "Y1 := R1;");
    assert_eq!(out.store[1], v.tuples, "GMhs and QLhs compute the same C₁");
}

#[test]
fn gm_offspring_matches_qlhs_up() {
    let hs = paper_example_graph();
    let mut b = GmBuilder::new();
    let s0 = b.fresh();
    let s1 = b.fresh();
    let s2 = b.fresh();
    let s3 = b.fresh();
    let halt = b.fresh();
    b.set(s0, GmAction::LoadRel { rel: 0, next: s1 });
    b.set(s1, GmAction::LoadOffspring { next: s2 });
    b.set(s2, GmAction::StoreCurrent { rel: 1, next: s3 });
    b.set(s3, GmAction::EraseTape(halt));
    b.set(halt, GmAction::Halt);
    let gm = b.build(2);
    let out = gm.run(&hs, &mut Fuel::new(5_000_000)).expect("halts");
    let v = run_qlhs(&hs, "Y1 := up(R1);");
    assert_eq!(out.store[1], v.tuples, "offspring load ≡ QLhs ↑");
}

#[test]
fn representation_membership_round_trip() {
    // u ∈ Rᵢ ⟺ u ≅_B some rep in Cᵢ, across arbitrary tuples.
    for hs in [rado_graph(), paper_example_graph()] {
        for t in [
            Tuple::from_values([4, 9]),
            Tuple::from_values([3, 3]),
            Tuple::from_values([0, 2]),
            Tuple::from_values([5, 1]),
        ] {
            assert_eq!(
                hs.member_via_reps(0, &t),
                hs.database().query(0, t.elems()),
                "representation disagrees at {t:?}"
            );
        }
    }
}

#[test]
fn theorem_6_3_pool_is_stable() {
    // Enlarging the quantifier pool beyond T^{n+k} must not change FO
    // answers (the paper's "not necessary to evaluate over all of D").
    let hs = paper_example_graph();
    let phi = Formula::Exists(Var(1), Box::new(Formula::Rel(0, vec![Var(0), Var(1)])));
    for t in hs.t_n(1) {
        let small = fo_member(&hs, &phi, &t);
        // Hand evaluation with a much larger pool:
        let mut asg = recdb_logic::Assignment::from_tuple(&hs.canonical_rep(&t));
        let big_pool = quantifier_pool(&hs, 4);
        let big = recdb_logic::eval_with_pool(hs.database(), &phi, &mut asg, &big_pool).unwrap();
        assert_eq!(small, big, "pool instability at {t:?}");
    }
}

#[test]
fn qlhs_program_via_ast_matches_parsed() {
    let hs = rado_graph();
    let parsed = parse_program("Y1 := swap(up(R1) & up(E));").unwrap();
    let built = Prog::assign(0, Term::Rel(0).up().and(Term::E.up()).swap());
    let a = HsInterp::new(&hs)
        .run(&parsed, &mut Fuel::new(1_000_000))
        .unwrap();
    let b = HsInterp::new(&hs)
        .run(&built, &mut Fuel::new(1_000_000))
        .unwrap();
    assert_eq!(a, b);
}
