//! §4 end-to-end: fcf-r-dbs as hs-r-dbs, Df extraction, and agreement
//! between the QLf+ and QLhs views of the same database.

use recdb_core::{tuple, CoFiniteRelation, FiniteRelation, Fuel, Tuple};
use recdb_hsdb::{df_from_tree, FcfDatabase, FcfRel};
use recdb_qlhs::{parse_program, FcfInterp, HsInterp};

fn sample() -> FcfDatabase {
    FcfDatabase::new(
        "s",
        vec![
            FcfRel::Finite(FiniteRelation::unary([1, 2])),
            FcfRel::CoFinite(CoFiniteRelation::new(2, [tuple![1, 1], tuple![2, 1]])),
        ],
    )
}

#[test]
fn prop_4_1_both_directions() {
    let fcf = sample();
    let df = fcf.df();
    // Direction 1: the fcf-r-db is an hs-r-db with a valid C_B.
    let hs = fcf.clone().into_hsdb();
    hs.validate(2).expect("valid representation");
    // Direction 2: Df is recoverable from the tree alone.
    assert_eq!(df_from_tree(hs.tree(), 4), Some(df));
}

#[test]
fn qlfplus_and_qlhs_agree_on_shared_programs() {
    // Programs in the common QL fragment (no singleton/finiteness
    // tests) run under both interpreters; their answers describe the
    // same relation — check membership agreement tuple-by-tuple.
    let fcf = sample();
    let hs = fcf.clone().into_hsdb();
    let fcf_interp = FcfInterp::new(&fcf);
    // Note: `E` itself is NOT in the shared fragment — QLf+'s `E` is
    // the Df-diagonal while QLhs's is the full diagonal class (see the
    // dedicated test below).
    let sources = [
        "Y1 := R1;",
        "Y1 := !R1;",
        "Y1 := swap(R2);",
        "Y1 := down(R2);",
        "Y1 := R2 & swap(R2);",
    ];
    let probes: Vec<Tuple> = vec![
        tuple![1],
        tuple![2],
        tuple![7],
        tuple![1, 1],
        tuple![1, 2],
        tuple![2, 1],
        tuple![9, 9],
        tuple![],
    ];
    for src in sources {
        let prog = parse_program(src).unwrap();
        let fv = fcf_interp.run(&prog, &mut Fuel::new(1_000_000)).unwrap();
        let hv = HsInterp::new(&hs)
            .run(&prog, &mut Fuel::new(1_000_000))
            .unwrap();
        assert_eq!(fv.rank, hv.rank, "{src}: rank mismatch");
        for t in probes.iter().filter(|t| t.rank() == fv.rank) {
            // QLf+ answers membership directly…
            let in_fcf = fv.contains(t);
            // …QLhs answers via class representatives.
            let in_hs = hv.tuples.iter().any(|rep| hs.equivalent(rep, t));
            assert_eq!(in_fcf, in_hs, "{src} disagrees at {t:?}");
        }
    }
}

#[test]
fn qlfplus_e_restricted_to_df_vs_qlhs_e() {
    // The ONE deliberate semantic difference: QLf+'s E is the diagonal
    // over Df; QLhs's E is the diagonal class over all of D. Verify
    // the difference is exactly the non-Df diagonal.
    let fcf = sample();
    let hs = fcf.clone().into_hsdb();
    let prog = parse_program("Y1 := E;").unwrap();
    let fv = FcfInterp::new(&fcf)
        .run(&prog, &mut Fuel::new(100_000))
        .unwrap();
    let hv = HsInterp::new(&hs)
        .run(&prog, &mut Fuel::new(100_000))
        .unwrap();
    // (7,7): non-Df diagonal — in QLhs's E, not in QLf+'s.
    let t = tuple![7, 7];
    assert!(!fv.contains(&t));
    assert!(hv.tuples.iter().any(|rep| hs.equivalent(rep, &t)));
}

#[test]
fn finiteness_test_drives_control_flow() {
    let fcf = sample();
    // Flip Y1 until co-finite, counting iterations in Y2's rank.
    let prog = parse_program(
        "
        Y1 := R1;
        Y2 := down(down(E));
        while finite(Y1) {
            Y1 := !Y1;
            Y2 := up(Y2);
        }
        ",
    )
    .unwrap();
    let interp = FcfInterp::new(&fcf);
    let mut env = Vec::new();
    interp
        .exec(&prog, &mut env, &mut Fuel::new(100_000))
        .unwrap();
    assert!(!env[0].finite, "loop exits on a co-finite value");
    assert_eq!(env[1].rank, 1, "exactly one flip");
}

#[test]
fn projections_preserve_fcf_prop_4_2() {
    // down(R2) over a rank-2 co-finite relation is all of D¹; its
    // complement is empty; both are fcf values.
    let fcf = sample();
    let prog = parse_program("Y1 := !down(R2);").unwrap();
    let v = FcfInterp::new(&fcf)
        .run(&prog, &mut Fuel::new(100_000))
        .unwrap();
    assert!(v.finite);
    assert!(v.tuples.is_empty());
}

#[test]
fn df_structure_automorphisms_govern_equivalence() {
    // In `sample`, R2's complement {(1,1),(2,1)} pins 1 and 2 apart:
    // the Df structure is rigid, so (1) ≇ (2).
    let fcf = sample();
    assert_eq!(fcf.df_structure().automorphisms().len(), 1);
    let eq = fcf.equiv();
    assert!(!eq.equivalent(&tuple![1], &tuple![2]));
    assert!(eq.equivalent(&tuple![5], &tuple![9]));
}
