//! §6 end-to-end: the negative result (gadget), the positive results
//! (unary L⁻, FO over hs), and the Corollary 3.1 bridge — exercised
//! together across crates.

use recdb_bp::{
    express_hs_relation, express_unary_relation, find_disagreement, fo_member, BoundedOutputGadget,
    Gadget,
};
use recdb_core::{tuple, DatabaseBuilder, Elem, FiniteStructure, FnRelation, Tuple};
use recdb_hsdb::{
    combine_hs, infinite_clique, infinite_star, CandidateSource, FnCandidates, COMBINED_A,
    COMBINED_B,
};
use std::sync::Arc;

fn clique_cands() -> Arc<dyn CandidateSource> {
    Arc::new(FnCandidates::new(|x: &Tuple| {
        let mut d = x.distinct_elems();
        let fresh = (0..).map(Elem).find(|e| !d.contains(e)).expect("ℕ");
        d.push(fresh);
        d
    }))
}

#[test]
fn gadget_and_bounded_variant_agree() {
    let tri = FiniteStructure::undirected_graph([0, 1, 2], [(0, 1), (1, 2), (2, 0)]);
    let tri2 = FiniteStructure::undirected_graph([3, 4, 5], [(3, 4), (4, 5), (5, 3)]);
    let p4 = FiniteStructure::undirected_graph(0..4, [(0, 1), (1, 2), (2, 3)]);
    for (g1, g2) in [(tri.clone(), tri2), (tri, p4)] {
        let full = Gadget::new(g1.clone(), g2.clone());
        let bounded = BoundedOutputGadget::new(g1, g2);
        assert_eq!(full.b_equiv_c(), bounded.b_equiv_c());
    }
}

#[test]
fn theorem_6_3_across_constructions() {
    // "Is adjacent to something" over the star: true of hub AND leaf
    // (every leaf touches the hub) — so it is the full rank-1
    // relation; "has two distinct neighbours" separates hub from leaf.
    let hs = infinite_star();
    let db = hs.database().clone();
    let two_neighbours = move |t: &Tuple| {
        let mut found = 0;
        for y in 0..32u64 {
            if db.query(0, &[t[0], Elem(y)]) {
                found += 1;
                if found == 2 {
                    return true;
                }
            }
        }
        false
    };
    let phi = express_hs_relation(&hs, 1, &two_neighbours, 3).expect("expressible");
    for t in hs.t_n(1) {
        assert_eq!(fo_member(&hs, &phi, &t), two_neighbours(&t), "at {t:?}");
    }
    // The hub (0) qualifies; a leaf does not.
    assert!(fo_member(&hs, &phi, &tuple![0]));
    assert!(!fo_member(&hs, &phi, &tuple![7]));
}

#[test]
fn corollary_3_1_bridge_works_with_bp_machinery() {
    // Combine the clique with itself: a ≅ b. Then the relation {a} is
    // NOT automorphism-preserving — and Theorem 6.3's synthesis over
    // the combined hs-r-db must therefore mis-express it (the same
    // phenomenon as the unary {x|x=2} test, now at the §6 level).
    let k = infinite_clique();
    let c = combine_hs(&k, &k, true, clique_cands(), clique_cands());
    let only_a = |t: &Tuple| t[0] == COMBINED_A;
    let phi = express_hs_relation(&c, 1, only_a, 2).expect("synthesizable");
    // a and b share a class, so the formula treats them alike —
    // disagreeing with {a} on b.
    let on_a = fo_member(&c, &phi, &Tuple::from(vec![COMBINED_A]));
    let on_b = fo_member(&c, &phi, &Tuple::from(vec![COMBINED_B]));
    assert_eq!(on_a, on_b, "class-level formulas cannot split a from b");
    assert!(
        only_a(&Tuple::from(vec![COMBINED_A])) != only_a(&Tuple::from(vec![COMBINED_B])),
        "but the raw relation does split them — hence inexpressible"
    );
}

#[test]
fn unary_expression_pipeline_on_a_fresh_database() {
    // A three-cell unary database; express the union of two cells.
    let db = DatabaseBuilder::new("u3")
        .relation("P1", FnRelation::new("m0", 1, |t| t[0].value() % 3 == 0))
        .relation("P2", FnRelation::new("m1", 1, |t| t[0].value() % 3 == 1))
        .build();
    let probe: Vec<Elem> = (0..9).map(Elem).collect();
    let r = |t: &Tuple| t[0].value() % 3 != 2;
    let q = express_unary_relation(&db, 1, r, &probe);
    assert_eq!(find_disagreement(&db, &q, r, 1, &probe), None);
}

#[test]
fn gadget_ef_budget_is_monotone() {
    // Increasing the EF budget can only find a separation sooner-or-
    // equal; once separated at r, larger budgets return the same round.
    let tri = FiniteStructure::undirected_graph([0, 1, 2], [(0, 1), (1, 2), (2, 0)]);
    let p3 = FiniteStructure::undirected_graph([0, 1, 2], [(0, 1), (1, 2)]);
    let g = Gadget::new(tri, p3);
    let r2 = g.ef_separation_round(2);
    let r3 = g.ef_separation_round(3);
    match (r2, r3) {
        (Some(a), Some(b)) => assert_eq!(a, b),
        (None, Some(_)) | (None, None) => {}
        (Some(_), None) => panic!("separation cannot vanish with more budget"),
    }
}
