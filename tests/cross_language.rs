//! Cross-language agreement: L⁻, full FO, QL (finite), and QLhs views
//! of the same data coincide wherever their domains overlap.

use recdb_core::{tuple, FiniteStructure, Fuel, Tuple};
use recdb_hsdb::{infinite_clique, paper_example_graph, ComponentGraph, HsDatabase};
use recdb_logic::{eval_finite, finite_as_db, Assignment, LMinusQuery};
use recdb_qlhs::{parse_program, FinInterp, HsInterp};

/// One finite component of the §3.1 example graph, as a finite
/// structure (sym pair 0⇄1 plus arrow 2→3 would be disconnected; use
/// just the symmetric pair plus arrow in separate checks).
fn sym_pair() -> FiniteStructure {
    FiniteStructure::graph([0, 1], [(0, 1), (1, 0)])
}

#[test]
fn lminus_agrees_with_finite_fo_on_fragments() {
    // A quantifier-free query evaluated (a) on the infinite clique via
    // the r-db oracle, and (b) on finite fragments via FO evaluation,
    // gives the same answers for tuples inside the fragment.
    let schema = recdb_core::Schema::with_names(&["E"], &[2]);
    let q = LMinusQuery::parse("{ (x, y) | E(x, y) & !E(y, x) }", &schema).unwrap();
    let clique_db = recdb_core::DatabaseBuilder::new("K")
        .relation("E", recdb_core::FnRelation::infinite_clique())
        .build();
    let frag = FiniteStructure::restriction(&clique_db, &tuple![0, 1, 2]);
    for t in [tuple![0, 1], tuple![1, 1], tuple![2, 0]] {
        let via_oracle = q.eval(&clique_db, &t).is_member();
        let mut asg = Assignment::from_tuple(&t);
        let via_finite = eval_finite(&frag, q.body().unwrap(), &mut asg).unwrap();
        assert_eq!(via_oracle, via_finite, "at {t:?}");
    }
}

#[test]
fn finitary_ql_on_component_matches_qlhs_on_replication() {
    // The same QL program run (a) by the finitary interpreter on one
    // finite component and (b) by QLhs on the infinite replication of
    // that component describes "the same" relation: the QLhs answer is
    // the class set; the finite answer must be a union of those
    // classes restricted to one copy.
    let hs: HsDatabase = ComponentGraph::new(vec![sym_pair()]).into_hsdb();
    let fin = sym_pair();
    // Program: the symmetric part of R1 (here: everything).
    let prog = parse_program("Y1 := R1 & swap(R1);").unwrap();
    let vf = FinInterp::new(&fin)
        .run(&prog, &mut Fuel::new(100_000))
        .unwrap();
    let vh = HsInterp::new(&hs)
        .run(&prog, &mut Fuel::new(1_000_000))
        .unwrap();
    // Finite: both directed edges. QLhs: their single class.
    assert_eq!(vf.len(), 2);
    assert_eq!(vh.len(), 1);
    // Every finite tuple is equivalent (within its copy) to the class
    // representative — map (0,1) ↦ encoded copy-0 pair.
    let g = ComponentGraph::new(vec![sym_pair()]);
    for t in &vf.tuples {
        let enc: Tuple = t
            .elems()
            .iter()
            .map(|e| {
                g.encode(recdb_hsdb::Coords {
                    ty: 0,
                    copy: 0,
                    node: e.value() as usize,
                })
            })
            .collect();
        assert!(
            vh.tuples.iter().any(|rep| hs.equivalent(rep, &enc)),
            "finite answer {t:?} not covered by a QLhs class"
        );
    }
}

#[test]
fn finite_as_db_round_trips_queries() {
    let fin = sym_pair();
    let db = finite_as_db(&fin);
    for t in [tuple![0, 1], tuple![1, 1]] {
        assert_eq!(db.query(0, t.elems()), fin.contains(0, &t));
    }
}

#[test]
fn ql_dialect_boundaries_are_enforced_everywhere() {
    let fin = sym_pair();
    let hs = infinite_clique();
    let singleton = parse_program("while single(Y1) { Y1 := up(Y1); }").unwrap();
    let finite_test = parse_program("while finite(Y1) { Y1 := !Y1; }").unwrap();
    // QL (finite): rejects both extensions.
    assert!(FinInterp::new(&fin)
        .run(&singleton, &mut Fuel::new(1000))
        .is_err());
    assert!(FinInterp::new(&fin)
        .run(&finite_test, &mut Fuel::new(1000))
        .is_err());
    // QLhs: accepts |Y|=1, rejects |Y|<∞.
    let mut hsi = HsInterp::new(&hs);
    assert!(hsi
        .run(
            &parse_program("Y1 := down(E); while single(Y1) { Y1 := up(Y1); }").unwrap(),
            &mut Fuel::new(100_000)
        )
        .is_ok());
    assert!(HsInterp::new(&hs)
        .run(&finite_test, &mut Fuel::new(1000))
        .is_err());
}

#[test]
fn paper_example_swap_intersection_across_formalisms() {
    // R1 ∩ R1~ (symmetric edges) on the §3.1 example: QLhs answer has
    // exactly the symmetric class; verify against the oracle.
    let hs = paper_example_graph();
    let v = HsInterp::new(&hs)
        .run(
            &parse_program("Y1 := R1 & swap(R1);").unwrap(),
            &mut Fuel::new(1_000_000),
        )
        .unwrap();
    assert_eq!(v.len(), 1);
    let rep = v.tuples.iter().next().unwrap();
    let db = hs.database();
    assert!(db.query(0, rep.elems()) && db.query(0, &[rep[1], rep[0]]));
}
