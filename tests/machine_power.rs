//! Machine-power integration: the Theorem 3.1 counter simulation is
//! faithful across databases, and the §1 halting relation behaves as
//! the non-closure argument requires.

use recdb_core::{Fuel, RecursiveRelation};
use recdb_hsdb::{infinite_clique, paper_example_graph, unary_cells, CellSize};
use recdb_qlhs::{compile_counter, HsInterp, Val};
use recdb_turing::{
    decode_program, encode_program, halts_within, projection_search, Asm, CounterProgram, Instr,
};

/// gcd by repeated subtraction — a nontrivial pure counter program.
fn gcd_program() -> CounterProgram {
    // r0, r1 hold the inputs; loop: if r0==0 halt (result r1);
    // if r1==0 halt (result r0 — move to r1 first);
    // if r0 >= r1 … subtraction-based Euclid is long; use the simpler
    // "subtract the smaller from the larger" via destructive compare:
    // copy r0,r1 to r2,r3; decrement both until one hits zero.
    Asm::new()
        .label("loop")
        .jz(0, "done_r1") // gcd(0, y) = y
        .jz(1, "done_r0") // gcd(x, 0) = x
        .instr(Instr::Copy { src: 0, dst: 2 })
        .instr(Instr::Copy { src: 1, dst: 3 })
        .label("cmp")
        .jz(2, "r0_smaller") // r0 ≤ r1: r1 -= r0
        .jz(3, "r1_smaller") // r1 < r0: r0 -= r1
        .instr(Instr::Dec(2))
        .instr(Instr::Dec(3))
        .jmp("cmp")
        .label("r0_smaller")
        // r1 -= r0 (by copy: r1 = r3 left-over after r0 decrements)
        .instr(Instr::Copy { src: 3, dst: 1 })
        .jmp("loop")
        .label("r1_smaller")
        .instr(Instr::Copy { src: 2, dst: 0 })
        .jmp("loop")
        .label("done_r1")
        .instr(Instr::Copy { src: 1, dst: 0 })
        .instr(Instr::Halt(true))
        .label("done_r0")
        .instr(Instr::Halt(true))
        .assemble()
}

#[test]
fn native_gcd_is_correct() {
    let p = gcd_program();
    for (a, b, g) in [(6, 4, 2), (9, 3, 3), (5, 7, 1), (0, 4, 4), (4, 0, 4)] {
        let out = p.run_pure(&[a, b], &mut Fuel::new(100_000)).unwrap();
        assert_eq!(out.registers[0], g, "gcd({a},{b})");
    }
}

#[test]
fn compiled_gcd_agrees_with_native_on_multiple_databases() {
    // Theorem 3.1's fidelity AND genericity: the compiled QL program
    // computes the same number (as a rank) regardless of which
    // hs-r-db it runs over.
    let p = gcd_program();
    let inputs = [(4u64, 2u64), (3, 2)];
    for (a, b) in inputs {
        let native = p
            .run_pure(&[a, b], &mut Fuel::new(100_000))
            .unwrap()
            .registers[0];
        let cc = compile_counter(&p, &[a, b]).unwrap();
        // Note: the random structures are excluded — their BIT-coded
        // characteristic trees are only practical to depth ≈ 3, while
        // gcd registers reach rank 4. The component graph's tree stays
        // cheap at any depth.
        for hs in [
            infinite_clique(),
            unary_cells(vec![CellSize::Infinite]),
            paper_example_graph(),
        ] {
            let mut interp = HsInterp::new(&hs);
            let mut env: Vec<Val> = Vec::new();
            interp
                .exec(&cc.prog, &mut env, &mut Fuel::new(20_000_000))
                .expect("compiled gcd runs");
            assert_eq!(
                env[cc.reg_var(0)].rank as u64,
                native,
                "gcd({a},{b}) on {:?}",
                hs.database().name()
            );
        }
    }
}

#[test]
fn halting_relation_projection_is_only_semi_decidable() {
    // The §1 argument, executably: R(x,y,z) is decidable for every
    // triple, but the projection ∃x R(x,y,z) can only be *searched* —
    // and for diverging machines every finite search fails.
    let rel = recdb_turing::step_bounded_halting_relation();
    // A halting machine: countdown.
    let halting = encode_program(
        &Asm::new()
            .label("l")
            .jz(0, "end")
            .instr(Instr::Dec(0))
            .jmp("l")
            .label("end")
            .instr(Instr::Halt(true))
            .assemble(),
    )
    .unwrap();
    // A diverging machine.
    let diverging = encode_program(&CounterProgram {
        code: vec![Instr::Jmp(0)],
    })
    .unwrap();
    // R is decided instantly on any triple:
    use recdb_core::Elem;
    assert!(rel.contains(&[Elem(100), Elem(halting), Elem(7)]));
    assert!(!rel.contains(&[Elem(2), Elem(halting), Elem(7)]));
    assert!(!rel.contains(&[Elem(1000), Elem(diverging), Elem(0)]));
    // The projection: search succeeds for the halting machine…
    assert!(projection_search(halting, 7, 100).is_some());
    // …and no finite bound certifies the diverging one.
    for bound in [10, 100, 1000] {
        assert_eq!(projection_search(diverging, 0, bound), None);
    }
}

#[test]
fn godel_numbering_is_total_and_consistent() {
    // Every y is a machine; encode∘decode is identity on the image.
    for y in 0..100u64 {
        let p = decode_program(y);
        if let Some(code) = encode_program(&p) {
            assert_eq!(decode_program(code), p);
        }
        // halts_within is total.
        let _ = halts_within(20, y, 1);
    }
}

#[test]
fn compiled_program_runs_identically_under_reruns() {
    // Determinism check of the whole QLhs stack.
    let p = gcd_program();
    let cc = compile_counter(&p, &[3, 2]).unwrap();
    let hs = infinite_clique();
    let mut results = Vec::new();
    for _ in 0..2 {
        let mut interp = HsInterp::new(&hs);
        let mut env: Vec<Val> = Vec::new();
        interp
            .exec(&cc.prog, &mut env, &mut Fuel::new(20_000_000))
            .unwrap();
        results.push(env[cc.reg_var(0)].clone());
    }
    assert_eq!(results[0], results[1]);
}
