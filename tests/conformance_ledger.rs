//! The theorem ledger as an integration test: every registered check
//! must PASS (or report an explicit SKIP reason) under the fixed CI
//! seed, and the registry must keep covering the whole DESIGN.md §1
//! results table.
//!
//! `cargo test --features parallel` runs the same ledger through the
//! threaded refinement pipeline; the acceptance bar is identical
//! statuses either way (see also `scripts/conformance.sh`, which diffs
//! the two JSON reports).

use recdb_conformance::{checks, run_check, run_ledger, CheckStatus, DEFAULT_SEED};
use std::collections::BTreeSet;

#[test]
fn every_ledger_check_passes_under_the_fixed_seed() {
    let report = run_ledger(DEFAULT_SEED, None);
    let mut failures = Vec::new();
    for o in &report.outcomes {
        if let CheckStatus::Fail(msg) = &o.status {
            failures.push(format!("{} (seed {:#x}): {msg}", o.id, o.seed));
        }
    }
    assert!(
        failures.is_empty(),
        "ledger failures:\n{}",
        failures.join("\n")
    );
    let (pass, _, skipped) = report.counts();
    assert!(
        pass >= 12,
        "at least 12 checks must run and pass, got {pass}"
    );
    assert_eq!(skipped, 0, "no check should skip under the default seed");
}

#[test]
fn ledger_covers_every_design_result_row() {
    let rows = [
        "T2.1",
        "P2.2",
        "P2.4-2.5",
        "P3.1",
        "P3.2",
        "P3.3-3.6",
        "P3.7-C3.3",
        "T3.1",
        "C3.1",
        "P4.1-4.3",
        "T5.1",
        "T6.1",
        "P6.1-T6.2",
        "T6.3",
    ];
    let defs = checks::ledger();
    let ids: BTreeSet<&str> = defs.iter().map(|d| d.id).collect();
    assert_eq!(ids.len(), defs.len(), "duplicate check ids");
    for row in rows {
        assert!(ids.contains(row), "result row {row} has no ledger check");
    }
}

#[test]
fn metamorphic_checks_cover_enough_families() {
    // The acceptance bar: P3.7 identity and permutation-genericity on
    // at least 3 database families each.
    for id in ["META-P3.7", "META-GENERICITY"] {
        let def = checks::ledger()
            .into_iter()
            .find(|d| d.id == id)
            .unwrap_or_else(|| panic!("{id} missing"));
        let outcome = run_check(&def, DEFAULT_SEED);
        assert_eq!(
            outcome.status,
            CheckStatus::Pass,
            "{id}: {:?}",
            outcome.status
        );
        assert!(
            outcome.families.len() >= 3,
            "{id} must exercise ≥3 families, got {:?}",
            outcome.families
        );
    }
}

#[test]
fn outcomes_are_reproducible_for_a_given_seed() {
    let a = run_ledger(0xfeed, Some("T2.1"));
    let b = run_ledger(0xfeed, Some("T2.1"));
    assert_eq!(a.outcomes.len(), 1);
    assert_eq!(a.outcomes[0].seed, b.outcomes[0].seed);
    assert_eq!(a.outcomes[0].status, b.outcomes[0].status);
    assert_eq!(a.outcomes[0].families, b.outcomes[0].families);
}
