//! Metrics-invariance property suite (ISSUE 3, satellite 1): the
//! observability layer is a pure side channel. Every instrumented
//! entry point — `v_n_r`, `find_r0`, `partition_by_local_iso`, the
//! QLhs `HsInterp`, the semi-naive delta engine, and the incremental
//! refinement caches — must return bit-identical results with a
//! recorder installed, with none installed, and after uninstalling one
//! again.
//!
//! Compiling the suite with `--features parallel` routes the same
//! assertions through the threaded partition pipeline, so the ledger
//! seed exercises both schedules:
//!
//! ```text
//! cargo test -p recdb-suite --test metrics_invariance
//! cargo test -p recdb-suite --test metrics_invariance --features parallel
//! ```
//!
//! Tests in this binary share the process-global recorder slot and so
//! serialize on a local lock.

use recdb_conformance::gen::{random_graph_db, random_tuples};
use recdb_core::{fnv1a, FiniteStructure, Fuel, SplitMix64};
use recdb_hsdb::{
    find_r0, infinite_clique, paper_example_graph, partition_by_local_iso, rado_graph, unary_cells,
    v_n_r, CellSize, HsDatabase, IncrementalPartition, VnrCache,
};
use recdb_obs::InMemoryRecorder;
use recdb_qlhs::{FinInterp, HsInterp, Prog, Term, Val};
use std::sync::{Mutex, MutexGuard};

/// Fixed ledger seed (`recdb_conformance::DEFAULT_SEED`).
const SEED: u64 = 0x5ecd_eb0a;

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn rng_for(test: &str) -> SplitMix64 {
    SplitMix64::seed_from_u64(fnv1a(test) ^ SEED)
}

/// Zoo members paired with the deepest tree level that is practical to
/// enumerate (the Rado graph's BIT coding is shallow-only — see
/// `FamilyInfo::practical_depth` in the hsdb catalog).
fn zoo() -> Vec<(HsDatabase, usize)> {
    vec![
        (infinite_clique(), usize::MAX),
        (paper_example_graph(), usize::MAX),
        (
            unary_cells(vec![CellSize::Infinite, CellSize::Infinite]),
            usize::MAX,
        ),
        (rado_graph(), 3),
    ]
}

/// Runs `f` three ways — bare, with an installed recorder, bare again —
/// and asserts all three results are identical. Returns the bare one.
fn invariant_under_recorder<R: PartialEq + std::fmt::Debug>(
    what: &str,
    mut f: impl FnMut() -> R,
) -> R {
    let before = f();
    recdb_obs::install(InMemoryRecorder::shared());
    let during = f();
    recdb_obs::uninstall();
    let after = f();
    assert_eq!(
        before, during,
        "{what}: recorder install changed the result"
    );
    assert_eq!(before, after, "{what}: recorder uninstall left residue");
    before
}

/// `v_n_r` over the zoo at the (n, r) grid the conformance ledger
/// uses: identical partitions (block order included) recorder on/off.
#[test]
fn v_n_r_invariant_on_zoo() {
    let _g = serial();
    for (hs, depth) in zoo() {
        let name = hs.database().name().to_string();
        for n in 1..=2 {
            for r in 0..=2 {
                if n + r > depth {
                    continue;
                }
                invariant_under_recorder(&format!("v_n_r({name}, {n}, {r})"), || {
                    v_n_r(&hs, n, r).expect("deterministic tree")
                });
            }
        }
    }
}

/// `find_r0` returns the same (r₀, trajectory) pair recorder on/off.
#[test]
fn find_r0_invariant_on_zoo() {
    let _g = serial();
    for (hs, depth) in zoo() {
        let name = hs.database().name().to_string();
        let max_r = 3.min(depth.saturating_sub(1));
        invariant_under_recorder(&format!("find_r0({name})"), || {
            find_r0(&hs, 1, max_r).expect("deterministic tree")
        });
    }
}

/// The bucketed partition on seeded random graph databases (the same
/// generator family the conformance ledger draws from) is identical
/// recorder on/off — covering inputs where fingerprint buckets do
/// split and the pairwise-fallback path runs under instrumentation.
#[test]
fn partition_invariant_on_seeded_random_dbs() {
    let _g = serial();
    let mut rng = rng_for("partition_invariant_on_seeded_random_dbs");
    for case in 0..12 {
        let db = random_graph_db(&mut rng, &format!("inv-{case}"));
        let tuples = random_tuples(&mut rng, 24, 2, 10);
        invariant_under_recorder(&format!("partition(case {case})"), || {
            partition_by_local_iso(&db, &tuples)
        });
    }
}

/// `HsInterp::run` on seeded rank-2 term programs produces identical
/// values recorder on/off — the canonical-rep cache counters must not
/// leak into evaluation.
#[test]
fn hs_interp_invariant_on_seeded_terms() {
    let _g = serial();
    let mut rng = rng_for("hs_interp_invariant_on_seeded_terms");
    // Graph-schema zoo members only (unary_cells has no binary R1).
    for hs in [infinite_clique(), paper_example_graph(), rado_graph()] {
        let name = hs.database().name().to_string();
        for case in 0..8 {
            let t = rank2_term(&mut rng, 3);
            let prog = Prog::assign(0, t);
            invariant_under_recorder(&format!("hs_interp({name}, case {case})"), || {
                let v: Val = HsInterp::new(&hs)
                    .run(&prog, &mut Fuel::new(5_000_000))
                    .expect("rank-2 terms are total on graph schemas");
                v
            });
        }
    }
}

/// The semi-naive delta engine is a pure evaluation strategy: a
/// reachability fixpoint through `FinInterp` returns the identical
/// `Val` recorder on/off, with the delta engine both enabled (the
/// `fixpoint.delta.*` histograms fire) and disabled (the from-scratch
/// path), and the two engines agree with each other.
#[test]
fn seminaive_fixpoint_invariant_under_recorder() {
    let _g = serial();
    const LAST: u64 = 23;
    let st = FiniteStructure::undirected_graph(0..=LAST, (0..LAST).map(|i| (i, i + 1)));
    let union = |v: usize, s: Term| Prog::assign(v, Term::Var(v).union(s));
    let succ = Term::Var(1).up().and(Term::Rel(0)).down();
    let prog = Prog::seq([
        Prog::assign(1, Term::Const(0)),
        Prog::assign(2, Term::Const(0).and(Term::Const(LAST))),
        Prog::WhileEmpty(
            2,
            Box::new(Prog::seq([
                union(1, succ),
                union(2, Term::Var(1).and(Term::Const(LAST))),
            ])),
        ),
    ]);
    let run = |seminaive: bool| {
        invariant_under_recorder(&format!("fin_interp(seminaive={seminaive})"), || {
            let mut i = FinInterp::new(&st);
            i.set_seminaive(seminaive);
            i.run(&prog, &mut Fuel::new(10_000_000))
                .expect("path reachability terminates")
        })
    };
    assert_eq!(run(true), run(false), "delta engine diverged from scratch");
}

/// `IncrementalPartition` and `VnrCache` produce identical partitions
/// recorder on/off — the `refine.incr.*` counters and the reproject
/// span must not leak into the maintained state.
#[test]
fn incremental_refinement_invariant_under_recorder() {
    let _g = serial();
    let mut rng = rng_for("incremental_refinement_invariant_under_recorder");
    let db = random_graph_db(&mut rng, "incr-inv");
    let tuples = random_tuples(&mut rng, 24, 2, 10);
    invariant_under_recorder("incremental_partition", || {
        let mut part = IncrementalPartition::new(&db);
        for t in &tuples {
            part.insert(t.clone());
        }
        part.blocks().clone()
    });
    let hs = paper_example_graph();
    let nodes = hs.t_n(1);
    invariant_under_recorder("vnr_cache(paper_example, r=1)", || {
        let mut cache = VnrCache::new(&hs, 1);
        for u in &nodes {
            cache.insert(u.clone());
        }
        cache.partition().expect("tree covers depth 1")
    });
}

// --- serving layer (ISSUE 7, satellite 3) ---

/// A fixed, fully deterministic request burst against a live server,
/// dispatched *sequentially* (concurrency would make the cache
/// hit/miss labels schedule-dependent). The mix touches every
/// admission verdict, the cache hit/miss/bypass paths, a fuel
/// preemption, a runtime error, the formula endpoint, a malformed
/// request, a protocol-shape error, and a mid-request connection drop
/// — every `serve.*` metric except the two that only fire on bugs
/// (`serve.panics`, `serve.soundness_violations`).
fn serve_burst(addr: std::net::SocketAddr) -> Vec<(u16, String)> {
    use recdb_serve::{post_once, Conn};
    let finite = |prog: &str, edges: &str, extra: &str| {
        format!(
            r#"{{"program":"{prog}","db":{{"kind":"finite","universe":[0,1,2,3,4],"relations":[{{"arity":2,"tuples":[{edges}]}}]}}{extra}}}"#
        )
    };
    let queries = [
        // Exact admission: miss, identical hit, orbit-relabeled hit.
        finite("Y1 := R1;", "[0,1],[1,2]", ""),
        finite("Y1 := R1;", "[0,1],[1,2]", ""),
        finite("Y1 := R1;", "[4,1],[1,2]", ""),
        // Canonicalization bypass: > 6 free elements.
        r#"{"program":"Y1 := R1;","db":{"kind":"finite","universe":[0,1,2,3,4,5,6,7,8,9],"relations":[{"arity":2,"tuples":[[0,1]]}]}}"#.to_string(),
        // Fuel mode, completing.
        finite(
            "Y2 := R1; while empty(Y3) { Y3 := Y2; }",
            "[0,1]",
            ",\"fuel\":10000",
        ),
        // Fuel mode, exhausting (R2 empty at runtime, opaque statically).
        r#"{"program":"while empty(Y3) { Y3 := R2; }","db":{"kind":"finite","universe":[0,1],"relations":[{"arity":2,"tuples":[[0,1]]},{"arity":2,"tuples":[]}]},"fuel":300}"#.to_string(),
        // Rejections: proved divergence, dialect unsafety.
        finite("while empty(Y2) { Y3 := E; }", "[0,1]", ""),
        finite("while single(Y1) { Y1 := E; }", "[0,1]", ""),
        // Protocol-shape error (valid HTTP, invalid JSON).
        "{not json".to_string(),
        // Runtime error: `up` on a co-finite value passes admission.
        r#"{"program":"Y1 := up(R1);","db":{"kind":"fcf","relations":[{"cofinite":{"arity":1,"exceptions":[[2]]}}]}}"#.to_string(),
    ];
    let mut out = Vec::new();
    for body in &queries {
        let r = post_once(addr, "/v1/query", body).expect("query round trip");
        out.push((r.status, r.body));
    }
    // The RA endpoint: one accepted compile-and-run, one RA05
    // rejection — `serve.ra.queries` and `serve.ra.rejections` fire.
    for q in ["project #y (E)", "E union not (E)"] {
        let body = format!(
            r#"{{"query":"{q}","schema":"E(x, y)","db":{{"kind":"finite","universe":[0,1,2],"relations":[{{"arity":2,"tuples":[[0,1]]}}]}},"no_cache":true}}"#
        );
        let r = post_once(addr, "/v1/ra", &body).expect("ra round trip");
        out.push((r.status, r.body));
    }
    let r = post_once(
        addr,
        "/v1/formula",
        r#"{"formula":"{(x,y) | R1(x,y)}","db":{"kind":"finite","universe":[0,1,2],"relations":[{"arity":2,"tuples":[[0,1]]}]},"tuples":[[0,1],[1,0]]}"#,
    )
    .expect("formula round trip");
    out.push((r.status, r.body));
    // Malformed HTTP (unsupported version) — 400, connection closed.
    let mut c = Conn::connect(addr).expect("connect");
    c.send_raw(b"GET /v1/health HTTP/9\r\n\r\n").expect("send");
    let r = c.read_response().expect("read 400");
    out.push((r.status, r.body));
    // Mid-request drop: half a head, then hang up.
    {
        let mut c = Conn::connect(addr).expect("connect");
        c.send_raw(b"POST /v1/query HTTP/1.1\r\ncontent-le")
            .expect("send partial");
    }
    // A trailing request — accepts are FIFO, so once this response is
    // back, the dropped connection has passed the accept loop and is
    // queued for a worker; shutdown's join then guarantees its
    // `serve.conn_drops` tick lands before any snapshot.
    let mut c = Conn::connect(addr).expect("connect");
    let r = c.request("GET", "/v1/health", "", true).expect("health");
    out.push((r.status, r.body));
    out
}

fn serve_server(workers: usize) -> recdb_serve::Server {
    recdb_serve::Server::start(recdb_serve::ServeConfig {
        workers,
        verify_hits: true,
        read_timeout_ms: 200,
        ..recdb_serve::ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

/// The serving layer's responses are bit-identical with a recorder
/// installed, with none, and after uninstalling one — the request
/// spans and admission counters are a pure side channel.
#[test]
fn serve_burst_invariant_under_recorder() {
    let _g = serial();
    invariant_under_recorder("serve_burst", || {
        let s = serve_server(2);
        let out = serve_burst(s.addr());
        s.shutdown();
        out
    });
}

/// A serial worker and a sharded worker pool emit the same metric
/// *key set* over the fixed burst (values legitimately differ across
/// schedules; which metrics exist must not).
#[test]
fn serve_metric_key_sets_match_across_worker_shards() {
    let _g = serial();
    let run = |workers: usize| {
        let rec = InMemoryRecorder::shared();
        recdb_obs::install(rec.clone());
        let s = serve_server(workers);
        serve_burst(s.addr());
        s.shutdown(); // joins workers: every metric is recorded by now
        recdb_obs::uninstall();
        assert!(
            rec.counter_value("serve.cache.hits") > 0,
            "burst must exercise the hit path ({workers} workers)"
        );
        assert!(
            rec.counter_value("serve.cache.misses") > 0,
            "burst must exercise the miss path ({workers} workers)"
        );
        assert_eq!(
            rec.counter_value("serve.soundness_violations"),
            0,
            "burst must stay violation-free ({workers} workers)"
        );
        rec.snapshot().keys()
    };
    assert_eq!(
        run(1),
        run(4),
        "metric key sets diverged across worker configurations"
    );
}

// --- cost analysis & RA rewriter (ISSUE 9, satellite 3) ---

/// `analyze_full`'s cost pass and the RA optimizer emit
/// `analyze.cost.*` / `ra.rewrite.*` counters but must return
/// bit-identical verdicts, statement bounds, diagnostics, and chosen
/// plans recorder on/off.
#[test]
fn cost_analysis_and_rewriter_invariant_under_recorder() {
    let _g = serial();
    use recdb_conformance::gen::{random_prog, random_ra_program, ProgShape, RaShape};
    use recdb_qlhs::Dialect;
    let mut rng = rng_for("cost_analysis_and_rewriter_invariant_under_recorder");
    let schema = recdb_core::Schema::new(vec![2, 2]);
    let shape = ProgShape {
        rels: 2,
        vars: 3,
        allow_singleton: false,
        allow_finite: false,
        consts: 3,
        union_bias: true,
    };
    let progs: Vec<_> = (0..10)
        .map(|_| random_prog(&mut rng, 2, 3, &shape))
        .collect();
    invariant_under_recorder("cost_analysis", || {
        progs
            .iter()
            .map(|p| {
                let full = recdb_analyze::analyze_full(p, &schema, Dialect::Ql);
                (
                    full.cost.verdict.to_string(),
                    full.cost
                        .stmts
                        .iter()
                        .map(|s| (s.path.clone(), s.executions, format!("{:?}", s.work)))
                        .collect::<Vec<_>>(),
                    full.cost.diagnostics.len(),
                )
            })
            .collect::<Vec<_>>()
    });
    let ra_schema = recdb_ra::RaSchema::sanitized([("E", vec!["x", "y"])]);
    let ra_shape = RaShape {
        depth: 3,
        views: 2,
        consts: 3,
        free_complement: false,
    };
    let ra_progs: Vec<_> = (0..10)
        .map(|_| random_ra_program(&mut rng, &ra_schema, &ra_shape))
        .collect();
    invariant_under_recorder("ra_rewriter", || {
        ra_progs
            .iter()
            .map(|p| {
                let r =
                    recdb_ra::optimize_program(p, &ra_schema).expect("generator programs optimize");
                (
                    r.program.to_string(),
                    r.changed,
                    r.cost_chosen,
                    r.cost_original,
                )
            })
            .collect::<Vec<_>>()
    });
}

// --- relational-algebra frontend (ISSUE 8, satellite 4) ---

/// RA compile + evaluate burst: the `ra.compile.*`, `ra.eval.*`, and
/// `ra.safety.*` instruments are a pure side channel. A fixed seeded
/// mix of validator-accepted and RA05-rejected programs is compiled,
/// directly evaluated, and (when accepted) run through `FinInterp` —
/// all outcomes bit-identical recorder on/off.
#[test]
fn ra_compile_eval_burst_invariant_under_recorder() {
    let _g = serial();
    use recdb_conformance::gen::{random_ra_program, random_ra_schema, random_tuples, RaShape};
    use recdb_core::Elem;
    use std::collections::BTreeSet;
    let mut rng = rng_for("ra_compile_eval_burst_invariant_under_recorder");
    let shape = RaShape {
        depth: 3,
        views: 2,
        consts: 3,
        free_complement: true,
    };
    // Pre-draw the burst so all three recorder configurations replay
    // the identical programs and slices.
    let mut cases = Vec::new();
    for _ in 0..10 {
        let schema = random_ra_schema(&mut rng);
        let universe: Vec<Elem> = (0..4).map(Elem).collect();
        let rels: Vec<BTreeSet<recdb_core::Tuple>> = (0..schema.rels().len())
            .map(|i| {
                random_tuples(&mut rng, 6, schema.attrs(i).len(), 4)
                    .into_iter()
                    .collect()
            })
            .collect();
        let st = FiniteStructure::new(schema.core_schema(), universe, rels);
        let p = random_ra_program(&mut rng, &schema, &shape);
        cases.push((schema, st, p));
    }
    invariant_under_recorder("ra_burst", || {
        cases
            .iter()
            .map(|(schema, st, p)| {
                let direct = recdb_ra::eval_program(p, schema, st, st.universe())
                    .expect("generator programs are well-typed");
                let compiled = recdb_ra::compile_program(p, schema);
                let run = compiled.as_ref().ok().map(|c| {
                    FinInterp::new(st)
                        .run(&c.prog, &mut Fuel::new(1_000_000))
                        .expect("straight-line programs are total")
                });
                (
                    direct.tuples,
                    compiled
                        .map(|c| (c.prog.to_string(), c.attrs))
                        .map_err(|e| e.to_string()),
                    run,
                )
            })
            .collect::<Vec<_>>()
    });
}

// --- bytecode VM (ISSUE 10, satellite 4) ---

/// The register VM behind the serve hot loop is a pure execution
/// strategy: the fixed deterministic burst returns byte-identical
/// responses with the VM enabled (the `serve.vm.*` and `vm.*`
/// instruments fire) and disabled (tree-walker fallback), each
/// measured recorder on/off, and the two backends agree with each
/// other.
#[test]
fn vm_burst_invariant_under_recorder_and_backend() {
    let _g = serial();
    let run = |vm: bool| {
        invariant_under_recorder(&format!("vm_burst(vm={vm})"), || {
            let s = recdb_serve::Server::start(recdb_serve::ServeConfig {
                workers: 2,
                verify_hits: true,
                read_timeout_ms: 200,
                vm,
                ..recdb_serve::ServeConfig::default()
            })
            .expect("bind ephemeral port");
            let out = serve_burst(s.addr());
            s.shutdown();
            out
        })
    };
    assert_eq!(
        run(true),
        run(false),
        "register VM diverged from the tree-walkers"
    );
}

/// Bytecode compilation, verification, and execution emit `vm.*`
/// counters but must return bit-identical obstructions, bytecode, and
/// values recorder on/off.
#[test]
fn vm_compile_exec_invariant_under_recorder() {
    let _g = serial();
    use recdb_conformance::gen::{random_finite_graph, random_prog, ProgShape};
    use recdb_qlhs::Dialect;
    use recdb_vm::{compile, exec_plain, verify, LowerOpts};
    let mut rng = rng_for("vm_compile_exec_invariant_under_recorder");
    let shape = ProgShape {
        rels: 1,
        vars: 3,
        allow_singleton: false,
        allow_finite: false,
        consts: 3,
        union_bias: true,
    };
    let st = random_finite_graph(&mut rng, 4);
    let progs: Vec<_> = (0..12)
        .map(|_| random_prog(&mut rng, 2, 3, &shape))
        .collect();
    invariant_under_recorder("vm_compile_exec", || {
        progs
            .iter()
            .map(|p| {
                let full = recdb_analyze::analyze_full(p, st.schema(), Dialect::Ql);
                let vm = match compile(
                    p,
                    st.schema(),
                    Dialect::Ql,
                    &full.termination,
                    &LowerOpts::default(),
                ) {
                    Err(o) => return Err(format!("{o}")),
                    Ok(vm) => vm,
                };
                verify(
                    &vm,
                    p,
                    st.schema(),
                    Dialect::Ql,
                    &full.termination,
                    Some(&full.cost.verdict),
                )
                .expect("verifier accepts the compiler's output");
                let mut b = FinInterp::new(&st);
                let val = exec_plain(&mut b, &vm, &mut Fuel::new(2_000)).map_err(|e| e.to_string());
                Ok((vm.dump(), val))
            })
            .collect::<Vec<_>>()
    });
}

/// Random rank-preserving term over {E, R1, ¬, swap, ∧} — mirrors the
/// qlhs property-test generator.
fn rank2_term(rng: &mut SplitMix64, depth: usize) -> Term {
    if depth == 0 || rng.gen_usize(4) == 0 {
        return if rng.gen_bool() {
            Term::E
        } else {
            Term::Rel(0)
        };
    }
    match rng.gen_usize(3) {
        0 => rank2_term(rng, depth - 1).not(),
        1 => rank2_term(rng, depth - 1).swap(),
        _ => rank2_term(rng, depth - 1).and(rank2_term(rng, depth - 1)),
    }
}
