//! Genericity end-to-end: structured iso-pair sampling exposes exactly
//! the non-generic queries, across query styles (class unions, L⁻,
//! L⁻ₙ, machine queries).

use recdb_core::{
    enumerate_classes, genericity_disagreements, iso_pairs, tuple, ClassUnionQuery, RQuery, Schema,
    Tuple,
};
use recdb_logic::{LMinusNQuery, LMinusQuery};
use recdb_turing::{Asm, Instr, MachineQuery};

fn graph_schema() -> Schema {
    Schema::with_names(&["E"], &[2])
}

#[test]
fn lminus_queries_are_generic_on_all_pairs() {
    let schema = graph_schema();
    let q = LMinusQuery::parse("{ (x, y) | E(x, y) & !E(y, x) }", &schema).unwrap();
    let bad = genericity_disagreements(&schema, 2, 1, |db, t| q.eval(db, t).is_member());
    assert!(bad.is_empty());
}

#[test]
fn machine_queries_with_pure_oracle_access_are_generic() {
    let p = Asm::new()
        .oracle(0, vec![0, 1], "y", "n")
        .label("y")
        .instr(Instr::Halt(true))
        .label("n")
        .instr(Instr::Halt(false))
        .assemble();
    let schema = graph_schema();
    let q = MachineQuery::counter(p, 2, 10_000);
    let bad = genericity_disagreements(&schema, 2, 1, |db, t| {
        q.contains(db, t) == recdb_core::QueryOutcome::Defined(true)
    });
    assert!(bad.is_empty());
}

#[test]
fn machine_queries_that_forge_elements_are_exposed() {
    // Accept x iff (x, x+1) ∈ E: forging x+1 breaks genericity.
    let p = Asm::new()
        .instr(Instr::Copy { src: 0, dst: 1 })
        .instr(Instr::Inc(1))
        .oracle(0, vec![0, 1], "y", "n")
        .label("y")
        .instr(Instr::Halt(true))
        .label("n")
        .instr(Instr::Halt(false))
        .assemble();
    let q = MachineQuery::counter(p, 1, 10_000);
    // Build an explicit isomorphic pair where the forged successor
    // relationship differs: a single edge (5,6), and a copy under the
    // bijection 5↔7, 6↔9 (its edge is (7,9) — not a successor pair).
    use recdb_core::{DatabaseBuilder, Elem, FiniteRelation};
    let db = DatabaseBuilder::new("succ-edge")
        .relation("E", FiniteRelation::edges([(5, 6)]))
        .build();
    let swap = |e: Elem| match e.value() {
        5 => Elem(7),
        7 => Elem(5),
        6 => Elem(9),
        9 => Elem(6),
        v => Elem(v),
    };
    let copy = db.isomorphic_copy("swapped", swap);
    let u = tuple![5];
    let v = tuple![7];
    assert!(recdb_core::locally_isomorphic(&db, &u, &copy, &v));
    assert_ne!(
        q.contains(&db, &u),
        q.contains(&copy, &v),
        "element-forging machine must be flagged as non-generic"
    );
}

#[test]
fn lminus_n_is_generic_only_in_the_restricted_sense() {
    // L⁻ₙ names constants: the same class witnessed inside {1..4} and
    // far outside gets different answers — the paper's shifted-copy
    // observation, executably.
    use recdb_core::Elem;
    let schema = graph_schema();
    let q = LMinusNQuery::parse("{ (x, y) | E(x, y) }", &schema, 4).unwrap();
    let edge_class = enumerate_classes(&schema, 2)
        .into_iter()
        .find(|c| {
            let (db, u) = c.witness(&schema);
            u[0] != u[1] && db.query(0, u.elems())
        })
        .expect("an edge class exists");
    let (db, u) = edge_class.witness(&schema);
    // In-range copy: elements 1, 2.
    let db_in = db.isomorphic_copy("in", |e| Elem(e.value().wrapping_sub(1)));
    let u_in = u.map(|e| Elem(e.value() + 1));
    // Out-of-range copy: elements 10, 11.
    let db_out = db.isomorphic_copy("out", |e| Elem(e.value().wrapping_sub(10)));
    let u_out = u.map(|e| Elem(e.value() + 10));
    assert!(recdb_core::locally_isomorphic(
        &db_in, &u_in, &db_out, &u_out
    ));
    assert!(q.eval(&db_in, &u_in).is_member());
    assert!(
        !q.eval(&db_out, &u_out).is_member(),
        "outside {{1..n}} the answer flips: not generic in the full sense"
    );
    // …but inside the range it behaves exactly like L⁻ (Prop 2.7's
    // restricted genericity).
    let plain = LMinusQuery::parse("{ (x, y) | E(x, y) }", &schema).unwrap();
    assert_eq!(
        q.eval(&db_in, &u_in).is_member(),
        plain.eval(&db_in, &u_in).is_member()
    );
}

#[test]
fn class_unions_and_their_synthesized_lminus_agree_on_pairs() {
    let schema = graph_schema();
    let classes: Vec<_> = enumerate_classes(&schema, 2)
        .into_iter()
        .step_by(3)
        .collect();
    let cu = ClassUnionQuery::new(schema.clone(), 2, classes);
    let synth = LMinusQuery::from_class_union(&cu);
    for p in iso_pairs(&schema, 2, 1) {
        for (db, t) in [&p.left, &p.right] {
            assert_eq!(cu.contains(db, t), synth.eval(db, t), "at {t:?}");
        }
    }
}

#[test]
fn the_paper_counterexample_disagrees_on_amalgamated_pairs() {
    // ∃-queries survive the *shifted-copy* pairs (shifting preserves
    // the existence of witnesses) but fail on pairs whose second side
    // deletes the witness — the amalgamation of Prop 2.3 builds those.
    use recdb_core::genericity::ExistsOtherNeighborQuery;
    use recdb_core::{amalgamate, DatabaseBuilder, FiniteRelation};
    let q = ExistsOtherNeighborQuery { search_bound: 64 };
    let r1 = DatabaseBuilder::new("R1")
        .relation("E", FiniteRelation::edges([(1, 1), (1, 2)]))
        .build();
    let r2 = DatabaseBuilder::new("R2")
        .relation("E", FiniteRelation::edges([(3, 3)]))
        .build();
    // Amalgamate at rank 2 so the ∃-witness (the edge (1,2)) survives
    // into the combined database, then compare the rank-1 prefixes:
    // both have a reflexive loop and nothing else locally, yet only
    // the u-side has an outgoing edge to another element.
    let (b3, u3, v3) = amalgamate(&r1, &tuple![1, 2], &r2, &tuple![3, 4]);
    let u_head = Tuple::from(vec![u3[0]]);
    let v_head = Tuple::from(vec![v3[0]]);
    assert!(recdb_core::locally_equivalent(&b3, &u_head, &v_head));
    let a1 = q.contains(&b3, &u_head);
    let a2 = q.contains(&b3, &v_head);
    assert_ne!(a1, a2, "the amalgam separates the ∃-query's answers");
}

#[test]
fn iso_pairs_cover_every_class_once() {
    let schema = graph_schema();
    let pairs = iso_pairs(&schema, 2, 1);
    assert_eq!(pairs.len(), enumerate_classes(&schema, 2).len());
    let mut seen = std::collections::BTreeSet::new();
    for p in &pairs {
        assert!(seen.insert(p.class.clone()), "classes must not repeat");
    }
    let _: &Tuple = &pairs[0].left.1;
}
