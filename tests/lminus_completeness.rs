//! Theorem 2.1 end-to-end: machine queries, class unions, and `L⁻`
//! expressions all define the same computable r-queries.

use recdb_core::{
    enumerate_classes, locally_isomorphic, tuple, AtomicType, ClassUnionQuery, Database,
    DatabaseBuilder, FnRelation, QueryOutcome, RQuery, Schema, Tuple,
};
use recdb_logic::LMinusQuery;
use recdb_turing::{Asm, Instr, MachineQuery};

fn graph_schema() -> Schema {
    Schema::with_names(&["E"], &[2])
}

fn sample_dbs() -> Vec<Database> {
    vec![
        DatabaseBuilder::new("clique")
            .relation("E", FnRelation::infinite_clique())
            .build(),
        DatabaseBuilder::new("line")
            .relation("E", FnRelation::infinite_line())
            .build(),
        DatabaseBuilder::new("lt")
            .relation(
                "E",
                FnRelation::new("lt", 2, |t| t[0].value() < t[1].value()),
            )
            .build(),
    ]
}

fn sample_tuples() -> Vec<Tuple> {
    vec![
        tuple![0, 1],
        tuple![1, 0],
        tuple![2, 2],
        tuple![0, 2],
        tuple![5, 9],
        tuple![7, 7],
    ]
}

/// A machine query: accept (x,y) iff E(x,y) ∧ ¬E(y,x) — strictly
/// one-directional pairs, as an oracle counter program.
fn asymmetric_edge_machine() -> MachineQuery {
    let p = Asm::new()
        .oracle(0, vec![0, 1], "fwd", "no")
        .label("fwd")
        .oracle(0, vec![1, 0], "no", "yes")
        .label("yes")
        .instr(Instr::Halt(true))
        .label("no")
        .instr(Instr::Halt(false))
        .assemble();
    MachineQuery::counter(p, 2, 10_000)
}

/// Compiles any locally generic query (given as an oracle) to its
/// class-union normal form by evaluating it on class witnesses —
/// the Prop 2.4 ⟶ Theorem 2.1 pipeline.
fn normal_form(q: &dyn RQuery, schema: &Schema, rank: usize) -> ClassUnionQuery {
    let classes: Vec<AtomicType> = enumerate_classes(schema, rank)
        .into_iter()
        .filter(|ty| {
            let (db, u) = ty.witness(schema);
            q.contains(&db, &u) == QueryOutcome::Defined(true)
        })
        .collect();
    ClassUnionQuery::new(schema.clone(), rank, classes)
}

#[test]
fn machine_query_to_lminus_round_trip() {
    let schema = graph_schema();
    let machine = asymmetric_edge_machine();
    let nf = normal_form(&machine, &schema, 2);
    let lminus = LMinusQuery::from_class_union(&nf);
    for db in sample_dbs() {
        for t in sample_tuples() {
            assert_eq!(
                machine.contains(&db, &t),
                lminus.eval(&db, &t),
                "machine vs synthesized L⁻ at {}@{t:?}",
                db.name()
            );
        }
    }
}

#[test]
fn machine_query_is_locally_generic() {
    // The machine only asks oracle questions about projections of its
    // input — so it answers identically on locally isomorphic pairs.
    let machine = asymmetric_edge_machine();
    let dbs = sample_dbs();
    for db_a in &dbs {
        for dbb in &dbs {
            for u in sample_tuples() {
                for v in sample_tuples() {
                    if locally_isomorphic(db_a, &u, dbb, &v) {
                        assert_eq!(
                            machine.contains(db_a, &u),
                            machine.contains(dbb, &v),
                            "genericity breach {u:?}/{v:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn lminus_parse_compile_synthesize_cycle() {
    let schema = graph_schema();
    let sources = [
        "{ (x, y) | E(x, y) & !E(y, x) }",
        "{ (x, y) | (E(x, y) | E(y, x)) & x != y }",
        "{ (x) | E(x, x) }",
        "{ (x, y, z) | E(x, y) & E(y, z) & !E(x, z) }",
    ];
    for src in sources {
        let q = LMinusQuery::parse(src, &schema).unwrap();
        let round = LMinusQuery::from_class_union(&q.to_class_union());
        for db in sample_dbs() {
            for t in [tuple![0, 1], tuple![1, 2, 0], tuple![3], tuple![2, 2]] {
                assert_eq!(q.eval(&db, &t), round.eval(&db, &t), "{src} at {t:?}");
            }
        }
    }
}

#[test]
fn the_papers_counterexample_is_not_expressible() {
    // Q = {x | ∃y (x≠y ∧ E(x,y))} is generic but not locally generic —
    // so NO class union (hence no L⁻ expression) matches it. Verify:
    // every rank-1 class union disagrees with Q somewhere on the
    // paper's R₁/R₂ example.
    use recdb_core::genericity::ExistsOtherNeighborQuery;
    let schema = graph_schema();
    let q = ExistsOtherNeighborQuery { search_bound: 64 };
    let r1 = DatabaseBuilder::new("R1")
        .relation("E", recdb_core::FiniteRelation::edges([(1, 1), (1, 2)]))
        .build();
    let r2 = DatabaseBuilder::new("R2")
        .relation("E", recdb_core::FiniteRelation::edges([(3, 3)]))
        .build();
    // (R1,(1)) ≅ₗ (R2,(3)) yet answers differ — so any class-union
    // query (which answers by type) must deviate from Q on one side.
    assert!(locally_isomorphic(&r1, &tuple![1], &r2, &tuple![3]));
    assert_ne!(q.contains(&r1, &tuple![1]), q.contains(&r2, &tuple![3]));
    let all = enumerate_classes(&schema, 1);
    // For every subset of classes... (2^4 subsets at rank 1) — check
    // directly that no union agrees with Q on both pairs.
    let n = all.len();
    assert!(n <= 6, "rank-1 class count small: {n}");
    for mask in 0u32..(1 << n) {
        let chosen: Vec<AtomicType> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| (mask >> i) & 1 == 1)
            .map(|(_, c)| c.clone())
            .collect();
        let cu = ClassUnionQuery::new(schema.clone(), 1, chosen);
        let agree_both = cu.contains(&r1, &tuple![1]) == q.contains(&r1, &tuple![1])
            && cu.contains(&r2, &tuple![3]) == q.contains(&r2, &tuple![3]);
        assert!(
            !agree_both,
            "mask {mask:#b} should not capture the non-locally-generic Q"
        );
    }
}

#[test]
fn undefined_queries_synthesize_to_undefined() {
    let schema = graph_schema();
    let undef = ClassUnionQuery::undefined(schema.clone());
    let l = LMinusQuery::from_class_union(&undef);
    assert!(l.is_undefined());
    for db in sample_dbs() {
        assert_eq!(l.eval(&db, &tuple![1]), QueryOutcome::Undefined);
    }
}
