#!/usr/bin/env bash
# Benchmark the Vⁿᵣ refinement pipeline and distill the medians into
# BENCH_refine.json, plus a METRICS_refine.json report of the hot-path
# counters (buckets probed, fingerprint collisions, fan-out imbalance).
#
# Modes:
#   scripts/bench_refine.sh            std-timer harness
#                                      (examples/bench_refine.rs); no
#                                      dev-dependencies — works offline
#   scripts/bench_refine.sh --bench    microbench harness (cargo bench,
#                                      refine + local_iso); medians
#                                      scraped from the harness's
#                                      `bench <label> median_ns <t>`
#                                      lines
#
# Extra args are forwarded to cargo (e.g.
# `scripts/bench_refine.sh --features parallel`).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_refine.json
METRICS_OUT=METRICS_refine.json

# Historical alias: the std harness used to be opt-in via --std and is
# now the default.
if [[ "${1:-}" == "--std" ]]; then
    shift
fi

if [[ "${1:-}" == "--bench" ]]; then
    shift
    mkdir -p target
    RAW=target/bench_refine.raw
    cargo bench -p recdb-bench --bench refine "$@" | tee "$RAW"
    cargo bench -p recdb-bench --bench local_iso "$@" | tee -a "$RAW"

    # The in-tree microbench harness prints one line per benchmark:
    #   bench <group>/<id> median_ns <t> samples <k>
    python3 - "$OUT" "$RAW" <<'PY'
import json, sys

out, raw = sys.argv[1:3]
points = []
for line in open(raw):
    parts = line.split()
    if len(parts) >= 4 and parts[0] == "bench" and parts[2] == "median_ns":
        group, _, bench = parts[1].partition("/")
        points.append(
            {"group": group, "bench": bench or group, "median_ns": int(parts[3])}
        )
if not points:
    sys.exit("no `bench ... median_ns ...` lines found in harness output")
with open(out, "w") as f:
    json.dump(
        {"schema": "BENCH_refine/v1",
         "harness": "microbench (median ns per iteration)",
         "points": points},
        f, indent=2)
    f.write("\n")
print(f"wrote {out} ({len(points)} points, microbench)")
PY
    # The bench harness doesn't install a recorder; take the metrics
    # report from the std harness on the same E7 workload.
    cargo run --release -p recdb-suite --example bench_refine "$@" -- \
        --metrics-out "$METRICS_OUT" > /dev/null
    echo "wrote $METRICS_OUT"
    exit 0
fi

cargo run --release -p recdb-suite --example bench_refine "$@" -- \
    --metrics-out "$METRICS_OUT" > "$OUT"
echo "wrote $OUT (std-timer harness) and $METRICS_OUT"
