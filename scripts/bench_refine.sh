#!/usr/bin/env bash
# Benchmark the Vⁿᵣ refinement pipeline and distill the medians into
# BENCH_refine.json (one point per benchmark/size, median ns).
#
# Modes:
#   scripts/bench_refine.sh          criterion benches (refine + local_iso),
#                                    medians scraped from target/criterion
#   scripts/bench_refine.sh --std    std-timer harness (examples/bench_refine.rs);
#                                    no dev-dependencies needed — works offline
#
# Extra args after the mode are forwarded to cargo (e.g.
# `scripts/bench_refine.sh --std --features parallel`).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_refine.json

if [[ "${1:-}" == "--std" ]]; then
    shift
    cargo run --release -p recdb-suite --example bench_refine "$@" > "$OUT"
    echo "wrote $OUT (std-timer harness)"
    exit 0
fi

cargo bench -p recdb-bench --bench refine "$@"
cargo bench -p recdb-bench --bench local_iso "$@"

# Criterion writes <group>/<bench>/new/estimates.json with the median
# point estimate in ns. Collect every estimate under the two benches'
# groups (E7/*, E3/*) into the flat BENCH_refine.json schema.
python3 - "$OUT" <<'PY'
import json, pathlib, sys

out = sys.argv[1]
points = []
root = pathlib.Path("target/criterion")
for est in sorted(root.glob("E[37]*/**/new/estimates.json")):
    rel = est.relative_to(root).parts[:-2]  # drop new/estimates.json
    # Layout is <group>/<function>[/<value>] depending on BenchmarkId use.
    group = rel[0]
    bench = "/".join(rel[1:-1]) if len(rel) > 2 else rel[1]
    size = rel[-1] if len(rel) > 2 else None
    with est.open() as f:
        median = json.load(f)["median"]["point_estimate"]
    point = {"group": group, "bench": bench, "median_ns": round(median)}
    if size is not None:
        try:
            point["size"] = int(size)
        except ValueError:
            point["bench"] = f"{bench}/{size}"
    points.append(point)

if not points:
    sys.exit("no criterion estimates found under target/criterion")

with open(out, "w") as f:
    json.dump(
        {"schema": "BENCH_refine/v1", "harness": "criterion (median point estimate)",
         "points": points},
        f, indent=2)
    f.write("\n")
print(f"wrote {out} ({len(points)} points, criterion)")
PY
