#!/usr/bin/env bash
# Run the theorem-ledger conformance harness at the fixed CI seed,
# serially and through the threaded refinement pipeline, and verify the
# two runs report identical per-check statuses. Writes CONFORMANCE.json
# (the serial run's report; `"parallel": false` distinguishes it) and a
# METRICS.json hot-path counter report per mode; the serial and
# parallel metric *key sets* must match (values legitimately differ —
# thread fan-out changes chunk counts, not which metrics exist).
#
# Usage:
#   scripts/conformance.sh                 fixed seed, both modes, diff
#   scripts/conformance.sh --seed 0xbeef   override the seed
#   scripts/conformance.sh --serial-only   skip the parallel pass
#
# No dev-dependencies needed — the conformance crate is offline-clean.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED=0x5ecdeb0a
SERIAL_ONLY=0
while [[ $# -gt 0 ]]; do
    case "$1" in
        --seed) SEED="$2"; shift 2 ;;
        --serial-only) SERIAL_ONLY=1; shift ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

OUT=CONFORMANCE.json
PAR_OUT=target/CONFORMANCE.parallel.json
METRICS=METRICS.json
PAR_METRICS=target/METRICS.parallel.json

cargo run --release -p recdb-conformance --bin conformance -- \
    --seed "$SEED" --out "$OUT" --metrics-out "$METRICS"

# The registry must stay complete: every registered check present, none
# skipped (in particular the permutation differentials — a skipped
# GENERIC-PERM would silently stop validating the genericity pass).
# The expected count is derived from the registry itself, so adding a
# check can never leave this gate stale.
EXPECTED=$(cargo run --release -q -p recdb-conformance --bin conformance -- --list | wc -l)
python3 - "$OUT" "$EXPECTED" <<'PY'
import json, sys

report = json.load(open(sys.argv[1]))
expected = int(sys.argv[2])
checks = report["checks"]
if len(checks) != expected:
    sys.exit(f"ledger regressed: {len(checks)} checks reported, registry lists {expected}")
skipped = [c["id"] for c in checks if c["status"] == "SKIPPED"]
if skipped:
    sys.exit(f"ledger checks skipped: {', '.join(skipped)}")
print(f"ledger complete: {len(checks)} checks, none skipped")
PY

if [[ "$SERIAL_ONLY" == 1 ]]; then
    echo "serial-only run complete; wrote $OUT and $METRICS"
    exit 0
fi

mkdir -p target
cargo run --release -p recdb-conformance --features parallel --bin conformance -- \
    --seed "$SEED" --out "$PAR_OUT" --metrics-out "$PAR_METRICS"

python3 - "$OUT" "$PAR_OUT" <<'PY'
import json, sys

serial, parallel = (json.load(open(p)) for p in sys.argv[1:3])
assert serial["parallel"] is False and parallel["parallel"] is True, \
    "feature flags not reflected in the reports"
key = lambda run: [(c["id"], c["status"], c["seed"]) for c in run["checks"]]
a, b = key(serial), key(parallel)
if a != b:
    for x, y in zip(a, b):
        if x != y:
            print(f"  serial {x} vs parallel {y}", file=sys.stderr)
    sys.exit("serial and parallel ledgers disagree")
print(f"serial and parallel ledgers agree ({len(a)} checks)")
PY

# Key-set diff only: values differ across schedules by design.
python3 - "$METRICS" "$PAR_METRICS" <<'PY'
import json, sys

serial, parallel = (json.load(open(p)) for p in sys.argv[1:3])
assert serial["parallel"] is False and parallel["parallel"] is True, \
    "feature flags not reflected in the metrics reports"
keys = lambda m: {f"counter:{k}" for k in m["counters"]} \
    | {f"histogram:{k}" for k in m["histograms"]}
a, b = keys(serial), keys(parallel)
if a != b:
    for k in sorted(a - b):
        print(f"  serial-only metric: {k}", file=sys.stderr)
    for k in sorted(b - a):
        print(f"  parallel-only metric: {k}", file=sys.stderr)
    sys.exit("serial and parallel metric key sets disagree")
print(f"serial and parallel metric key sets agree ({len(a)} keys)")
PY
echo "wrote $OUT, $METRICS"
