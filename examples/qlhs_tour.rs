//! A tour of QLhs (Theorem 3.1): the language, the derived operators,
//! the counter-machine power, and the completeness pipeline.
//!
//! Run with `cargo run --example qlhs_tour`.

use recdb_core::Fuel;
use recdb_hsdb::{infinite_clique, paper_example_graph};
use recdb_qlhs::{compile_counter, numeral, parse_program, theorem_3_1_pipeline, HsInterp, Val};
use recdb_turing::{Asm, Instr};

fn main() {
    // 1. The language, on the §3.1 example graph's representation.
    let hs = paper_example_graph();
    println!(
        "QLhs on the §3.1 example graph  (C₁ has {} classes)",
        hs.reps(0).len()
    );
    let prog = parse_program(
        "
        Y2 := R1 & swap(R1);   // the symmetric edge class
        Y3 := R1 & !Y2;        // the one-way edge class
        Y1 := up(Y3);          // its extension classes
        ",
    )
    .unwrap();
    let mut interp = HsInterp::new(&hs);
    let v = interp.run(&prog, &mut Fuel::new(1_000_000)).unwrap();
    println!(
        "up(one-way-edges) has {} classes of rank {}\n",
        v.len(),
        v.rank
    );

    // 2. Derived operators: numerals as ranks.
    let clique = infinite_clique();
    let mut interp = HsInterp::new(&clique);
    for n in 0..4 {
        let val = interp
            .eval_term(&numeral(n), &[], &mut Fuel::new(100_000))
            .unwrap();
        println!(
            "numeral({n}): rank {} with {} representatives",
            val.rank,
            val.len()
        );
    }

    // 3. Counter-machine power: multiply 3 × 2 inside QLhs.
    let mult = Asm::new()
        .label("outer")
        .jz(0, "done")
        .instr(Instr::Dec(0))
        .instr(Instr::Copy { src: 1, dst: 3 })
        .label("inner")
        .jz(3, "outer")
        .instr(Instr::Dec(3))
        .instr(Instr::Inc(2))
        .jmp("inner")
        .label("done")
        .instr(Instr::Halt(true))
        .assemble();
    let cc = compile_counter(&mult, &[3, 2]).unwrap();
    let mut env: Vec<Val> = Vec::new();
    HsInterp::new(&clique)
        .exec(&cc.prog, &mut env, &mut Fuel::new(50_000_000))
        .unwrap();
    println!(
        "\n3 × 2 computed by a QLhs program: rank {} (the number!)",
        env[cc.reg_var(2)].rank
    );

    // 4. The Theorem 3.1 pipeline: encode C's into integers, run an
    //    arbitrary recursive query there, decode through d.
    let reversed = theorem_3_1_pipeline(&hs, |x, _| {
        x[0].iter()
            .map(|idx| idx.iter().rev().copied().collect())
            .collect()
    });
    println!("\npipeline(reverse) = {} classes:", reversed.len());
    for rep in &reversed {
        println!(
            "  {rep}  (still an edge: {})",
            hs.database().query(0, rep.elems())
        );
    }
    // 5. Cross-check against the native swap operator.
    let native = HsInterp::new(&hs)
        .run(
            &parse_program("Y1 := swap(R1);").unwrap(),
            &mut Fuel::new(1_000_000),
        )
        .unwrap();
    println!(
        "\npipeline(reverse) == QLhs swap(R1): {}",
        reversed == native.tuples
    );
}
