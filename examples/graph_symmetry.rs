//! High symmetricity: positives, negatives, and the coloring
//! technique (§3.1), plus the `Vⁿᵣ` refinement (§3.2).
//!
//! Run with `cargo run --example graph_symmetry`.

use recdb_core::{Elem, Tuple};
use recdb_hsdb::{
    count_rank1_classes, find_r0, infinite_clique, level_sizes, line_equiv, paper_example_graph,
    stretch_hsdb, v_n_r, CandidateSource, FnCandidates,
};
use recdb_logic::{equiv_r, EfGame};
use std::sync::Arc;

fn main() {
    // Positive: the infinite clique is highly symmetric. Its class
    // counts per rank are the Bell numbers (only the equality pattern
    // matters).
    let clique = infinite_clique();
    println!(
        "clique |T¹..T⁵| = {:?}  (Bell numbers)",
        level_sizes(clique.tree(), 5)
    );

    // Negative: the two-way infinite line — the paper's canonical
    // non-example. Coloring one node (stretching) spawns one class per
    // distance: the rank-1 classes grow without bound.
    println!("\nthe infinite line, colored at node 0 (the coloring technique):");
    let eq = line_equiv();
    for window in [4u64, 8, 16, 32] {
        let stretched_eq = {
            let eq = line_equiv();
            recdb_hsdb::FnEquiv::new(move |u: &Tuple, v: &Tuple| {
                let zu = Tuple::from_values([0]).concat(u);
                let zv = Tuple::from_values([0]).concat(v);
                eq.equivalent(&zu, &zv)
            })
        };
        let elements: Vec<Elem> = (0..window).map(Elem).collect();
        println!(
            "  window {window:>3}: rank-1 classes = {}",
            count_rank1_classes(&stretched_eq, &elements)
        );
    }
    // Contrast: uncolored, everything is one class.
    let elements: Vec<Elem> = (0..32).map(Elem).collect();
    println!(
        "  uncolored line: rank-1 classes = {}",
        count_rank1_classes(eq.as_ref(), &elements)
    );

    // Stretching the clique stays bounded — Prop 3.1's positive side.
    let clique_cands: Arc<dyn CandidateSource> = Arc::new(FnCandidates::new(|x: &Tuple| {
        let mut d = x.distinct_elems();
        let fresh = (0..).map(Elem).find(|e| !d.contains(e)).expect("ℕ");
        d.push(fresh);
        d
    }));
    let stretched = stretch_hsdb(&clique, &[Elem(3)], clique_cands);
    println!(
        "\nclique stretched by one mark: |T¹| = {} (bounded forever)",
        stretched.t_n(1).len()
    );

    // EF games on the line: pairs at different distances are
    // distinguished at logarithmic rounds (Prop 3.3 ⟷ §3.2 examples).
    let line = recdb_hsdb::infinite_line_db();
    let pool: Vec<Elem> = (0..16).map(Elem).collect();
    println!("\nEF distinguishing rounds on the line (pairs by distance):");
    for (u, v) in [
        (Tuple::from_values([0, 2]), Tuple::from_values([0, 4])),
        (Tuple::from_values([0, 4]), Tuple::from_values([0, 6])),
        (Tuple::from_values([0, 6]), Tuple::from_values([0, 8])),
    ] {
        let mut game = EfGame::new(&line, &line, pool.clone(), pool.clone());
        let round = game.distinguishing_round(&u, &v, 3);
        println!("  {u} vs {v}: spoiler wins at round {round:?}");
    }
    // Equivalent pairs survive (for rounds small enough that the
    // finite move pool doesn't clip the duplicator's translated
    // responses — the line is NOT highly symmetric, so no finite pool
    // is sound at every depth; that unsoundness is itself the point of
    // restricting Prop 3.4 to characteristic trees).
    assert!(equiv_r(
        &line,
        &Tuple::from_values([0, 2]),
        &Tuple::from_values([2, 4]),
        2,
        &pool
    ));

    // The paper's example graph: rank-1 classes are locally
    // indistinguishable but split after one refinement round — the
    // Vⁿᵣ pipeline (Prop 3.7, Cor 3.3) in action.
    let ex = paper_example_graph();
    println!("\n§3.1 example graph refinement at rank 1:");
    for r in 0..=2 {
        let part = v_n_r(&ex, 1, r).expect("tree covers all levels");
        println!(
            "  V¹_{r}: {} blocks of sizes {:?}",
            part.len(),
            part.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }
    let (r0, _) = find_r0(&ex, 1, 4).expect("tree covers all levels");
    println!("  r₀ (Prop 3.6) = {r0:?}");

    // Contrast pair: the infinite star is highly symmetric (distances
    // through the hub are bounded), so coloring a leaf saturates at
    // three classes instead of growing.
    let star = recdb_hsdb::infinite_star();
    println!(
        "\ninfinite star: |T¹..T³| = {:?} — bounded, as Prop 3.1 predicts",
        level_sizes(star.tree(), 3)
    );

    // And the paper's elementary-equivalence pair: one line vs two
    // disjoint lines — non-isomorphic, yet the duplicator survives
    // shallow EF games between them (they satisfy the same small
    // sentences; full elementary equivalence is the §3.2 figure).
    let one = recdb_hsdb::infinite_line_db();
    let two = recdb_hsdb::two_lines_db();
    let mut game = EfGame::new(
        &one,
        &two,
        (0..10).map(Elem).collect::<Vec<_>>(),
        (0..20).map(Elem).collect::<Vec<_>>(),
    );
    println!(
        "one line vs two lines, duplicator survives r=1: {}",
        game.duplicator_wins(&Tuple::empty(), &Tuple::empty(), 1)
    );
}
