//! Quickstart: recursive databases and the complete language `L⁻`.
//!
//! The paper's opening example of a recursive relation is arithmetic:
//! `{(x,y,z) | z = x·y}` is an infinite but perfectly computable
//! table. We build a small arithmetic r-db, ask quantifier-free
//! queries (the *complete* language for this setting — Theorem 2.1),
//! and watch the equivalence-class machinery that powers the
//! completeness proof.
//!
//! Run with `cargo run --example quickstart`.

use recdb_core::{count_classes, tuple, AtomicType, DatabaseBuilder, FnRelation, Tuple};
use recdb_logic::LMinusQuery;

fn main() {
    // An r-db with two computable relations over ℕ:
    //   mult(x,y,z)  ⟺  z = x·y
    //   divides(x,y) ⟺  x | y
    let db = DatabaseBuilder::new("arithmetic")
        .relation("Mult", FnRelation::multiplication())
        .relation("Div", FnRelation::divides())
        .build();

    println!("database: {db:?}");

    // Membership oracles: the only sanctioned access (Def 2.4).
    println!("\noracle questions:");
    for (t, rel) in [
        (tuple![6, 7, 42], 0),
        (tuple![6, 7, 43], 0),
        (tuple![3, 12], 1),
    ] {
        println!(
            "  {} ∈ {}? {}",
            t,
            db.schema().name(rel),
            db.query(rel, t.elems())
        );
    }

    // L⁻ queries: quantifier-free first-order logic — the r-complete
    // language. "x divides y and y does not divide x" (strict divisor
    // pairs):
    let schema = db.schema().clone();
    let strict =
        LMinusQuery::parse("{ (x, y) | Div(x, y) & !Div(y, x) }", &schema).expect("well-formed L⁻");
    println!("\nstrict-divisor query on sample tuples:");
    for t in [tuple![3, 12], tuple![12, 3], tuple![5, 5], tuple![4, 6]] {
        println!("  {t} ↦ {:?}", strict.eval(&db, &t));
    }

    // The completeness machinery: every computable query is a union of
    // ≅ₗ-equivalence classes (Prop 2.4). How many classes are there?
    println!("\n|Cⁿ| for this schema (type a = (3,2)):");
    for n in 0..3 {
        println!("  rank {n}: {} classes", count_classes(&schema, n));
    }

    // The atomic type of a concrete pair — the complete description an
    // L⁻ query can see:
    let t = tuple![3, 12];
    let ty = AtomicType::of(&db, &t);
    println!(
        "\natomic type of {t}: {} distinct elements, pattern {:?}",
        ty.distinct_count(),
        ty.pattern()
    );

    // Theorem 2.1 round trip: compile the query to its class-union
    // normal form and synthesize an equivalent L⁻ formula back.
    let classes = strict.to_class_union();
    let round = LMinusQuery::from_class_union(&classes);
    let agree = [tuple![3, 12], tuple![12, 3], tuple![7, 7]]
        .iter()
        .all(|t: &Tuple| strict.eval(&db, t) == round.eval(&db, t));
    println!(
        "\nTheorem 2.1 round trip: {} classes in the union; synthesized formula agrees: {agree}",
        classes.class_count()
    );
}
