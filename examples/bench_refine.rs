//! Std-timer benchmark for the `Vⁿᵣ` refinement pipeline — the
//! criterion-free companion to `crates/bench/benches/refine.rs`.
//!
//! Measures the base-partition strategies (fingerprint-bucketed vs the
//! O(t²) pairwise oracle) on the same workload as the criterion
//! `E7/partition` group — rank-4 random tuples over the `divides`
//! database, a workload that realizes hundreds of distinct atomic
//! types, scaled to 4096 tuples — plus the full `v_n_r` pipeline on
//! the paper's example graph, the semi-naive delta engine against
//! from-scratch loop evaluation (`E7/fixpoint`), and incremental
//! partition maintenance against full recomputation under single-tuple
//! insertion (`E7/incr_vnr`). Emits the `BENCH_refine.json` schema on
//! stdout:
//!
//! ```text
//! cargo run --release --example bench_refine > BENCH_refine.json
//! ```
//!
//! `scripts/bench_refine.sh` wraps exactly that. With
//! `--metrics-out <path>` the run also installs a metrics recorder and
//! writes a `METRICS/v1` report of the hot-path counters (buckets
//! probed, fingerprint collisions, fan-out imbalance, …) next to the
//! timing points — the "why is it slow" companion to the medians.

use recdb_analyze::analyze_full;
use recdb_core::{Database, DatabaseBuilder, Elem, FiniteStructure, FnRelation, Fuel, Tuple};
use recdb_hsdb::{
    paper_example_graph, partition_by_local_iso, partition_by_local_iso_pairwise, v_n_r,
    IncrementalPartition,
};
use recdb_qlhs::{Dialect, FinInterp, Prog, Term};
use recdb_vm::{compile, exec_plain, verify, LowerOpts};
use std::time::Instant;

/// Splitmix-style deterministic generator: the harness must not pull
/// in `rand` (it runs where dev-dependencies cannot resolve), and the
/// exact sample hardly matters — only that both strategies see the
/// same tuple set.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn random_tuples(count: usize, rank: usize, universe: u64, seed: u64) -> Vec<Tuple> {
    let mut lcg = Lcg(seed);
    (0..count)
        .map(|_| (0..rank).map(|_| Elem(lcg.next() % universe)).collect())
        .collect()
}

/// Median wall time of `iters` runs (after one warmup), in ns.
fn median_ns(iters: usize, mut f: impl FnMut() -> usize) -> u128 {
    std::hint::black_box(f());
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Point {
    group: &'static str,
    bench: String,
    size: usize,
    median_ns: u128,
}

/// An undirected path `0 — 1 — … — n-1` (schema `E : 2`).
fn path_graph(n: u64) -> FiniteStructure {
    FiniteStructure::undirected_graph(0..n, (0..n - 1).map(|i| (i, i + 1)))
}

/// `Y2 := C0; Y3 := C0 ∩ C_last; while |Y3|=0 { Y2 ∪= succ(Y2); Y3 ∪= Y2 ∩ C_last }`
/// — single-source reachability, with every assignment inside the
/// provable semi-naive fragment.
fn reach_prog(last: u64) -> Prog {
    let union = |v: usize, s: Term| Prog::assign(v, Term::Var(v).union(s));
    let succ = Term::Var(1).up().and(Term::Rel(0)).down();
    Prog::seq([
        Prog::assign(1, Term::Const(0)),
        Prog::assign(2, Term::Const(0).and(Term::Const(last))),
        Prog::WhileEmpty(
            2,
            Box::new(Prog::seq([
                union(1, succ),
                union(2, Term::Var(1).and(Term::Const(last))),
            ])),
        ),
    ])
}

/// A straight-line §2 pipeline whose scratch variable `Y2` is written
/// every stage but never read: the bytecode compiler's liveness pass
/// proves those stores dead and tick-free and elides them, while the
/// tree-walker evaluates every assignment. All operators stay in the
/// tick-free Ql fragment so elision is fuel-sound.
fn straightline_prog(stages: usize) -> Prog {
    let mut stmts = vec![Prog::assign(1, Term::Rel(0))];
    for _ in 0..stages {
        stmts.push(Prog::assign(
            2,
            Term::Var(1)
                .swap()
                .and(Term::Rel(0))
                .and(Term::Var(1).and(Term::E).swap()),
        ));
        stmts.push(Prog::assign(
            1,
            Term::Var(1).and(Term::Rel(0).swap()).swap(),
        ));
    }
    stmts.push(Prog::assign(0, Term::Var(1)));
    Prog::seq(stmts)
}

fn parse_metrics_out() -> Option<String> {
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--metrics-out" {
            return Some(it.next().expect("--metrics-out needs a path"));
        }
    }
    None
}

fn main() {
    let metrics_out = parse_metrics_out();
    let recorder = metrics_out.as_ref().map(|_| {
        let r = recdb_obs::InMemoryRecorder::shared();
        recdb_obs::install(r.clone());
        r
    });
    let divides: Database = DatabaseBuilder::new("divides")
        .relation("E", FnRelation::divides())
        .build();
    let mut points = Vec::new();

    for size in [64usize, 256, 1024, 4096] {
        let tuples = random_tuples(size, 4, 16, 42);
        points.push(Point {
            group: "E7/partition",
            bench: "bucketed".into(),
            size,
            median_ns: median_ns(5, || partition_by_local_iso(&divides, &tuples).len()),
        });
        // The O(t²) oracle gets fewer samples at the top size: one run
        // is ~0.5 s there and the median is stable anyway.
        let iters = if size >= 4096 { 3 } else { 5 };
        points.push(Point {
            group: "E7/partition",
            bench: "pairwise".into(),
            size,
            median_ns: median_ns(iters, || {
                partition_by_local_iso_pairwise(&divides, &tuples).len()
            }),
        });
    }

    // Semi-naive vs from-scratch loop evaluation: single-source
    // reachability on an undirected path — the canonical workload
    // where from-scratch is O(n³) (re-deriving the whole frontier
    // history each round) and the delta engine is O(n²).
    for size in [64u64, 128, 256] {
        let st = path_graph(size);
        let p = reach_prog(size - 1);
        let run = |seminaive: bool| {
            let mut i = FinInterp::new(&st);
            i.set_seminaive(seminaive);
            i.run(&p, &mut Fuel::new(1 << 40))
                .expect("reachability terminates")
                .tuples
                .len()
        };
        points.push(Point {
            group: "E7/fixpoint",
            bench: "seminaive".into(),
            size: size as usize,
            median_ns: median_ns(5, || run(true)),
        });
        points.push(Point {
            group: "E7/fixpoint",
            bench: "scratch".into(),
            size: size as usize,
            median_ns: median_ns(3, || run(false)),
        });
    }

    // Verified bytecode vs tree-walking the same admitted program
    // (`E7/vm`): compilation and verification happen once per
    // admission in the serving layer, so the timed region is execution
    // only — flat register dispatch with dead scratch stores elided
    // against the AST walker that pays for every assignment.
    for size in [64u64, 256, 1024] {
        let st = path_graph(size);
        let p = straightline_prog(8);
        let full = analyze_full(&p, st.schema(), Dialect::Ql);
        let vm = compile(
            &p,
            st.schema(),
            Dialect::Ql,
            &full.termination,
            &LowerOpts::default(),
        )
        .expect("straight-line pipeline lowers");
        verify(&vm, &p, st.schema(), Dialect::Ql, &full.termination, None)
            .expect("bytecode verifies");
        points.push(Point {
            group: "E7/vm",
            bench: "vm".into(),
            size: size as usize,
            median_ns: median_ns(5, || {
                let mut i = FinInterp::new(&st);
                exec_plain(&mut i, &vm, &mut Fuel::new(1 << 40))
                    .expect("bytecode run terminates")
                    .tuples
                    .len()
            }),
        });
        points.push(Point {
            group: "E7/vm",
            bench: "ast".into(),
            size: size as usize,
            median_ns: median_ns(5, || {
                FinInterp::new(&st)
                    .run(&p, &mut Fuel::new(1 << 40))
                    .expect("tree walk terminates")
                    .tuples
                    .len()
            }),
        });
    }

    // Incremental vs from-scratch partition maintenance under
    // single-tuple insertion: the delta-maintained core of the Vⁿᵣ
    // cache. The incremental point is the per-insert median over a
    // batch of 16 (one insert is too fast for the timer); recompute is
    // one full repartition of the same grown set.
    const INSERT_BATCH: usize = 16;
    for size in [1024usize, 4096] {
        let tuples = random_tuples(size, 4, 16, 42);
        let batch = random_tuples(INSERT_BATCH, 4, 16, 0xfeed);
        let mut cache = IncrementalPartition::from_tuples(&divides, &tuples);
        points.push(Point {
            group: "E7/incr_vnr",
            bench: "insert".into(),
            size,
            median_ns: median_ns(5, || {
                for t in &batch {
                    cache.insert(t.clone());
                }
                cache.len()
            }) / INSERT_BATCH as u128,
        });
        let mut grown = tuples.clone();
        grown.extend(batch.iter().cloned());
        points.push(Point {
            group: "E7/incr_vnr",
            bench: "recompute".into(),
            size,
            median_ns: median_ns(5, || partition_by_local_iso(&divides, &grown).len()),
        });
    }

    let hs = paper_example_graph();
    for (n, r) in [(1usize, 2usize), (2, 1)] {
        points.push(Point {
            group: "E7/v_n_r",
            bench: format!("n{n}r{r}"),
            size: hs.t_n(n).len(),
            median_ns: median_ns(5, || {
                v_n_r(&hs, n, r).expect("tree covers all levels").len()
            }),
        });
    }

    // Hand-rolled JSON: the harness has no serde and needs none.
    println!("{{");
    println!("  \"schema\": \"BENCH_refine/v1\",");
    println!("  \"harness\": \"std-timer (examples/bench_refine.rs, median of 5)\",");
    println!(
        "  \"parallel_feature\": {},", // true under `--features parallel`
        cfg!(feature = "parallel")
    );
    println!("  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        println!(
            "    {{\"group\": \"{}\", \"bench\": \"{}\", \"size\": {}, \"median_ns\": {}}}{comma}",
            p.group, p.bench, p.size, p.median_ns
        );
    }
    println!("  ]");
    println!("}}");

    if let (Some(path), Some(rec)) = (&metrics_out, recorder) {
        recdb_obs::uninstall();
        let mut metrics = rec.snapshot();
        metrics.parallel = cfg!(feature = "parallel");
        metrics.write_json(path).expect("write metrics report");
        eprintln!("wrote {path}");
    }

    // Human-readable speedup summary on stderr so redirecting stdout
    // to BENCH_refine.json still shows the headline.
    let ns = |group: &str, bench: &str, size: usize| {
        points
            .iter()
            .find(|p| p.group == group && p.bench == bench && p.size == size)
            .map(|p| p.median_ns)
            .unwrap_or(0)
    };
    for size in [64usize, 256, 1024, 4096] {
        let (b, p) = (
            ns("E7/partition", "bucketed", size),
            ns("E7/partition", "pairwise", size),
        );
        if b > 0 {
            eprintln!(
                "partition t={size:>5}: pairwise {p} ns / bucketed {b} ns = {:.1}x",
                p as f64 / b as f64
            );
        }
    }
    for size in [64usize, 128, 256] {
        let (d, s) = (
            ns("E7/fixpoint", "seminaive", size),
            ns("E7/fixpoint", "scratch", size),
        );
        if d > 0 {
            eprintln!(
                "fixpoint n={size:>5}: scratch {s} ns / seminaive {d} ns = {:.1}x",
                s as f64 / d as f64
            );
        }
    }
    for size in [1024usize, 4096] {
        let (i, r) = (
            ns("E7/incr_vnr", "insert", size),
            ns("E7/incr_vnr", "recompute", size),
        );
        if i > 0 {
            eprintln!(
                "incr_vnr t={size:>5}: recompute {r} ns / insert {i} ns = {:.1}x",
                r as f64 / i as f64
            );
        }
    }
    for size in [64usize, 256, 1024] {
        let (v, a) = (ns("E7/vm", "vm", size), ns("E7/vm", "ast", size));
        if v > 0 {
            eprintln!(
                "vm       n={size:>5}: ast {a} ns / vm {v} ns = {:.1}x",
                a as f64 / v as f64
            );
        }
    }
}
