//! Std-timer benchmark for the `Vⁿᵣ` refinement pipeline — the
//! criterion-free companion to `crates/bench/benches/refine.rs`.
//!
//! Measures the base-partition strategies (fingerprint-bucketed vs the
//! O(t²) pairwise oracle) on the same workload as the criterion
//! `E7/partition` group — rank-4 random tuples over the `divides`
//! database, a workload that realizes hundreds of distinct atomic
//! types — plus the full `v_n_r` pipeline on the paper's example
//! graph. Emits the `BENCH_refine.json` schema on stdout:
//!
//! ```text
//! cargo run --release --example bench_refine > BENCH_refine.json
//! ```
//!
//! `scripts/bench_refine.sh` wraps exactly that. With
//! `--metrics-out <path>` the run also installs a metrics recorder and
//! writes a `METRICS/v1` report of the hot-path counters (buckets
//! probed, fingerprint collisions, fan-out imbalance, …) next to the
//! timing points — the "why is it slow" companion to the medians.

use recdb_core::{Database, DatabaseBuilder, Elem, FnRelation, Tuple};
use recdb_hsdb::{
    paper_example_graph, partition_by_local_iso, partition_by_local_iso_pairwise, v_n_r,
};
use std::time::Instant;

/// Splitmix-style deterministic generator: the harness must not pull
/// in `rand` (it runs where dev-dependencies cannot resolve), and the
/// exact sample hardly matters — only that both strategies see the
/// same tuple set.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn random_tuples(count: usize, rank: usize, universe: u64, seed: u64) -> Vec<Tuple> {
    let mut lcg = Lcg(seed);
    (0..count)
        .map(|_| (0..rank).map(|_| Elem(lcg.next() % universe)).collect())
        .collect()
}

/// Median wall time of `iters` runs (after one warmup), in ns.
fn median_ns(iters: usize, mut f: impl FnMut() -> usize) -> u128 {
    std::hint::black_box(f());
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Point {
    group: &'static str,
    bench: String,
    size: usize,
    median_ns: u128,
}

fn parse_metrics_out() -> Option<String> {
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--metrics-out" {
            return Some(it.next().expect("--metrics-out needs a path"));
        }
    }
    None
}

fn main() {
    let metrics_out = parse_metrics_out();
    let recorder = metrics_out.as_ref().map(|_| {
        let r = recdb_obs::InMemoryRecorder::shared();
        recdb_obs::install(r.clone());
        r
    });
    let divides: Database = DatabaseBuilder::new("divides")
        .relation("E", FnRelation::divides())
        .build();
    let mut points = Vec::new();

    for size in [64usize, 256, 1024] {
        let tuples = random_tuples(size, 4, 16, 42);
        points.push(Point {
            group: "E7/partition",
            bench: "bucketed".into(),
            size,
            median_ns: median_ns(5, || partition_by_local_iso(&divides, &tuples).len()),
        });
        points.push(Point {
            group: "E7/partition",
            bench: "pairwise".into(),
            size,
            median_ns: median_ns(5, || {
                partition_by_local_iso_pairwise(&divides, &tuples).len()
            }),
        });
    }

    let hs = paper_example_graph();
    for (n, r) in [(1usize, 2usize), (2, 1)] {
        points.push(Point {
            group: "E7/v_n_r",
            bench: format!("n{n}r{r}"),
            size: hs.t_n(n).len(),
            median_ns: median_ns(5, || {
                v_n_r(&hs, n, r).expect("tree covers all levels").len()
            }),
        });
    }

    // Hand-rolled JSON: the harness has no serde and needs none.
    println!("{{");
    println!("  \"schema\": \"BENCH_refine/v1\",");
    println!("  \"harness\": \"std-timer (examples/bench_refine.rs, median of 5)\",");
    println!(
        "  \"parallel_feature\": {},", // true under `--features parallel`
        cfg!(feature = "parallel")
    );
    println!("  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        println!(
            "    {{\"group\": \"{}\", \"bench\": \"{}\", \"size\": {}, \"median_ns\": {}}}{comma}",
            p.group, p.bench, p.size, p.median_ns
        );
    }
    println!("  ]");
    println!("}}");

    if let (Some(path), Some(rec)) = (&metrics_out, recorder) {
        recdb_obs::uninstall();
        let mut metrics = rec.snapshot();
        metrics.parallel = cfg!(feature = "parallel");
        metrics.write_json(path).expect("write metrics report");
        eprintln!("wrote {path}");
    }

    // Human-readable speedup summary on stderr so redirecting stdout
    // to BENCH_refine.json still shows the headline.
    for size in [64usize, 256, 1024] {
        let ns = |bench: &str| {
            points
                .iter()
                .find(|p| p.group == "E7/partition" && p.bench == bench && p.size == size)
                .map(|p| p.median_ns)
                .unwrap_or(0)
        };
        let (b, p) = (ns("bucketed"), ns("pairwise"));
        if b > 0 {
            eprintln!(
                "partition t={size:>5}: pairwise {p} ns / bucketed {b} ns = {:.1}x",
                p as f64 / b as f64
            );
        }
    }
}
