//! The Theorem 6.1 gadget: graph isomorphism reduces to tuple
//! equivalence, so no effective BP-r-complete language can exist.
//!
//! Run with `cargo run --example bp_reduction`.

use recdb_bp::{express_hs_relation, fo_member, Gadget, B, C};
use recdb_core::{FiniteStructure, Tuple};
use recdb_hsdb::paper_example_graph;

fn main() {
    let tri = FiniteStructure::undirected_graph([0, 1, 2], [(0, 1), (1, 2), (2, 0)]);
    let tri2 = FiniteStructure::undirected_graph([4, 5, 6], [(4, 5), (5, 6), (6, 4)]);
    let path = FiniteStructure::undirected_graph([0, 1, 2], [(0, 1), (1, 2)]);

    println!("the §6 gadget: B = (D, R1={{a}}, R2=spine ∪ G₁ ∪ G₂)\n");

    for (name, g1, g2) in [
        ("triangle vs relabelled triangle", tri.clone(), tri2),
        ("triangle vs path", tri.clone(), path),
    ] {
        let g = Gadget::new(g1, g2);
        let equiv = g.b_equiv_c();
        let sep = g.ef_separation_round(3);
        println!("{name}:");
        println!("  b ≅_B c (⟺ G₁ ≅ G₂): {equiv}");
        println!("  EF separation round over the encoded universe: {sep:?}");
        println!(
            "  {{b}} preserves Aut(B) — i.e. is a legal BP relation: {}",
            g.singleton_b_preserves_automorphisms()
        );
        println!();
    }

    println!("⇒ expressing {{b}} for every B would decide graph isomorphism");
    println!("  (Σ¹₁-complete for genuinely recursive graphs, Prop 2.1):");
    println!("  no effective BP-r-complete language exists.\n");

    // The positive side (Theorem 6.3): over *highly symmetric*
    // databases, first-order logic IS BP-complete. Express an
    // automorphism-preserving relation and evaluate it recursively.
    let hs = paper_example_graph();
    let db = hs.database().clone();
    let has_out = move |t: &Tuple| {
        (0..64)
            .map(recdb_core::Elem)
            .any(|y| db.query(0, &[t[0], y]))
    };
    let phi = express_hs_relation(&hs, 1, &has_out, 3).expect("expressible in L");
    println!("Theorem 6.3 on the §3.1 example: 'has an out-edge' as an FO formula");
    println!(
        "  quantifier depth {} ({} disjuncts over T¹)",
        phi.quantifier_depth(),
        hs.t_n(1).len()
    );
    for t in hs.t_n(1) {
        println!(
            "  rep {t}: oracle {}  formula {}",
            has_out(&t),
            fo_member(&hs, &phi, &t)
        );
    }
    println!("  (b,c for {B:?},{C:?} — constants shown for orientation only)");
}
