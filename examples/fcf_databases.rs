//! Finite ∕ co-finite databases (§4): the middle ground between
//! arbitrary recursive databases and finite ones.
//!
//! An fcf-r-db stores each relation as either a finite set of tuples
//! or the finite *complement* of one — with an indicator saying which.
//! That indicator is genuine extra information (finiteness is not
//! decidable from a membership oracle), and it buys a lot: Prop 4.1
//! makes every fcf-r-db a highly symmetric database, and QLf+ is a
//! complete query language whose values stay finite-or-co-finite.
//!
//! Run with `cargo run --example fcf_databases`.

use recdb_core::{tuple, CoFiniteRelation, FiniteRelation, Fuel, Tuple};
use recdb_hsdb::{df_from_tree, FcfDatabase, FcfRel};
use recdb_qlhs::{parse_program, FcfInterp};

fn main() {
    // A blocklist-style database: a small set of flagged users and an
    // "allowed pairs" relation that is everything except a few bans.
    let db = FcfDatabase::new(
        "moderation",
        vec![
            FcfRel::Finite(FiniteRelation::unary([3, 7])), // Flagged
            FcfRel::CoFinite(CoFiniteRelation::new(
                2,
                [tuple![3, 7], tuple![7, 3], tuple![3, 3]],
            )), // MayMessage = ℕ² ∖ bans
        ],
    );
    println!("Df (constants of the finite parts): {:?}", db.df());

    // Membership is computed from the representation.
    let plain = db.as_database();
    println!("\nmembership oracles:");
    for (rel, t) in [
        (0usize, tuple![3]),
        (0, tuple![4]),
        (1, tuple![3, 7]),
        (1, tuple![100, 200]),
    ] {
        println!("  {:?} ∈ R{}? {}", t, rel + 1, plain.query(rel, t.elems()));
    }

    // Prop 4.1: the fcf-r-db is an hs-r-db; its characteristic tree is
    // computable, and Df can be recovered from the TREE ALONE — no
    // access to the finite parts needed.
    let df = db.df();
    let hs = db.clone().into_hsdb();
    hs.validate(2).expect("valid C_B representation");
    let extracted = df_from_tree(hs.tree(), df.len() + 1).expect("Prop 4.1 algorithm");
    println!("\nDf extracted from the characteristic tree: {extracted:?}");
    assert_eq!(extracted, df);

    // QLf+ queries. "Flagged users who may still message someone":
    // finite ∩ projection of a co-finite = finite.
    let interp = FcfInterp::new(&db);
    let prog = parse_program(
        "
        Y2 := down(swap(R2));  // users that can be messaged by someone… projected
        Y1 := R1 & Y2;         // flagged ∩ that projection
        ",
    )
    .unwrap();
    let v = interp.run(&prog, &mut Fuel::new(1_000_000)).unwrap();
    println!(
        "\nflagged ∩ (∃ partner): finite={}, tuples={:?}",
        v.finite, v.tuples
    );

    // The finiteness *test* — the construct that makes QLf+ strictly
    // more than finitary QL: flip until co-finite, observing the loop.
    let prog = parse_program(
        "
        Y1 := R1;
        Y3 := down(down(E));
        while finite(Y1) {
            Y1 := !Y1;
            Y3 := up(Y3);
        }
        ",
    )
    .unwrap();
    let mut env = Vec::new();
    interp
        .exec(&prog, &mut env, &mut Fuel::new(100_000))
        .unwrap();
    println!(
        "\nafter `while finite(Y1) {{ Y1 := !Y1; }}`: co-finite reached in {} flip(s)",
        env[2].rank
    );

    // Prop 4.2 live: projecting a co-finite relation yields the full
    // relation one rank down.
    let v = interp
        .run(
            &parse_program("Y1 := down(R2);").unwrap(),
            &mut Fuel::new(100_000),
        )
        .unwrap();
    println!(
        "\nR2↓ is co-finite with empty complement (= D¹): finite={}, complement={:?}",
        v.finite, v.tuples
    );
    let empty: std::collections::BTreeSet<Tuple> = Default::default();
    assert_eq!(v.tuples, empty);
}
