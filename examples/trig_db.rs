//! The introduction's motivating database: trigonometric values.
//!
//! "Values for the trigonometric functions, for example, can be viewed
//! as a recursive data base, since we might be interested in the sines
//! or cosines of infinitely many angles. Instead of keeping them all
//! in a table, which is impossible, we keep rules for computing the
//! values from the angles."
//!
//! Domain: angles in whole degrees (ℕ). Relations are *rules*, not
//! tables: `SinZero`, `CosZero`, `SinPos`, and `SameSin` (equal sines)
//! are all decided arithmetically, for any of the infinitely many
//! angles.
//!
//! Run with `cargo run --example trig_db`.

use recdb_core::{tuple, DatabaseBuilder, FnRelation};
use recdb_logic::LMinusQuery;

/// sin(x°) = 0 ⟺ x ≡ 0 (mod 180).
fn sin_zero(x: u64) -> bool {
    x.is_multiple_of(180)
}

/// cos(x°) = 0 ⟺ x ≡ 90 (mod 180).
fn cos_zero(x: u64) -> bool {
    x % 180 == 90
}

/// sin(x°) > 0 ⟺ x mod 360 ∈ (0, 180).
fn sin_pos(x: u64) -> bool {
    let m = x % 360;
    m > 0 && m < 180
}

/// sin(x°) = sin(y°) ⟺ x ≡ y (mod 360) or x + y ≡ 180 (mod 360).
fn same_sin(x: u64, y: u64) -> bool {
    x % 360 == y % 360 || (x + y) % 360 == 180
}

fn main() {
    let db = DatabaseBuilder::new("trig")
        .relation(
            "SinZero",
            FnRelation::new("sin0", 1, |t| sin_zero(t[0].value())),
        )
        .relation(
            "CosZero",
            FnRelation::new("cos0", 1, |t| cos_zero(t[0].value())),
        )
        .relation(
            "SinPos",
            FnRelation::new("sin+", 1, |t| sin_pos(t[0].value())),
        )
        .relation(
            "SameSin",
            FnRelation::new("sin=", 2, |t| same_sin(t[0].value(), t[1].value())),
        )
        .build();
    let schema = db.schema().clone();

    println!("the infinite trig table, by rule:");
    for x in [0u64, 30, 90, 150, 180, 270, 390] {
        println!(
            "  {x:>4}°: sin=0 {}  cos=0 {}  sin>0 {}",
            db.query(0, tuple![x].elems()),
            db.query(1, tuple![x].elems()),
            db.query(2, tuple![x].elems()),
        );
    }

    // L⁻ queries over the rules. "Angles whose sine equals 30°'s but
    // which are not 30° (mod equality of the tuple components)" can't
    // name the constant 30 — genericity forbids constants! — but
    // relations between angles are fair game:
    let q = LMinusQuery::parse("{ (x, y) | SameSin(x, y) & x != y & SinPos(x) }", &schema).unwrap();
    println!("\nSameSin ∧ distinct ∧ positive-sine pairs:");
    for t in [
        tuple![30, 150],
        tuple![30, 390],
        tuple![30, 210],
        tuple![200, 340],
    ] {
        println!("  {t} ↦ {:?}", q.eval(&db, &t));
    }

    // The supplementary-angle law sin(x) = sin(180−x), visible as a
    // quantifier-free consequence on tuples:
    let supp = LMinusQuery::parse("{ (x, y) | SameSin(x, y) & SameSin(y, x) }", &schema).unwrap();
    let asym = LMinusQuery::parse("{ (x, y) | SameSin(x, y) & !SameSin(y, x) }", &schema).unwrap();
    let witnesses = [tuple![30, 150], tuple![45, 135], tuple![10, 20]];
    println!("\nSameSin is symmetric (no asymmetric witness):");
    for t in &witnesses {
        println!(
            "  {t}: sym {:?}, asym {:?}",
            supp.eval(&db, t),
            asym.eval(&db, t)
        );
    }

    // Where completeness bites: "∃y. SameSin(x,y) ∧ x≠y" is generic
    // but NOT locally generic — it cannot be a computable r-query
    // (Prop 2.5), and L⁻ rightly cannot express it. The closest L⁻
    // query works on explicit pairs only, as above.
    println!("\n(existential queries are not computable over r-dbs — Theorem 2.1's point)");
}
