//! Recursive countable random structures (Prop 3.2) and QLhs.
//!
//! Builds the Rado graph (the countable random graph) as a recursive
//! database, verifies extension axioms by *construction*, shows its
//! characteristic tree, and runs QLhs programs over the finite
//! representation `C_B`.
//!
//! Run with `cargo run --example random_structure`.

use recdb_core::{Elem, Fuel, Tuple};
use recdb_hsdb::{level_sizes, rado_graph, rado_witness, verify_rado_extension};
use recdb_qlhs::{parse_program, HsInterp};

fn main() {
    let hs = rado_graph();
    println!("the Rado graph as an hs-r-db (≅_A = ≅ₗ, Prop 3.2)");

    // Extension axioms, constructively: for X = {0, 3, 5} and every
    // neighbourhood pattern, a witness exists and is computed directly
    // from the BIT coding.
    let xs: Vec<Elem> = vec![Elem(0), Elem(3), Elem(5)];
    let patterns = verify_rado_extension(&xs);
    println!("\nverified {patterns} extension patterns over X = {{0,3,5}}");
    let w = rado_witness(&xs, &[Elem(0), Elem(5)]);
    println!("witness adjacent to exactly {{0,5}}: element {w}");

    // The characteristic tree: finitely branching, one path per
    // ≅_B-class.
    println!(
        "\ncharacteristic tree levels |T¹|..|T³|: {:?}",
        level_sizes(hs.tree(), 3)
    );
    println!("T² representatives:");
    for t in hs.t_n(2) {
        println!("  {t}  (edge: {})", hs.database().query(0, t.elems()));
    }

    // Canonical representatives of arbitrary tuples.
    for t in [Tuple::from_values([10, 25]), Tuple::from_values([7, 7])] {
        println!("canonical rep of {t}: {}", hs.canonical_rep(&t));
    }

    // QLhs over C_B: compute the non-edge distinct-pair class as
    // ¬(R1 ∪ E) = ¬R1 ∩ ¬E, and then its ↑-children.
    let prog = parse_program(
        "
        Y2 := !R1 & !E;       // the non-adjacent distinct pairs
        Y3 := up(Y2);         // their one-element extension classes
        Y1 := Y2;
        ",
    )
    .unwrap();
    let mut interp = HsInterp::new(&hs);
    let mut fuel = Fuel::new(1_000_000);
    let v = interp.run(&prog, &mut fuel).unwrap();
    println!("\nQLhs: ¬R1 ∩ ¬E = {:?} (the non-edge class)", v.tuples);

    // The same in the language of the paper: relations are unions of
    // classes; QLhs manipulates only the representatives, yet defines
    // the full infinite relation.
    let rep = v.tuples.iter().next().expect("one class");
    println!(
        "the represented relation is infinite: e.g. (40,41) non-adjacent? {}",
        !hs.database().query(0, &[Elem(40), Elem(41)])
            && hs.equivalent(rep, &Tuple::from_values([40, 41]))
    );
}
