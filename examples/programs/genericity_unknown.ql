// A QLhs-only singleton test under the plain QL dialect: the dialect
// check rejects the program before it runs, so there is no output
// relation to judge — genericity stays Unknown (W0302).
// analyze: dialect=ql schema=2 expect=unsafe
// VERDICT: unknown
// VM: reject=dialect
Y1 := C1;
while single(Y1) {
    Y1 := up(Y1);
}
