// The schema has a single relation, so `R2` does not exist: a
// definite error on the must-execute spine.
// analyze: dialect=ql schema=2 expect=unsafe
// VM: reject=error
Y1 := R2;
