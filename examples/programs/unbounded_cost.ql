// A safe program the cost pass cannot bound: the loop converges (R1
// is idempotent under re-assignment) but no symbolic iteration count
// is proved, so the fixpoint widens the loop body to ⊤ and the
// analyzer reports the W0601 obstruction at the widened statement.
// analyze: dialect=ql schema=2 expect=safe
// COST: unbounded (⊤)
// VM: reject=unprovable
while empty(Y2) {
  Y2 := R1;
}
Y1 := Y2;
