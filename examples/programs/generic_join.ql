// A constant-free query: every construct commutes with domain
// permutations, so the taint pass proves genericity outright
// (Def 2.5 with an empty fixed set).
// analyze: dialect=ql schema=2 expect=safe
// VERDICT: generic
// COST: bounded (|Y1| ≤ n·r1, work ≤ 2·n·r1)
// VM: accept
Y2 := up(R1);
Y1 := swap(Y2) & Y2;
