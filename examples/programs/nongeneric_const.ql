// The output is the fixed singleton {(3)} on every database, so any
// permutation moving 3 changes it: the analyzer proves non-genericity
// and reports a witness transposition (W0301).
// analyze: dialect=ql schema=2 expect=safe
// VERDICT: nongeneric
// COST: bounded (|Y1| ≤ 1, work ≤ 1)
// VM: accept
Y1 := C3;
