// ¬C2 mentions the constant 2 but is invariant under every
// permutation that fixes it: generic relative to the fixed set {2}
// (C-genericity, Def 2.5).
// analyze: dialect=ql schema=2 expect=safe
// VERDICT: generic
// COST: bounded (|Y1| ≤ n, work ≤ n)
// VM: accept
Y1 := !C2;
