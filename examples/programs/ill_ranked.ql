// The README's ill-ranked example: `E` has rank 2 and `down(E)` has
// rank 1, so the intersection fails on every run — the analyzer's
// verdict is `unsafe`, and the interpreters agree with a
// RankMismatch error.
// analyze: dialect=ql schema=2 expect=unsafe
// VM: reject=error
Y1 := E & down(E);
