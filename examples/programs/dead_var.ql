// Y3 is assigned but never read (and Y1, the output, is exempt from
// the lint): W0102, but still a safe program.
// analyze: dialect=ql schema=2 expect=safe
// COST: bounded (|Y1| ≤ r1, work ≤ n·r1 + r1)
// VM: accept
Y1 := R1;
Y3 := up(R1);
