// Symmetric kernel of the edge relation: the pairs related both ways.
// Clean under the finitary dialect — every `&` has provably equal
// operand ranks, so the analyzer proves no run can fail.
// analyze: dialect=ql schema=2 expect=safe
// COST: bounded (|Y1| ≤ r1, work ≤ 2·r1)
// VM: accept
Y2 := swap(R1);
Y1 := R1 & Y2;
