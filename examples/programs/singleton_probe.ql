// A QLhs-only loop: pump a value up while it stays a singleton. The
// rank of Y2 grows every iteration, so at the loop-head fixpoint it is
// ⊤ — but nothing downstream needs a rank proof, so the program is
// still provably safe.
// analyze: dialect=qlhs schema=2 expect=safe
// COST: bounded (|Y1| ≤ n^2 + n, work ≤ 2·n^2 + 2·n)
// VM: reject=unprovable
Y2 := E;
while single(Y2) {
    Y2 := up(Y2);
}
Y1 := Y2;
