// Y2 has rank 0 if the loop runs zero times and rank ≥ 1 otherwise,
// so its rank at the join is ⊤ and the final `&` cannot be proven
// rank-correct — nor proven wrong. Verdict: unknown (W0107).
// analyze: dialect=ql schema=2 expect=unknown
// VM: reject=unprovable
while empty(Y1) {
    Y2 := up(Y2);
    Y1 := E;
}
Y1 := Y2 & E;
