// A QLf+-only loop over the fcf schema (R1 unary, R2 binary):
// complement Y2 while it stays finite. Rank is iteration-invariant
// (complement preserves it), so the analyzer keeps an exact rank
// through the fixpoint and proves safety.
// analyze: dialect=qlf+ schema=1,2 expect=safe
// COST: unbounded (⊤)
// VM: accept
Y2 := R1;
while finite(Y2) {
    Y2 := !Y2;
}
Y1 := Y2;
